"""Async weighted-fair priority queue for job scheduling.

Plain FIFO starves light tenants behind a bulk submitter, and plain
priority inverts fairness entirely.  This queue implements **start-time
fair queuing** (the classic packet-scheduling discipline) over tenants:

* each tenant has a weight (default 1.0; configurable per service);
* a job's *virtual finish time* is ``max(global vtime, tenant's last
  finish) + cost / weight`` — a tenant that just burned service gets
  pushed back proportionally to 1/weight, an idle tenant re-enters at
  the current virtual time (no banked credit);
* dequeue order is ``(-priority, virtual finish, sequence)`` — strict
  priority tiers first, weighted fairness within a tier, FIFO as the
  final tie-break.

With equal weights and equal priorities this degrades to exact FIFO;
with one tenant flooding, other tenants' jobs interleave at a rate
proportional to their weight regardless of queue depth.

The queue is asyncio-native (single event loop): ``get`` suspends on a
condition, ``remove`` supports cancellation of queued jobs via lazy
deletion (the heap entry is tombstoned, skipped at pop time), and
``close`` wakes all waiters with :exc:`QueueClosed`.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Dict, List, Optional, Tuple

from .jobs import Job


class QueueClosed(Exception):
    """Raised by :meth:`FairQueue.get` after :meth:`FairQueue.close`."""


class QueueFull(Exception):
    """Raised by :meth:`FairQueue.put` when ``max_depth`` is reached."""


class FairQueue:
    """Priority + weighted-fair job queue (single-event-loop use).

    ``max_depth`` bounds the number of queued jobs (0 = unbounded);
    a full queue rejects with :exc:`QueueFull` rather than blocking,
    because backpressure belongs at the HTTP admission layer (429),
    not inside the scheduler.  Recovery replay enqueues with
    ``force=True`` — already-accepted jobs are never shed.
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        max_depth: int = 0,
    ) -> None:
        if weights:
            for tenant, w in weights.items():
                if not w > 0:
                    raise ValueError(
                        f"tenant {tenant!r} weight must be > 0, got {w}"
                    )
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self._weights = dict(weights or {})
        self.max_depth = int(max_depth)
        self._cond = asyncio.Condition()
        # heap entries: (-priority, virtual_finish, seq, job_id)
        self._heap: List[Tuple[int, float, int, str]] = []
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._vtime = 0.0
        self._tenant_finish: Dict[str, float] = {}
        self._closed = False

    def __len__(self) -> int:
        return len(self._jobs)

    def weight(self, tenant: str) -> float:
        """``tenant``'s configured service weight (1.0 if unset)."""
        return self._weights.get(tenant, 1.0)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (puts/gets now raise)."""
        return self._closed

    async def put(self, job: Job, cost: float = 1.0, force: bool = False) -> None:
        """Enqueue ``job``; ``cost`` is its service demand (e.g. runs).

        ``force=True`` bypasses the depth bound — used only by crash
        recovery, whose jobs were admitted before the restart.
        """
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        async with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            if (
                not force
                and self.max_depth
                and len(self._jobs) >= self.max_depth
            ):
                raise QueueFull(
                    f"queue at max depth ({len(self._jobs)}/{self.max_depth})"
                )
            if job.job_id in self._jobs:
                raise ValueError(f"job {job.job_id} already queued")
            tenant = job.spec.tenant
            start = max(self._vtime, self._tenant_finish.get(tenant, 0.0))
            finish = start + cost / self.weight(tenant)
            self._tenant_finish[tenant] = finish
            entry = (-job.spec.priority, finish, self._seq, job.job_id)
            self._seq += 1
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, entry)
            self._cond.notify()

    async def get(self) -> Job:
        """Dequeue the next job; waits while empty, raises when closed."""
        async with self._cond:
            while True:
                job = self._pop_live()
                if job is not None:
                    return job
                if self._closed:
                    raise QueueClosed("queue is closed")
                await self._cond.wait()

    def _pop_live(self) -> Optional[Job]:
        """Pop past tombstones; advances vtime to the winner's finish."""
        while self._heap:
            _neg_priority, finish, _seq, job_id = heapq.heappop(self._heap)
            job = self._jobs.pop(job_id, None)
            if job is None:
                continue  # tombstoned by remove()
            self._vtime = max(self._vtime, finish)
            return job
        return None

    async def remove(self, job_id: str) -> Optional[Job]:
        """Withdraw a queued job (cancellation); None if not queued."""
        async with self._cond:
            return self._jobs.pop(job_id, None)

    async def close(self) -> None:
        """Reject future puts and wake every blocked ``get``."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

    async def snapshot(self) -> Dict[str, object]:
        """Queue introspection for ``/v1/stats``."""
        async with self._cond:
            per_tenant: Dict[str, int] = {}
            for job in self._jobs.values():
                tenant = job.spec.tenant
                per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
            return {
                "depth": len(self._jobs),
                "max_depth": self.max_depth,
                "virtual_time": self._vtime,
                "per_tenant": per_tenant,
                "weights": {
                    t: self.weight(t)
                    for t in set(per_tenant) | set(self._weights)
                },
                "closed": self._closed,
            }
