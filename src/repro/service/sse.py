"""Per-job event bus and Server-Sent-Events framing.

The execution path runs in worker threads (the engine is synchronous);
SSE subscribers live on the event loop.  :class:`EventBus` bridges the
two: publishers call :meth:`EventBus.publish` (loop) or
:meth:`EventBus.publish_threadsafe` (any thread, routed through
``loop.call_soon_threadsafe``), and each subscriber owns a bounded
:class:`asyncio.Queue` drained by its HTTP connection.

Delivery semantics, chosen for a *monitoring* channel (the journal is
the durable record — this never is):

* **late joiners** immediately receive the job's most recent event of
  each type (``state`` first), so a client that connects after the job
  finished still sees its terminal state rather than hanging;
* **slow consumers** lose oldest events first (drop-oldest on a full
  queue) — progress is a sampled signal and the latest value wins;
* a terminal ``state`` event closes the stream (`None` sentinel).

Wire format follows the WHATWG EventSource spec: ``event:`` +
``data:`` lines, blank-line terminated, with ``:heartbeat`` comment
lines keeping idle connections alive through proxies.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, List, Optional, Tuple

from .jobs import TERMINAL_STATES

#: Event types published per job, in replay order for late joiners.
EVENT_TYPES: Tuple[str, ...] = ("state", "progress", "trace")

#: Per-subscriber buffer; beyond this, oldest events are dropped.
SUBSCRIBER_BUFFER = 256


class SubscriberQueue(asyncio.Queue):
    """A bounded subscriber queue that counts drop-oldest evictions.

    Slow consumers silently losing events is the one SSE failure mode a
    client cannot detect from the stream itself, so the count is
    surfaced back into the stream as an explicit ``overflow`` marker
    event (see :meth:`EventBus.stream`) the next time the consumer
    catches up.
    """

    def __init__(self, maxsize: int = 0) -> None:
        super().__init__(maxsize=maxsize)
        #: Events evicted from this queue because the reader stalled.
        self.dropped = 0


def format_sse(event: str, payload: Dict[str, object]) -> bytes:
    """One SSE frame: ``event:`` + single-line ``data:`` JSON."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {data}\n\n".encode()


HEARTBEAT_FRAME = b":heartbeat\n\n"


class EventBus:
    """Fan-out of job events to SSE subscribers (one loop, many threads)."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        # job_id -> {event_type: last payload}; replayed to late joiners.
        self._last: Dict[str, Dict[str, Dict[str, object]]] = {}
        self._terminal: Dict[str, bool] = {}
        self._closed = False

    # -- publishing ---------------------------------------------------------
    def publish(self, job_id: str, event: str, payload: Dict[str, object]) -> None:
        """Publish from the event loop thread."""
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}")
        self._last.setdefault(job_id, {})[event] = payload
        terminal = (
            event == "state" and payload.get("state") in TERMINAL_STATES
        )
        if terminal:
            self._terminal[job_id] = True
        for queue in self._subscribers.get(job_id, []):
            self._offer(queue, (event, payload))
            if terminal:
                self._offer(queue, None)
        if terminal:
            self._subscribers.pop(job_id, None)

    def publish_threadsafe(
        self, job_id: str, event: str, payload: Dict[str, object]
    ) -> None:
        """Publish from any thread (the engine worker path)."""
        self._loop.call_soon_threadsafe(self.publish, job_id, event, payload)

    @staticmethod
    def _offer(queue: asyncio.Queue, item) -> None:
        """Drop-oldest enqueue: a stalled reader never blocks a publisher."""
        while True:
            try:
                queue.put_nowait(item)
                return
            except asyncio.QueueFull:
                try:
                    evicted = queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - tiny race
                    continue
                # The None sentinel ends the stream; dropping it would
                # leave the consumer hanging forever — put it back (the
                # pop above guaranteed room) and drop the new item.
                if evicted is None:
                    queue.put_nowait(None)
                    return
                if isinstance(queue, SubscriberQueue):
                    queue.dropped += 1

    # -- subscribing --------------------------------------------------------
    def subscribe(self, job_id: str) -> asyncio.Queue:
        """A queue pre-loaded with the job's latest event of each type."""
        queue: SubscriberQueue = SubscriberQueue(maxsize=SUBSCRIBER_BUFFER)
        last = self._last.get(job_id, {})
        for event in EVENT_TYPES:
            if event in last:
                self._offer(queue, (event, last[event]))
        if self._terminal.get(job_id) or self._closed:
            self._offer(queue, None)
        else:
            self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        """Detach one subscriber queue (no-op if already gone)."""
        subscribers = self._subscribers.get(job_id)
        if subscribers is None:
            return
        try:
            subscribers.remove(queue)
        except ValueError:
            pass
        if not subscribers:
            self._subscribers.pop(job_id, None)

    def forget(self, job_id: str) -> None:
        """Drop replay state for a job (used when evicting history)."""
        self._last.pop(job_id, None)
        self._terminal.pop(job_id, None)

    def close(self) -> None:
        """End every open stream and refuse to hold new subscribers.

        Called by the service on shutdown so SSE connections for
        non-terminal jobs finish instead of pinning the server's
        ``wait_closed()`` forever; late subscribers get an immediately
        closed stream (after any replay).
        """
        self._closed = True
        for queues in self._subscribers.values():
            for queue in queues:
                self._offer(queue, None)
        self._subscribers.clear()

    async def stream(
        self, job_id: str, heartbeat: float = 15.0
    ) -> AsyncIterator[bytes]:
        """Yield SSE frames for a job until its terminal event.

        Emits ``:heartbeat`` comments after ``heartbeat`` seconds of
        silence.  A consumer that stalled long enough to lose events
        (drop-oldest at ``SUBSCRIBER_BUFFER``) receives an explicit
        ``overflow`` marker event carrying the number of events lost
        since the last marker, before the next regular event — loss is
        visible in-band, never silent.  Unsubscribes on exit however
        the generator ends (client disconnect included).
        """
        queue = self.subscribe(job_id)
        reported_drops = 0
        try:
            while True:
                try:
                    item = await asyncio.wait_for(
                        queue.get(), timeout=heartbeat
                    )
                except asyncio.TimeoutError:
                    yield HEARTBEAT_FRAME
                    continue
                dropped = getattr(queue, "dropped", 0)
                if dropped > reported_drops:
                    yield format_sse(
                        "overflow",
                        {"dropped": dropped - reported_drops,
                         "total_dropped": dropped},
                    )
                    reported_drops = dropped
                if item is None:
                    return
                event, payload = item
                yield format_sse(event, payload)
        finally:
            self.unsubscribe(job_id, queue)
