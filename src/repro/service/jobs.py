"""The job model: states, identity, and status snapshots.

A :class:`Job` is one accepted submission flowing through the service::

    queued ──> running ──> done
        │          │  ├──> failed
        │          │  └──> deadline
        └──────────┴─────> cancelled

``done``/``failed``/``cancelled`` are terminal.  Cancellation is
cooperative: a queued job is simply removed; a running job has its
:class:`~repro.engine.CancelToken` fired, the engine drains in-flight
units (journalling every completed one), and the job lands in
``cancelled`` with partial results preserved — resubmitting the same
spec resumes from the journal with zero recomputation.

Job ids are deterministic given submission order (``j<seq>-<digest>``)
so the recovery replay reconstructs the exact same ids, and double as
engine run ids (they satisfy :func:`repro.engine.validate_run_id`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine import CancelToken
from .schemas import JobSpec

#: Every state a job can be in, in lifecycle order.  ``deadline`` is
#: the terminal state of a job whose wall-clock budget expired
#: (``deadline_seconds`` / ``ServiceConfig.default_job_deadline``):
#: like ``cancelled``, completed units stay journalled and partial
#: results are preserved.
JOB_STATES: Tuple[str, ...] = (
    "queued", "running", "done", "failed", "cancelled", "deadline"
)

#: States a job never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "cancelled", "deadline")


def job_id_for(seq: int, spec: JobSpec) -> str:
    """Deterministic job id: submission ordinal + content digest prefix.

    Depends only on ``(seq, spec)`` so journal replay after a crash
    regenerates identical ids, and clients can correlate a resubmitted
    spec by its digest half.
    """
    return f"j{seq:06d}-{spec.fingerprint()[:12]}"


@dataclass
class Job:
    """One submission's full lifecycle state.

    Mutable fields are only written while holding the owning service's
    lock; ``cancel_token`` is the one cross-thread channel (fired from
    the event loop, observed by the engine thread).
    """

    job_id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    results: Optional[List[Dict[str, Any]]] = None
    progress: Dict[str, Any] = field(default_factory=dict)
    cancel_token: CancelToken = field(default_factory=CancelToken)
    #: Set when the job was restored from the jobs journal on restart;
    #: its engine run resumes from the run journal instead of starting
    #: fresh.
    recovered: bool = False
    #: Effective wall-clock budget (seconds from execution start), from
    #: the spec's ``deadline_seconds`` or the service default; ``None``
    #: means unbounded.
    deadline_seconds: Optional[float] = None
    #: Flipped by the service's deadline timer; the worker settles the
    #: job into the ``deadline`` state instead of ``cancelled``.
    deadline_expired: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def run_id(self) -> str:
        """The engine run id: one run journal per job."""
        return f"job-{self.job_id}"

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str) -> bool:
        """Move to ``state``; returns False if already terminal.

        The single funnel for state changes keeps the journal, the
        event bus and the in-memory map from ever disagreeing about a
        race (e.g. cancel landing just as the worker finishes).
        """
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            now = time.time()
            if state == "running" and self.started_at is None:
                self.started_at = now
            if state in TERMINAL_STATES:
                self.finished_at = now
            return True

    def status_payload(self, include_spec: bool = False) -> Dict[str, Any]:
        """The JSON-ready status object served by the HTTP API."""
        with self._lock:
            payload: Dict[str, Any] = {
                "job_id": self.job_id,
                "state": self.state,
                "tenant": self.spec.tenant,
                "priority": self.spec.priority,
                "tag": self.spec.tag,
                "runs": self.spec.runs,
                "seed": self.spec.effective_seed(),
                "run_id": self.run_id,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "recovered": self.recovered,
            }
            if self.deadline_seconds is not None:
                payload["deadline_seconds"] = self.deadline_seconds
            if self.progress:
                payload["progress"] = dict(self.progress)
            if self.error is not None:
                payload["error"] = self.error
            if self.results is not None:
                # Error rows (on_error="collect") carry cut=None; a
                # failed job with some successful units still reports
                # its best successful cut.
                payload["best_cut"] = min(
                    (
                        r["cut"] for r in self.results
                        if r.get("cut") is not None
                    ),
                    default=None,
                )
            if include_spec:
                payload["spec"] = self.spec.payload()
            return payload

    def result_payload(self) -> Dict[str, Any]:
        """The JSON-ready result object (terminal jobs only)."""
        with self._lock:
            if self.state not in TERMINAL_STATES:
                raise ValueError(f"job {self.job_id} is {self.state}")
            payload = {
                "job_id": self.job_id,
                "state": self.state,
                "results": self.results or [],
            }
            if self.error is not None:
                payload["error"] = self.error
            if self.results:
                # Only successful units contribute cuts; error rows
                # (cut=None) stay visible in ``results`` but must not
                # poison the aggregate of a partially-failed job.
                cuts = [
                    r["cut"] for r in self.results
                    if r.get("cut") is not None
                ]
                if cuts:
                    payload["best_cut"] = min(cuts)
                    payload["cuts"] = cuts
            return payload
