"""The service orchestrator: queue + workers + engine + durability.

:class:`PartitionService` is the transport-free core of the service —
the HTTP layer (:mod:`repro.service.api`) is a thin veneer over its
``submit`` / ``get_job`` / ``cancel`` / ``stats`` methods, which makes
the whole lifecycle unit-testable without sockets.

Execution model: one asyncio event loop owns the queue, the SSE bus
and all bookkeeping; ``job_workers`` worker *tasks* pull jobs from the
:class:`~repro.service.queue.FairQueue` and run each job's engine batch
in a thread (``asyncio.to_thread``) — the engine is synchronous and
each small job is CPU-bound for milliseconds, so threads per job (not
per unit) keeps the loop responsive while the GIL arbitrates the rest.
Setting ``engine_workers > 1`` additionally fans each job's units out
to a process pool, reusing the engine's pool fault handling verbatim.

Durability invariants (what the load smoke's kill-and-restart proves):

* a job is journalled (``kind: job``) *before* submit returns its id —
  an acknowledged job survives any later crash;
* every unit an engine completes is journalled by the engine before the
  next is started — a killed job resumes with completed units served
  from its run journal, not recomputed;
* every state transition is journalled after the in-memory transition
  commits — replay lands each job in its last acknowledged state, and
  jobs that died mid-``running`` come back ``queued`` + ``recovered``.

Determinism: per-job seeds come from the spec (explicit or
content-derived), unit seeds follow :func:`repro.engine.seed_stream`,
and the engine folds results in unit order — so cuts are bit-identical
to a serial in-process reference run regardless of worker counts,
restarts, or injected faults.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..engine import Engine, EngineConfig, ProgressEvent
from ..engine.cache import ResultCache, default_cache_dir
from ..telemetry import CallbackRecorder
from .jobs import JOB_STATES, Job, job_id_for
from .queue import FairQueue, QueueClosed
from .recovery import ServiceJournal, jobs_journal_path, recover
from .schemas import JobSpec, SchemaError, build_graph, build_units, parse_job_spec
from .sse import EventBus

log = logging.getLogger("repro.service")

#: Telemetry events forwarded to SSE (moves excluded: too chatty).
TRACE_EVENTS = ("run_start", "pass_end", "run_end")


class JobNotFound(KeyError):
    """No job with the requested id."""


class ServiceStopping(RuntimeError):
    """Submission rejected: the service is shutting down (HTTP 503)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs (HTTP binding + execution + durability).

    ``engine_workers=0`` (in-process units) is the right default for
    swarms of small jobs: job-level concurrency comes from
    ``job_workers`` threads, and process pools per tiny job would cost
    more in fork overhead than they buy.  Raise it for services fed few
    large jobs.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Process-pool size per engine batch (0/1 = in-process units).
    engine_workers: int = 0
    #: Concurrent job executions (worker tasks, each running one job).
    job_workers: int = 8
    #: Tenant -> weight for the fair queue (absent tenants weigh 1.0).
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    #: Largest accepted request body (inline netlists can be big).
    max_body_bytes: int = 32 * 1024 * 1024
    #: Verify the result cache on startup, dropping corrupt entries.
    integrity_check: bool = True
    #: Per-unit wall-clock budget, or None for unbounded.
    unit_timeout: Optional[float] = None
    #: Seconds of SSE silence before a heartbeat comment.
    sse_heartbeat: float = 15.0
    #: Terminal jobs kept in memory; the oldest-finished beyond this are
    #: evicted (status/result then 404, but their journals remain — a
    #: long-lived service no longer grows without bound).  0 = unlimited.
    max_job_history: int = 10000

    def resolved_cache_dir(self) -> str:
        """The effective cache root (explicit or the engine default)."""
        return self.cache_dir or default_cache_dir()


class PartitionService:
    """Transport-free service core: accept, schedule, execute, recover.

    Lifecycle::

        service = PartitionService(ServiceConfig())
        await service.start()      # recovery replay + worker tasks
        ...
        await service.stop()       # drain-free stop; jobs resume next start
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.jobs: Dict[str, Job] = {}
        self.queue = FairQueue(self.config.tenant_weights)
        self.journal = ServiceJournal(
            jobs_journal_path(self.config.resolved_cache_dir())
        )
        self.bus: Optional[EventBus] = None
        self.integrity: Optional[Dict[str, Any]] = None
        self.recovered_jobs = 0
        self._seq = 0
        self._workers: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Replay the journals, then start the worker tasks."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self.bus = EventBus(loop)

        if self.config.integrity_check and self.config.use_cache:
            self.integrity = await asyncio.to_thread(self._verify_cache)

        state = await asyncio.to_thread(recover, self.config.resolved_cache_dir())
        self._seq = state.max_seq + 1
        for job in state.finished:
            self.jobs[job.job_id] = job
            self.bus.publish(job.job_id, "state", self._state_payload(job))
        for job in state.pending:
            self.jobs[job.job_id] = job
            self.bus.publish(job.job_id, "state", self._state_payload(job))
            await self.queue.put(job, cost=float(job.spec.runs))
        self.recovered_jobs = state.total
        if state.total:
            log.info(
                "recovered %d job(s): %d to re-run, %d finished",
                state.total, len(state.pending), len(state.finished),
            )

        for n in range(max(1, self.config.job_workers)):
            self._workers.append(
                asyncio.create_task(self._worker(), name=f"job-worker-{n}")
            )

    def _verify_cache(self) -> Dict[str, Any]:
        """Startup cache scrub; corrupt entries are removed, not fatal."""
        cache = ResultCache(root=self.config.resolved_cache_dir())
        report = cache.verify(remove=True)
        if report.corrupt:
            log.warning("cache verify: %s", report.summary())
        return {
            "scanned": report.scanned,
            "ok": report.ok,
            "corrupt": report.corrupt,
            "removed": report.removed,
        }

    async def stop(self) -> None:
        """Stop accepting and executing; queued jobs persist for restart.

        Running engine batches are cancelled cooperatively (their
        completed units are already journalled) — this is the same path
        a SIGTERM takes, and recovery owns whatever is left.
        """
        await self.queue.close()
        for job in self.jobs.values():
            if job.state == "running":
                job.cancel_token.cancel()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        if self.bus is not None:
            # End every open SSE stream: jobs that will never reach a
            # terminal state in this process must not hold connection
            # handlers (and the HTTP server's wait_closed) open forever.
            self.bus.close()
        self.journal.close()

    # ------------------------------------------------------------------
    # Client-facing operations (called from the event loop)
    # ------------------------------------------------------------------
    async def submit(self, payload: Any) -> Job:
        """Validate, journal and enqueue one submission.

        Raises :exc:`SchemaError` on a bad payload (the HTTP layer maps
        it to 400) and :exc:`ServiceStopping` once shutdown has begun
        (503).  The job record hits the journal before this returns, so
        an acknowledged submission is durable.
        """
        if self.queue.closed:
            raise ServiceStopping("service is shutting down")
        spec = parse_job_spec(payload)
        if "hgr" in spec.graph:
            # Parse inline netlists at the door: a malformed graph must
            # 400 at submit, not fail a queued job minutes later.
            await asyncio.to_thread(build_graph, spec)
        seq = self._seq
        self._seq += 1
        job = Job(job_id=job_id_for(seq, spec), spec=spec)
        if job.job_id in self.jobs:
            # Same spec resubmitted never collides: seq differs. A true
            # duplicate id means a journal/seq inconsistency — refuse.
            raise SchemaError(f"job id collision for {job.job_id}")
        self.jobs[job.job_id] = job
        await asyncio.to_thread(self.journal.append_job, job, seq)
        await asyncio.to_thread(self.journal.append_state, job.job_id, "queued")
        self._publish_state(job)
        try:
            await self.queue.put(job, cost=float(spec.runs))
        except QueueClosed:
            # Shutdown raced the journal append: the job is already
            # durable, so it is accepted-for-restart — recovery re-runs
            # it on the next start — rather than a late 5xx.
            log.info(
                "job %s accepted during shutdown; runs on next start",
                job.job_id,
            )
        return job

    def get_job(self, job_id: str) -> Job:
        """The job with ``job_id``, or raise :exc:`JobNotFound`."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFound(job_id) from None

    def list_jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[Job]:
        """Jobs filtered by state and/or tenant, in submission order."""
        out = []
        for job in self.jobs.values():
            if state is not None and job.state != state:
                continue
            if tenant is not None and job.spec.tenant != tenant:
                continue
            out.append(job)
        return out

    async def cancel(self, job_id: str) -> Job:
        """Cancel a job in any non-terminal state (idempotent).

        Queued jobs are withdrawn immediately; running jobs get their
        token fired and reach ``cancelled`` once the engine drains.
        """
        job = self.get_job(job_id)
        if job.terminal:
            return job
        removed = await self.queue.remove(job_id)
        job.cancel_token.cancel()
        if removed is not None:
            await self._finish(job, "cancelled")
        return job

    async def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload."""
        by_state = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            by_state[job.state] += 1
        payload: Dict[str, Any] = {
            "jobs": by_state,
            "total_jobs": len(self.jobs),
            "queue": await self.queue.snapshot(),
            "recovered_jobs": self.recovered_jobs,
            "journal": {
                "appended": self.journal.appended,
                "errors": self.journal.errors,
            },
            "workers": {
                "job_workers": len(self._workers),
                "engine_workers": self.config.engine_workers,
            },
        }
        if self.integrity is not None:
            payload["cache_integrity"] = self.integrity
        return payload

    def ensure_results(self, job: Job) -> bool:
        """Rehydrate a recovered ``done`` job's results from its run journal.

        Recovery restores job *states* from the jobs journal; the unit
        results themselves already live in the engine's per-run journal
        (fsynced before the job could reach ``done``), so a restarted
        server serves results without recomputing anything.  Returns
        whether ``job.results`` is populated afterwards.
        """
        if job.results is not None:
            return True
        if job.state != "done":
            return False
        from ..engine.journal import iter_journal_records, journal_path
        from ..engine.records import decode_result

        path = journal_path(
            self.config.resolved_cache_dir(), job.run_id
        )
        base = job.spec.effective_seed()
        rows: Dict[int, Dict[str, Any]] = {}
        for record in iter_journal_records(path):
            if record.get("type") != "unit":
                continue
            seed = record.get("seed")
            if not isinstance(seed, int):
                continue
            index = seed - base
            if not 0 <= index < job.spec.runs:
                continue
            try:
                result = decode_result(record)
            except (ValueError, KeyError, TypeError):
                continue
            rows[index] = {
                "seed": seed,
                "index": index,
                "seconds": round(float(record.get("seconds", 0.0)), 6),
                "source": "journal",
                "cached": True,
                "cut": result.cut,
                "passes": result.passes,
            }
        if len(rows) == job.spec.runs:
            job.results = [rows[i] for i in range(job.spec.runs)]
            return True
        return False

    # ------------------------------------------------------------------
    # Execution (worker tasks + engine threads)
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """One worker task: pull, execute, settle — forever.

        Nothing a single job does may kill the worker: an exception
        escaping the settle path (e.g. a payload encoding bug) is
        logged, the job is force-failed, and the worker keeps pulling —
        otherwise one bad job would permanently shrink the pool.
        """
        while True:
            try:
                job = await self.queue.get()
            except QueueClosed:
                return
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - pool must survive any job
                log.exception(
                    "job %s escaped settling; failing it and continuing",
                    job.job_id,
                )
                job.error = job.error or "internal error while settling job"
                try:
                    await self._finish(job, "failed")
                except Exception:  # noqa: BLE001 - last-ditch settle
                    log.exception("failsafe settle of job %s failed", job.job_id)

    async def _run_job(self, job: Job) -> None:
        if job.cancel_token.cancelled:
            await self._finish(job, "cancelled")
            return
        if not job.transition("running"):
            return  # lost a race with cancel
        await asyncio.to_thread(self.journal.append_state, job.job_id, "running")
        self._publish_state(job)
        try:
            results, interrupted = await asyncio.to_thread(self._execute, job)
        except asyncio.CancelledError:
            # Service stopping: leave the job for recovery (journal
            # still says "running" -> replays as queued+recovered).
            job.cancel_token.cancel()
            raise
        except Exception as exc:  # noqa: BLE001 - job must settle
            log.exception("job %s failed", job.job_id)
            job.error = f"{type(exc).__name__}: {exc}"
            await self._finish(job, "failed")
            return
        job.results = results
        if interrupted:
            await self._finish(job, "cancelled")
        elif any(r.get("error") for r in results):
            job.error = next(r["error"] for r in results if r.get("error"))
            await self._finish(job, "failed")
        else:
            await self._finish(job, "done")

    def _execute(self, job: Job):
        """Run one job's engine batch (worker thread).

        Always journalled (``run_id=job.run_id``) and always
        ``resume=True`` — a fresh job's journal is empty so resume is a
        no-op, and a recovered job's journal serves every unit that
        finished before the crash.
        """
        assert self.bus is not None
        material = build_units(job.spec, tag=job.spec.tag or job.job_id)
        bus = self.bus

        def on_trace(event: str, payload: Dict[str, Any]) -> None:
            bus.publish_threadsafe(
                job.job_id, "trace", dict(payload, event=event)
            )

        def on_progress(event: ProgressEvent) -> None:
            snapshot = {
                "done": event.done,
                "total": event.total,
                "elapsed_seconds": round(event.elapsed_seconds, 6),
                "throughput": round(event.throughput, 3),
                "eta_seconds": round(event.eta_seconds, 3),
                "latest_cut": (
                    event.latest.result.cut if event.latest.ok else None
                ),
                "latest_source": event.latest.source,
            }
            job.progress.update(snapshot)
            bus.publish_threadsafe(job.job_id, "progress", snapshot)

        engine = Engine(
            EngineConfig(
                workers=self.config.engine_workers,
                cache_dir=self.config.resolved_cache_dir(),
                use_cache=self.config.use_cache,
                on_error="collect",
                handle_signals=False,
                timeout=self.config.unit_timeout,
                recorder=CallbackRecorder(on_trace, events=TRACE_EVENTS),
            )
        )
        unit_results = engine.run(
            material.units,
            progress=on_progress,
            run_id=job.run_id,
            resume=True,
            cancel=job.cancel_token,
        )
        results = [self._encode_unit(r) for r in unit_results]
        return results, engine.interrupted

    @staticmethod
    def _encode_unit(unit_result) -> Dict[str, Any]:
        """One unit's JSON-ready result row."""
        row: Dict[str, Any] = {
            "seed": unit_result.unit.seed,
            "index": unit_result.index,
            "seconds": round(unit_result.seconds, 6),
            "source": unit_result.source,
            "cached": unit_result.cached,
        }
        if unit_result.ok:
            row["cut"] = unit_result.result.cut
            row["passes"] = unit_result.result.passes
        else:
            row["cut"] = None
            row["error"] = (
                f"{unit_result.error.exc_type}: {unit_result.error.message}"
            )
        return row

    # ------------------------------------------------------------------
    # Settling + events
    # ------------------------------------------------------------------
    async def _finish(self, job: Job, state: str) -> None:
        if not job.transition(state):
            return
        await asyncio.to_thread(self.journal.append_state, job.job_id, state)
        self._publish_state(job)
        self._evict_history()

    def _evict_history(self) -> None:
        """Bound in-memory job history to ``max_job_history`` terminals.

        Oldest-finished terminal jobs are dropped from ``self.jobs`` and
        the event bus replay cache; their results stay durable in the
        run journals, so this trades 404s on ancient job ids for a flat
        memory profile under sustained traffic.
        """
        cap = self.config.max_job_history
        if cap <= 0:
            return
        terminal = [j for j in self.jobs.values() if j.terminal]
        excess = len(terminal) - cap
        if excess <= 0:
            return
        terminal.sort(key=lambda j: j.finished_at or 0.0)
        for job in terminal[:excess]:
            self.jobs.pop(job.job_id, None)
            if self.bus is not None:
                self.bus.forget(job.job_id)

    def _state_payload(self, job: Job) -> Dict[str, Any]:
        return job.status_payload()

    def _publish_state(self, job: Job) -> None:
        if self.bus is not None:
            self.bus.publish(job.job_id, "state", self._state_payload(job))
