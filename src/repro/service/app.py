"""The service orchestrator: queue + workers + engine + durability.

:class:`PartitionService` is the transport-free core of the service —
the HTTP layer (:mod:`repro.service.api`) is a thin veneer over its
``submit`` / ``get_job`` / ``cancel`` / ``stats`` methods, which makes
the whole lifecycle unit-testable without sockets.

Execution model: one asyncio event loop owns the queue, the SSE bus
and all bookkeeping; ``job_workers`` worker *tasks* pull jobs from the
:class:`~repro.service.queue.FairQueue` and run each job's engine batch
in a thread (``asyncio.to_thread``) — the engine is synchronous and
each small job is CPU-bound for milliseconds, so threads per job (not
per unit) keeps the loop responsive while the GIL arbitrates the rest.
Setting ``engine_workers > 1`` additionally fans each job's units out
to a process pool, reusing the engine's pool fault handling verbatim.

Durability invariants (what the load smoke's kill-and-restart proves):

* a job is journalled (``kind: job``) *before* submit returns its id —
  an acknowledged job survives any later crash;
* every unit an engine completes is journalled by the engine before the
  next is started — a killed job resumes with completed units served
  from its run journal, not recomputed;
* every state transition is journalled after the in-memory transition
  commits — replay lands each job in its last acknowledged state, and
  jobs that died mid-``running`` come back ``queued`` + ``recovered``.

Determinism: per-job seeds come from the spec (explicit or
content-derived), unit seeds follow :func:`repro.engine.seed_stream`,
and the engine folds results in unit order — so cuts are bit-identical
to a serial in-process reference run regardless of worker counts,
restarts, or injected faults.
"""

from __future__ import annotations

import asyncio
import logging
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..engine import Engine, EngineConfig, ProgressEvent
from ..engine.cache import ResultCache, default_cache_dir
from ..guard import (
    RLIMIT_ENV,
    AdmissionController,
    OverloadedError,
    QuarantinedError,
    QuarantineRegistry,
    RssWatchdog,
    quarantine_dir,
)
from ..telemetry import GUARD_COUNTER_KEYS, CallbackRecorder
from .jobs import JOB_STATES, Job, job_id_for
from .queue import FairQueue, QueueClosed, QueueFull
from .recovery import ServiceJournal, jobs_journal_path, recover
from .schemas import JobSpec, SchemaError, build_graph, build_units, parse_job_spec
from .sse import EventBus

log = logging.getLogger("repro.service")

#: Telemetry events forwarded to SSE (moves excluded: too chatty).
TRACE_EVENTS = ("run_start", "pass_end", "run_end")


class JobNotFound(KeyError):
    """No job with the requested id."""


class ServiceStopping(RuntimeError):
    """Submission rejected: the service is shutting down (HTTP 503)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs (HTTP binding + execution + durability).

    ``engine_workers=0`` (in-process units) is the right default for
    swarms of small jobs: job-level concurrency comes from
    ``job_workers`` threads, and process pools per tiny job would cost
    more in fork overhead than they buy.  Raise it for services fed few
    large jobs.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Process-pool size per engine batch (0/1 = in-process units).
    engine_workers: int = 0
    #: Concurrent job executions (worker tasks, each running one job).
    job_workers: int = 8
    #: Tenant -> weight for the fair queue (absent tenants weigh 1.0).
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    #: Largest accepted request body (inline netlists can be big).
    max_body_bytes: int = 32 * 1024 * 1024
    #: Verify the result cache on startup, dropping corrupt entries.
    integrity_check: bool = True
    #: Per-unit wall-clock budget, or None for unbounded.
    unit_timeout: Optional[float] = None
    #: Seconds of SSE silence before a heartbeat comment.
    sse_heartbeat: float = 15.0
    #: Terminal jobs kept in memory; the oldest-finished beyond this are
    #: evicted (status/result then 404, but their journals remain — a
    #: long-lived service no longer grows without bound).  0 = unlimited.
    max_job_history: int = 10000
    # -- guard layer (repro.guard; see docs/guard.md) ------------------
    #: Max queued (admitted, not yet running) jobs; 0 = unbounded.
    #: Beyond it, submissions shed with HTTP 429 + Retry-After.
    max_queue_depth: int = 0
    #: Tenant -> max in-flight (queued + running) jobs.
    tenant_inflight_caps: Dict[str, int] = field(default_factory=dict)
    #: In-flight cap for tenants absent from the map; 0 = uncapped.
    default_tenant_inflight: int = 0
    #: Wall-clock budget (seconds from execution start) for jobs whose
    #: spec carries no ``deadline_seconds``; None = unbounded.
    default_job_deadline: Optional[float] = None
    #: Consecutive failed/deadline/crash outcomes before a spec
    #: fingerprint is quarantined.  0 disables the breaker.
    quarantine_after: int = 3
    #: Shed new admissions while service RSS exceeds this (MiB);
    #: None disables the watchdog.
    memory_high_water_mb: Optional[float] = None
    #: RSS watchdog poll interval, seconds.
    memory_poll_seconds: float = 0.5
    #: ``RLIMIT_AS`` soft cap (MiB) applied inside pool/shm workers via
    #: the REPRO_WORKER_RLIMIT_MB env; None leaves workers uncapped.
    worker_rlimit_mb: Optional[float] = None
    #: Clamp for the computed Retry-After header, seconds.
    min_retry_after: int = 1
    max_retry_after: int = 60

    def resolved_cache_dir(self) -> str:
        """The effective cache root (explicit or the engine default)."""
        return self.cache_dir or default_cache_dir()


class PartitionService:
    """Transport-free service core: accept, schedule, execute, recover.

    Lifecycle::

        service = PartitionService(ServiceConfig())
        await service.start()      # recovery replay + worker tasks
        ...
        await service.stop()       # drain-free stop; jobs resume next start
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.jobs: Dict[str, Job] = {}
        self.queue = FairQueue(
            self.config.tenant_weights,
            max_depth=self.config.max_queue_depth,
        )
        self.journal = ServiceJournal(
            jobs_journal_path(self.config.resolved_cache_dir())
        )
        self.watchdog: Optional[RssWatchdog] = None
        if self.config.memory_high_water_mb is not None:
            self.watchdog = RssWatchdog(
                high_water_bytes=int(
                    self.config.memory_high_water_mb * 1024 * 1024
                ),
                poll_seconds=self.config.memory_poll_seconds,
            )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            tenant_caps=self.config.tenant_inflight_caps,
            default_tenant_cap=self.config.default_tenant_inflight,
            job_workers=max(1, self.config.job_workers),
            min_retry_after=self.config.min_retry_after,
            max_retry_after=self.config.max_retry_after,
            memory_shedding=(
                self.watchdog.check_now if self.watchdog is not None else None
            ),
        )
        self.quarantine = QuarantineRegistry(
            quarantine_dir(self.config.resolved_cache_dir()),
            quarantine_after=max(1, self.config.quarantine_after),
        )
        self.guard_counters: Dict[str, int] = {
            key: 0 for key in GUARD_COUNTER_KEYS
        }
        self.bus: Optional[EventBus] = None
        self.integrity: Optional[Dict[str, Any]] = None
        self.recovered_jobs = 0
        self._seq = 0
        self._workers: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Replay the journals, then start the worker tasks."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self.bus = EventBus(loop)

        if self.config.worker_rlimit_mb is not None:
            # Environment is the one channel that reaches every pool
            # and shm worker (same mechanism as REPRO_FAULTS); applied
            # by pool_worker_init in each child.
            os.environ[RLIMIT_ENV] = f"{self.config.worker_rlimit_mb:g}"
        if self.watchdog is not None:
            self.watchdog.start()

        if self.config.integrity_check and self.config.use_cache:
            self.integrity = await asyncio.to_thread(self._verify_cache)

        state = await asyncio.to_thread(recover, self.config.resolved_cache_dir())
        self._seq = state.max_seq + 1
        for job in state.finished:
            self.jobs[job.job_id] = job
            self.bus.publish(job.job_id, "state", self._state_payload(job))

        # A job running at the moment of a crash is the prime poison
        # suspect: strike its fingerprint before deciding to re-run it.
        crashed = set(state.running_at_crash)
        for job in state.pending:
            self.jobs[job.job_id] = job
            job.deadline_seconds = (
                job.spec.deadline_seconds
                if job.spec.deadline_seconds is not None
                else self.config.default_job_deadline
            )
            if job.job_id in crashed and self.config.quarantine_after > 0:
                await asyncio.to_thread(
                    self._record_strike, job, "crash_recovery",
                    "process died while this job was running",
                )
            if self.quarantine.is_quarantined(job.spec.fingerprint()):
                # Quarantined during this replay (or a prior run):
                # settle instead of re-running the poison.
                job.error = (
                    f"quarantined: fingerprint {job.spec.fingerprint()[:12]} "
                    f"tripped the poison-job breaker"
                )
                self.bus.publish(
                    job.job_id, "state", self._state_payload(job)
                )
                await self._finish(job, "failed", count_strike=False)
                continue
            self.bus.publish(job.job_id, "state", self._state_payload(job))
            self.admission.note_admitted(job.spec.tenant)
            # force=True: these jobs were admitted before the restart
            # and must never be shed by the depth bound.
            await self.queue.put(job, cost=float(job.spec.runs), force=True)
        self.recovered_jobs = state.total
        if state.total:
            log.info(
                "recovered %d job(s): %d to re-run, %d finished",
                state.total, len(state.pending), len(state.finished),
            )

        for n in range(max(1, self.config.job_workers)):
            self._workers.append(
                asyncio.create_task(self._worker(), name=f"job-worker-{n}")
            )

    def _verify_cache(self) -> Dict[str, Any]:
        """Startup cache scrub; corrupt entries are removed, not fatal."""
        cache = ResultCache(root=self.config.resolved_cache_dir())
        report = cache.verify(remove=True)
        if report.corrupt:
            log.warning("cache verify: %s", report.summary())
        return {
            "scanned": report.scanned,
            "ok": report.ok,
            "corrupt": report.corrupt,
            "removed": report.removed,
        }

    async def stop(self) -> None:
        """Stop accepting and executing; queued jobs persist for restart.

        Running engine batches are cancelled cooperatively (their
        completed units are already journalled) — this is the same path
        a SIGTERM takes, and recovery owns whatever is left.
        """
        await self.queue.close()
        for job in self.jobs.values():
            if job.state == "running":
                job.cancel_token.cancel()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        if self.bus is not None:
            # End every open SSE stream: jobs that will never reach a
            # terminal state in this process must not hold connection
            # handlers (and the HTTP server's wait_closed) open forever.
            self.bus.close()
        if self.watchdog is not None:
            self.watchdog.stop()
        self.journal.close()

    # ------------------------------------------------------------------
    # Client-facing operations (called from the event loop)
    # ------------------------------------------------------------------
    async def submit(self, payload: Any) -> Job:
        """Validate, journal and enqueue one submission.

        Raises :exc:`SchemaError` on a bad payload (the HTTP layer maps
        it to 400), :exc:`QuarantinedError` for a quarantined spec
        fingerprint (409), :exc:`OverloadedError` when admission limits
        shed the submission (429 + Retry-After) and
        :exc:`ServiceStopping` once shutdown has begun (503).  The job
        record hits the journal before this returns, so an acknowledged
        submission is durable.
        """
        if self.queue.closed:
            raise ServiceStopping("service is shutting down")
        spec = parse_job_spec(payload)
        if self.config.quarantine_after > 0:
            self.quarantine.check(spec.fingerprint())
        # Admission *before* the (possibly expensive) inline parse:
        # shedding must stay cheap under overload.  admit() reserves the
        # job's queue + tenant slots, so any later rejection on this
        # path must release them.
        self.admission.admit(spec.tenant)
        try:
            if "hgr" in spec.graph:
                # Parse inline netlists at the door: a malformed graph
                # must 400 at submit, not fail a queued job minutes
                # later.
                await asyncio.to_thread(build_graph, spec)
            seq = self._seq
            self._seq += 1
            job = Job(job_id=job_id_for(seq, spec), spec=spec)
            if job.job_id in self.jobs:
                # Same spec resubmitted never collides: seq differs. A
                # true duplicate id means a journal/seq inconsistency —
                # refuse.
                raise SchemaError(f"job id collision for {job.job_id}")
        except BaseException:
            self.admission.note_finished(spec.tenant, was_queued=True)
            raise
        job.deadline_seconds = (
            spec.deadline_seconds
            if spec.deadline_seconds is not None
            else self.config.default_job_deadline
        )
        self.jobs[job.job_id] = job
        await asyncio.to_thread(self.journal.append_job, job, seq)
        await asyncio.to_thread(self.journal.append_state, job.job_id, "queued")
        self._publish_state(job)
        try:
            # force=True: the admission controller already holds the
            # depth bound; the queue's own check would double-count.
            await self.queue.put(job, cost=float(spec.runs), force=True)
        except QueueClosed:
            # Shutdown raced the journal append: the job is already
            # durable, so it is accepted-for-restart — recovery re-runs
            # it on the next start — rather than a late 5xx.
            log.info(
                "job %s accepted during shutdown; runs on next start",
                job.job_id,
            )
        return job

    def get_job(self, job_id: str) -> Job:
        """The job with ``job_id``, or raise :exc:`JobNotFound`."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFound(job_id) from None

    def list_jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[Job]:
        """Jobs filtered by state and/or tenant, in submission order."""
        out = []
        for job in self.jobs.values():
            if state is not None and job.state != state:
                continue
            if tenant is not None and job.spec.tenant != tenant:
                continue
            out.append(job)
        return out

    async def cancel(self, job_id: str) -> Job:
        """Cancel a job in any non-terminal state (idempotent).

        Queued jobs are withdrawn immediately; running jobs get their
        token fired and reach ``cancelled`` once the engine drains.
        """
        job = self.get_job(job_id)
        if job.terminal:
            return job
        removed = await self.queue.remove(job_id)
        job.cancel_token.cancel()
        if removed is not None:
            await self._finish(job, "cancelled", was_queued=True)
        return job

    async def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload."""
        by_state = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            by_state[job.state] += 1
        payload: Dict[str, Any] = {
            "jobs": by_state,
            "total_jobs": len(self.jobs),
            "queue": await self.queue.snapshot(),
            "recovered_jobs": self.recovered_jobs,
            "journal": {
                "appended": self.journal.appended,
                "errors": self.journal.errors,
            },
            "workers": {
                "job_workers": len(self._workers),
                "engine_workers": self.config.engine_workers,
            },
            "guard": self.guard_stats(),
        }
        if self.integrity is not None:
            payload["cache_integrity"] = self.integrity
        return payload

    def guard_stats(self) -> Dict[str, Any]:
        """The guard section of ``/v1/stats`` (admission + memory +
        quarantine), keyed by :data:`repro.telemetry.GUARD_COUNTER_KEYS`
        vocabulary for the counters."""
        admission = self.admission.snapshot()
        counters = dict(self.guard_counters)
        for reason, count in admission["shed"].items():
            counters[f"shed_{reason}"] = count
        payload: Dict[str, Any] = {
            "counters": counters,
            "admission": admission,
            "quarantine": self.quarantine.snapshot(),
            "retry_after_seconds": self.admission.retry_after_seconds(),
        }
        if self.watchdog is not None:
            payload["memory"] = {
                "rss_bytes": self.watchdog.last_rss,
                "peak_rss_bytes": self.watchdog.peak_rss,
                "high_water_bytes": self.watchdog.high_water_bytes,
                "shedding": self.watchdog.shedding,
            }
        return payload

    def readiness(self) -> Dict[str, Any]:
        """The ``/readyz`` payload: can this process accept work *now*?

        Distinct from liveness (``/healthz``, which only proves the
        loop is serving): readiness degrades whenever a new submission
        would be shed or could not be made durable — queue at depth,
        memory above high water, jobs journal unwritable, or the cache
        integrity scrub still pending.  Load balancers should route
        away from a degraded instance; it is still alive and draining.
        """
        checks: Dict[str, bool] = {}
        checks["started"] = self._started and not self.queue.closed
        checks["queue_headroom"] = (
            self.config.max_queue_depth == 0
            or self.admission.queued < self.config.max_queue_depth
        )
        checks["memory"] = not (
            self.watchdog is not None and self.watchdog.check_now()
        )
        journal_dir = self.journal.path.parent
        checks["journal_writable"] = (
            self.journal.errors == 0
            and (not journal_dir.exists() or os.access(journal_dir, os.W_OK))
        )
        checks["cache_verified"] = (
            not (self.config.integrity_check and self.config.use_cache)
            or self.integrity is not None
        )
        ready = all(checks.values())
        payload: Dict[str, Any] = {
            "ready": ready,
            "checks": checks,
        }
        if not ready:
            payload["retry_after"] = self.admission.retry_after_seconds()
        return payload

    def ensure_results(self, job: Job) -> bool:
        """Rehydrate a recovered ``done`` job's results from its run journal.

        Recovery restores job *states* from the jobs journal; the unit
        results themselves already live in the engine's per-run journal
        (fsynced before the job could reach ``done``), so a restarted
        server serves results without recomputing anything.  Returns
        whether ``job.results`` is populated afterwards.
        """
        if job.results is not None:
            return True
        if job.state != "done":
            return False
        from ..engine.journal import iter_journal_records, journal_path
        from ..engine.records import decode_result

        path = journal_path(
            self.config.resolved_cache_dir(), job.run_id
        )
        base = job.spec.effective_seed()
        rows: Dict[int, Dict[str, Any]] = {}
        for record in iter_journal_records(path):
            if record.get("type") != "unit":
                continue
            seed = record.get("seed")
            if not isinstance(seed, int):
                continue
            index = seed - base
            if not 0 <= index < job.spec.runs:
                continue
            try:
                result = decode_result(record)
            except (ValueError, KeyError, TypeError):
                continue
            rows[index] = {
                "seed": seed,
                "index": index,
                "seconds": round(float(record.get("seconds", 0.0)), 6),
                "source": "journal",
                "cached": True,
                "cut": result.cut,
                "passes": result.passes,
            }
        if len(rows) == job.spec.runs:
            job.results = [rows[i] for i in range(job.spec.runs)]
            return True
        return False

    # ------------------------------------------------------------------
    # Execution (worker tasks + engine threads)
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """One worker task: pull, execute, settle — forever.

        Nothing a single job does may kill the worker: an exception
        escaping the settle path (e.g. a payload encoding bug) is
        logged, the job is force-failed, and the worker keeps pulling —
        otherwise one bad job would permanently shrink the pool.
        """
        while True:
            try:
                job = await self.queue.get()
            except QueueClosed:
                return
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - pool must survive any job
                log.exception(
                    "job %s escaped settling; failing it and continuing",
                    job.job_id,
                )
                job.error = job.error or "internal error while settling job"
                try:
                    await self._finish(job, "failed")
                except Exception:  # noqa: BLE001 - last-ditch settle
                    log.exception("failsafe settle of job %s failed", job.job_id)

    async def _run_job(self, job: Job) -> None:
        self.admission.note_started()
        if job.cancel_token.cancelled:
            await self._finish(job, "cancelled")
            return
        if not job.transition("running"):
            return  # lost a race with cancel
        await asyncio.to_thread(self.journal.append_state, job.job_id, "running")
        self._publish_state(job)

        # Cooperative deadline: when the budget expires the engine is
        # told to drain (cancel token) and the settle below lands the
        # job in the deterministic "deadline" terminal state.  The hard
        # backstop is the engine's per-unit timeout (see _execute).
        deadline_handle: Optional[asyncio.TimerHandle] = None
        if job.deadline_seconds is not None:

            def _expire() -> None:
                if not job.terminal:
                    job.deadline_expired = True
                    job.cancel_token.cancel()

            deadline_handle = asyncio.get_running_loop().call_later(
                job.deadline_seconds, _expire
            )
        try:
            results, interrupted = await asyncio.to_thread(self._execute, job)
        except asyncio.CancelledError:
            # Service stopping: leave the job for recovery (journal
            # still says "running" -> replays as queued+recovered).
            job.cancel_token.cancel()
            raise
        except Exception as exc:  # noqa: BLE001 - job must settle
            log.exception("job %s failed", job.job_id)
            job.error = f"{type(exc).__name__}: {exc}"
            await self._finish(job, "failed")
            return
        finally:
            if deadline_handle is not None:
                deadline_handle.cancel()
        job.results = results
        # "deadline" only when the expiry actually interrupted the
        # engine: a timer firing in the instant after the last unit
        # completed must not reclassify a finished job.
        if job.deadline_expired and interrupted:
            job.error = (
                f"deadline of {job.deadline_seconds:g}s exceeded; "
                f"{sum(1 for r in results if r.get('cut') is not None)}"
                f"/{job.spec.runs} units completed"
            )
            await self._finish(job, "deadline")
        elif interrupted:
            await self._finish(job, "cancelled")
        elif any(r.get("error") for r in results):
            job.error = next(r["error"] for r in results if r.get("error"))
            await self._finish(job, "failed")
        else:
            await self._finish(job, "done")

    def _execute(self, job: Job):
        """Run one job's engine batch (worker thread).

        Always journalled (``run_id=job.run_id``) and always
        ``resume=True`` — a fresh job's journal is empty so resume is a
        no-op, and a recovered job's journal serves every unit that
        finished before the crash.
        """
        assert self.bus is not None
        material = build_units(job.spec, tag=job.spec.tag or job.job_id)
        bus = self.bus

        def on_trace(event: str, payload: Dict[str, Any]) -> None:
            bus.publish_threadsafe(
                job.job_id, "trace", dict(payload, event=event)
            )

        def on_progress(event: ProgressEvent) -> None:
            snapshot = {
                "done": event.done,
                "total": event.total,
                "elapsed_seconds": round(event.elapsed_seconds, 6),
                "throughput": round(event.throughput, 3),
                "eta_seconds": round(event.eta_seconds, 3),
                "latest_cut": (
                    event.latest.result.cut if event.latest.ok else None
                ),
                "latest_source": event.latest.source,
            }
            job.progress.update(snapshot)
            bus.publish_threadsafe(job.job_id, "progress", snapshot)

        # The job deadline doubles as a hard per-unit budget: no single
        # unit may outlive the job's whole allowance, so even a hung
        # pool worker cannot stall past roughly one deadline.
        timeouts = [
            t for t in (self.config.unit_timeout, job.deadline_seconds)
            if t is not None
        ]
        engine = Engine(
            EngineConfig(
                workers=self.config.engine_workers,
                cache_dir=self.config.resolved_cache_dir(),
                use_cache=self.config.use_cache,
                on_error="collect",
                handle_signals=False,
                timeout=min(timeouts) if timeouts else None,
                recorder=CallbackRecorder(on_trace, events=TRACE_EVENTS),
            )
        )
        unit_results = engine.run(
            material.units,
            progress=on_progress,
            run_id=job.run_id,
            resume=True,
            cancel=job.cancel_token,
        )
        results = [self._encode_unit(r) for r in unit_results]
        return results, engine.interrupted

    @staticmethod
    def _encode_unit(unit_result) -> Dict[str, Any]:
        """One unit's JSON-ready result row."""
        row: Dict[str, Any] = {
            "seed": unit_result.unit.seed,
            "index": unit_result.index,
            "seconds": round(unit_result.seconds, 6),
            "source": unit_result.source,
            "cached": unit_result.cached,
        }
        if unit_result.ok:
            row["cut"] = unit_result.result.cut
            row["passes"] = unit_result.result.passes
        else:
            row["cut"] = None
            row["error"] = (
                f"{unit_result.error.exc_type}: {unit_result.error.message}"
            )
        return row

    # ------------------------------------------------------------------
    # Settling + events
    # ------------------------------------------------------------------
    async def _finish(
        self,
        job: Job,
        state: str,
        was_queued: bool = False,
        count_strike: bool = True,
    ) -> None:
        if not job.transition(state):
            return
        self.admission.note_finished(job.spec.tenant, was_queued=was_queued)
        if state == "deadline":
            self.guard_counters["deadline_expired"] += 1
        if job.started_at is not None and job.finished_at is not None:
            self.admission.service_times.observe(
                job.finished_at - job.started_at
            )
        if count_strike and self.config.quarantine_after > 0:
            if state == "done":
                await asyncio.to_thread(
                    self.quarantine.record_success, job.spec.fingerprint()
                )
            elif state in ("failed", "deadline"):
                await asyncio.to_thread(
                    self._record_strike, job, state, job.error or ""
                )
        await asyncio.to_thread(self.journal.append_state, job.job_id, state)
        self._publish_state(job)
        self._evict_history()

    def _record_strike(self, job: Job, reason: str, detail: str) -> None:
        """One quarantine strike for ``job``'s fingerprint (any thread).

        The diagnostics dict becomes the bundle if this strike trips
        the breaker: everything needed to reproduce and debug the
        poison offline — the spec payload, its effective seed, the
        error, the last progress snapshot, and the guard counters at
        trip time.
        """
        failed_units = [
            row for row in (job.results or []) if row.get("error")
        ][:8]
        diagnostics = {
            "spec": job.spec.payload(),
            "effective_seed": job.spec.effective_seed(),
            "run_id": job.run_id,
            "error": job.error,
            "failed_units": failed_units,
            "progress": dict(job.progress),
            "guard_counters": dict(self.guard_counters),
            "shed_counts": dict(self.admission.shed_counts),
        }
        entry = self.quarantine.record_strike(
            job.spec.fingerprint(),
            reason,
            job_id=job.job_id,
            detail=detail[:2000],
            diagnostics=diagnostics,
        )
        if entry is not None:
            self.guard_counters["quarantine_trips"] += 1
            log.warning(
                "quarantined spec fingerprint %s after %d consecutive "
                "failures (bundle: %s)",
                job.spec.fingerprint()[:12],
                entry["strikes"],
                entry["bundle"],
            )

    def _evict_history(self) -> None:
        """Bound in-memory job history to ``max_job_history`` terminals.

        Oldest-finished terminal jobs are dropped from ``self.jobs`` and
        the event bus replay cache; their results stay durable in the
        run journals, so this trades 404s on ancient job ids for a flat
        memory profile under sustained traffic.
        """
        cap = self.config.max_job_history
        if cap <= 0:
            return
        terminal = [j for j in self.jobs.values() if j.terminal]
        excess = len(terminal) - cap
        if excess <= 0:
            return
        terminal.sort(key=lambda j: j.finished_at or 0.0)
        for job in terminal[:excess]:
            self.jobs.pop(job.job_id, None)
            if self.bus is not None:
                self.bus.forget(job.job_id)

    def _state_payload(self, job: Job) -> Dict[str, Any]:
        return job.status_payload()

    def _publish_state(self, job: Job) -> None:
        if self.bus is not None:
            self.bus.publish(job.job_id, "state", self._state_payload(job))
