"""HTTP/JSON transport over :class:`~repro.service.app.PartitionService`.

Dependency-light by design: the repo's runtime deps are numpy/scipy
only, so this is a small HTTP/1.1 server on raw ``asyncio.start_server``
— request-line + header parsing, Content-Length bodies, one request per
connection (``Connection: close``).  That subset is all the API needs
and keeps every byte on the wire inspectable in tests.

Routes (all JSON unless noted):

=======  ==============================  =======================================
Method   Path                            Meaning
=======  ==============================  =======================================
GET      ``/healthz``                    liveness + version
GET      ``/readyz``                     readiness probe (503 while degraded)
GET      ``/v1/stats``                   queue/jobs/journal/integrity counters
POST     ``/v1/jobs``                    submit a job spec -> 202 + job status
GET      ``/v1/jobs``                    list jobs (``?state=``, ``?tenant=``)
GET      ``/v1/jobs/{id}``               job status (``?spec=1`` embeds spec)
GET      ``/v1/jobs/{id}/result``        terminal result (409 while running)
POST     ``/v1/jobs/{id}/cancel``        cooperative cancel (idempotent)
GET      ``/v1/jobs/{id}/events``        SSE stream (``text/event-stream``)
GET      ``/v1/quarantine``              quarantined spec fingerprints
GET      ``/v1/quarantine/{fp}``         one quarantine diagnostics bundle
DELETE   ``/v1/quarantine/{fp}``         release a quarantined fingerprint
=======  ==============================  =======================================

Error bodies are ``{"error": {"message", "field"?}}``; 400 for schema
violations, 404 unknown job/route, 409 result-not-ready or quarantined
spec, 413 oversized body, 405 wrong method, 429 + ``Retry-After`` when
admission control sheds the submission (see ``docs/guard.md``).
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..guard import OverloadedError, QuarantinedError
from .app import JobNotFound, PartitionService, ServiceConfig, ServiceStopping
from .schemas import SchemaError

log = logging.getLogger("repro.service.api")

MAX_HEADER_BYTES = 64 * 1024


class _BadRequest(Exception):
    """Malformed HTTP framing; connection is answered 400 and closed."""


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra: str = "",
) -> bytes:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict",
        413: "Payload Too Large", 429: "Too Many Requests",
        500: "Internal Server Error", 503: "Service Unavailable",
    }.get(status, "OK")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        f"{extra}"
        "\r\n"
    ).encode() + body


def _error_body(message: str, field: str = "") -> bytes:
    error: Dict[str, Any] = {"message": message}
    if field:
        error["field"] = field
    return _json_bytes({"error": error})


class ServiceServer:
    """The asyncio socket server bound to one :class:`PartitionService`."""

    def __init__(
        self,
        service: PartitionService,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual port (useful after binding port 0)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start the service core (recovery replay) then bind the socket."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        log.info("listening on %s:%d", self.host, self.bound_port)

    async def stop(self) -> None:
        """Stop accepting, stop the core, then wait out connections.

        The service core must stop *before* ``wait_closed()``: on
        Python 3.12.1+ that call waits for in-flight handlers, and an
        open SSE stream for a non-terminal job only ends when the core's
        shutdown closes the event bus — waiting first would hang
        indefinitely while any SSE client stays connected.
        """
        if self._server is not None:
            self._server.close()
        await self.service.stop()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Serve requests until cancelled (after :meth:`start`)."""
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _BadRequest as exc:
                writer.write(_response(400, _error_body(str(exc))))
                return
            except (
                asyncio.IncompleteReadError, ConnectionError, LimitOverrunError
            ):
                return
            await self._dispatch(method, path, body, writer)
        except ConnectionError:  # client went away mid-response
            pass
        except Exception:  # noqa: BLE001 - server must not die per-request
            log.exception("request handling failed")
            try:
                writer.write(_response(500, _error_body("internal error")))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"bad request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"bad header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return parts[0].upper(), parts[1], headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        raw = headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise _BadRequest(f"bad Content-Length {raw!r}") from None
        if length < 0:
            raise _BadRequest("negative Content-Length")
        if length > self.service.config.max_body_bytes:
            raise _BadRequest(
                f"body exceeds {self.service.config.max_body_bytes} bytes"
            )
        if length == 0:
            return b""
        return await reader.readexactly(length)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if path == "/healthz":
            from .. import __version__

            writer.write(self._json(200, {
                "status": "ok", "version": __version__,
            }))
            return
        if path == "/readyz":
            payload = self.service.readiness()
            if payload["ready"]:
                writer.write(self._json(200, payload))
            else:
                writer.write(_response(
                    503,
                    _json_bytes(payload),
                    extra=f"Retry-After: {payload.get('retry_after', 1)}\r\n",
                ))
            return
        if path == "/v1/stats":
            writer.write(self._json(200, await self.service.stats()))
            return
        if path == "/v1/quarantine" or path.startswith("/v1/quarantine/"):
            await self._quarantine_route(method, path, writer)
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(body, writer)
            elif method == "GET":
                jobs = self.service.list_jobs(
                    state=query.get("state"), tenant=query.get("tenant")
                )
                writer.write(self._json(200, {
                    "jobs": [j.status_payload() for j in jobs],
                    "count": len(jobs),
                }))
            else:
                writer.write(_response(405, _error_body("use GET or POST")))
            return

        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, action = rest.partition("/")
            try:
                await self._job_route(method, job_id, action, query, writer)
            except JobNotFound:
                writer.write(_response(
                    404, _error_body(f"no such job {job_id!r}")
                ))
            return

        writer.write(_response(404, _error_body(f"no route {path!r}")))

    async def _submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, ValueError):
            writer.write(_response(
                400, _error_body("request body is not valid JSON")
            ))
            return
        try:
            job = await self.service.submit(payload)
        except SchemaError as exc:
            writer.write(_response(
                400, _error_body(str(exc), field=exc.field)
            ))
            return
        except QuarantinedError as exc:
            body_payload: Dict[str, Any] = {
                "error": {
                    "message": str(exc),
                    "quarantined": True,
                    "fingerprint": exc.fingerprint,
                }
            }
            writer.write(_response(409, _json_bytes(body_payload)))
            return
        except OverloadedError as exc:
            body_payload = {
                "error": {
                    "message": str(exc),
                    "reason": exc.reason,
                    "retry_after": exc.retry_after,
                }
            }
            writer.write(_response(
                429,
                _json_bytes(body_payload),
                extra=f"Retry-After: {exc.retry_after}\r\n",
            ))
            return
        except ServiceStopping as exc:
            writer.write(_response(503, _error_body(str(exc))))
            return
        writer.write(self._json(202, job.status_payload()))

    async def _quarantine_route(
        self, method: str, path: str, writer: asyncio.StreamWriter
    ) -> None:
        registry = self.service.quarantine
        rest = path[len("/v1/quarantine"):].lstrip("/")
        if not rest:
            if method != "GET":
                writer.write(_response(405, _error_body("use GET")))
                return
            entries = registry.entries()
            writer.write(self._json(200, {
                "quarantined": entries, "count": len(entries),
            }))
            return
        fingerprint = rest
        if method == "GET":
            entry = registry.is_quarantined(fingerprint)
            if entry is None:
                writer.write(_response(404, _error_body(
                    f"fingerprint {fingerprint!r} is not quarantined"
                )))
                return
            bundle = await asyncio.to_thread(registry.load_bundle, fingerprint)
            writer.write(self._json(200, {
                "entry": entry, "bundle": bundle,
            }))
        elif method == "DELETE":
            released = await asyncio.to_thread(registry.release, fingerprint)
            if not released:
                writer.write(_response(404, _error_body(
                    f"fingerprint {fingerprint!r} is not quarantined"
                )))
                return
            writer.write(self._json(200, {
                "released": fingerprint,
            }))
        else:
            writer.write(_response(405, _error_body("use GET or DELETE")))

    async def _job_route(
        self,
        method: str,
        job_id: str,
        action: str,
        query: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        if action == "" and method == "GET":
            job = self.service.get_job(job_id)
            writer.write(self._json(200, job.status_payload(
                include_spec=query.get("spec") in ("1", "true")
            )))
        elif action == "result" and method == "GET":
            job = self.service.get_job(job_id)
            if not job.terminal:
                writer.write(_response(409, _error_body(
                    f"job is {job.state}; result available once terminal"
                )))
                return
            if job.results is None:
                # Recovered job: results live in its run journal.
                await asyncio.to_thread(self.service.ensure_results, job)
            writer.write(self._json(200, job.result_payload()))
        elif action == "cancel" and method == "POST":
            job = await self.service.cancel(job_id)
            writer.write(self._json(200, job.status_payload()))
        elif action == "events" and method == "GET":
            await self._stream_events(job_id, writer)
        else:
            writer.write(_response(
                405 if action in ("", "result", "cancel", "events") else 404,
                _error_body(f"no route for {method} on {action or 'job'!r}"),
            ))

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        self.service.get_job(job_id)  # 404 before committing to a stream
        assert self.service.bus is not None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        async for frame in self.service.bus.stream(
            job_id, heartbeat=self.service.config.sse_heartbeat
        ):
            writer.write(frame)
            await writer.drain()

    @staticmethod
    def _json(status: int, payload: Any) -> bytes:
        return _response(status, _json_bytes(payload))


# `asyncio` exposes LimitOverrunError at module scope only in some
# versions; fall back to ValueError (its base) where absent.
LimitOverrunError = getattr(asyncio, "LimitOverrunError", ValueError)


async def run_service(config: ServiceConfig) -> None:
    """Run the server until SIGINT/SIGTERM (the ``repro serve`` body).

    First signal: stop accepting, cancel running engines cooperatively
    (journals flush), exit.  Queued and interrupted jobs are re-run
    from their journals on the next start — crash-consistency is the
    same whether the stop was graceful or a SIGKILL.
    """
    service = PartitionService(config)
    server = ServiceServer(service)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(
        f"repro service listening on http://{server.host}:{server.bound_port}"
        f" (cache: {config.resolved_cache_dir()})",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        await server.stop()
