"""Job specifications: the service's wire schema and its validation.

A job submission is one JSON object describing

* **a hypergraph** — either inline hMETIS text (``"hgr"``) or a seeded
  generator spec (``"generate"``), never both, and
* **a partitioning request** — algorithm, run count, base seed, balance
  criterion — plus scheduling metadata (tenant, priority, tag).

:func:`parse_job_spec` turns an untrusted payload into a frozen,
fully-validated :class:`JobSpec` (raising :exc:`SchemaError` with the
offending field otherwise); :func:`build_units` turns a spec into the
hypergraph, balance constraint and :class:`~repro.engine.WorkUnit` list
the execution engine consumes — the same units, fingerprints and cache
keys a CLI run of the identical request would produce.

Determinism: a spec without an explicit seed derives one from the
sha256 of its canonical payload (:meth:`JobSpec.effective_seed`), so
resubmitting the byte-identical job yields bit-identical cuts — and
identical experiment-cache keys, which is what makes repeat submissions
nearly free.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine import WorkUnit, seed_stream
from ..hypergraph import (
    BENCHMARK_NAMES,
    Hypergraph,
    make_benchmark,
    random_hypergraph,
    small_instance,
)
from ..hypergraph.io_ import parse_hgr_text
from ..multirun import Partitioner
from ..partition import BalanceConstraint

#: Generator spec kinds accepted in ``{"generate": {"kind": ...}}``.
GENERATOR_KINDS = ("benchmark", "many_small", "random")

#: Hard ceiling on runs per job (a job is one engine batch).
MAX_RUNS = 10_000

#: Hard ceiling on inline hgr text, in characters (~64 MB of netlist
#: would be journalled with the job; the HTTP layer enforces its own
#: body cap first).
MAX_HGR_CHARS = 16_000_000

#: Hard ceilings on the node/net counts an inline hgr header may
#: declare.  Checked *before* the full parse: a tiny body declaring
#: ``999999999`` nodes would otherwise reach the ``Hypergraph``
#: constructor, whose per-node allocations turn a 20-byte request into
#: a ``MemoryError`` (an HTTP 500 where a 400 is owed).  Matches the
#: ``random`` generator's caps.
MAX_INLINE_NODES = 1_000_000
MAX_INLINE_NETS = 4_000_000

#: Hard ceiling on a job's wall-clock deadline, in seconds (one day).
MAX_DEADLINE_SECONDS = 86_400.0

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}\Z")
_BALANCE_RE = re.compile(r"^\d{1,2}(\.\d+)?-\d{1,2}(\.\d+)?\Z")


class SchemaError(ValueError):
    """An invalid job payload; ``field`` names the offending key."""

    def __init__(self, message: str, field: str = "") -> None:
        super().__init__(message)
        self.field = field


@dataclass(frozen=True)
class JobSpec:
    """One validated job submission (construct via :func:`parse_job_spec`).

    ``graph`` is exactly one of ``{"hgr": <text>}`` or
    ``{"generate": {...}}`` — see :func:`build_graph` for the generator
    grammar.
    """

    graph: Dict[str, Any]
    algorithm: str = "fm"
    runs: int = 1
    seed: Optional[int] = None
    balance: str = "50-50"
    tenant: str = "default"
    priority: int = 0
    tag: str = ""
    #: Per-job wall-clock budget in seconds (from execution start);
    #: ``None`` defers to ``ServiceConfig.default_job_deadline``.
    deadline_seconds: Optional[float] = None

    def payload(self) -> Dict[str, Any]:
        """The canonical *wire-format* JSON form.

        Round-trips: ``parse_job_spec(spec.payload()) == spec`` — the
        jobs journal stores exactly this, so recovery replays through
        the same validator as live submissions.  ``deadline_seconds``
        is only emitted when set, so specs without a deadline keep the
        exact payload (and fingerprint/derived seed) they had before
        the field existed.
        """
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "runs": self.runs,
            "seed": self.seed,
            "balance": self.balance,
            "tenant": self.tenant,
            "priority": self.priority,
            "tag": self.tag,
        }
        if self.deadline_seconds is not None:
            out["deadline_seconds"] = self.deadline_seconds
        out.update(self.graph)  # exactly one of "hgr" / "generate"
        return out

    def fingerprint(self) -> str:
        """sha256 over the canonical payload with the seed field blanked.

        Seed-independent so :meth:`effective_seed` can be derived from
        it without self-reference; also the stable content identity
        used in generated job ids.
        """
        payload = dict(self.payload(), seed=None)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def effective_seed(self) -> int:
        """The explicit seed, else one derived from the job content.

        Content-derived seeds make unseeded submissions deterministic:
        the same payload always partitions identically, on any server.
        """
        if self.seed is not None:
            return self.seed
        return int(self.fingerprint()[:8], 16)


def _require(payload: Dict[str, Any], key: str, types, default=None):
    value = payload.get(key, default)
    if value is None and default is None:
        return default
    if not isinstance(value, types) or isinstance(value, bool):
        names = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise SchemaError(f"{key!r} must be {names}", field=key)
    return value


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate an untrusted payload into a :class:`JobSpec`.

    Every constraint that can be checked without building the graph is
    checked here — unknown algorithm names, malformed balance specs and
    generator grammar errors are all rejected at submission time, so a
    queued job can only fail for execution-time reasons.
    """
    if not isinstance(payload, dict):
        raise SchemaError("job payload must be a JSON object")
    unknown = set(payload) - {
        "hgr", "generate", "algorithm", "runs", "seed", "balance",
        "tenant", "priority", "tag", "deadline_seconds",
    }
    if unknown:
        raise SchemaError(
            f"unknown field(s): {', '.join(sorted(unknown))}",
            field=sorted(unknown)[0],
        )

    hgr = payload.get("hgr")
    generate = payload.get("generate")
    if (hgr is None) == (generate is None):
        raise SchemaError(
            "provide exactly one of 'hgr' (inline netlist text) or "
            "'generate' (generator spec)",
            field="hgr",
        )
    if hgr is not None:
        if not isinstance(hgr, str) or not hgr.strip():
            raise SchemaError("'hgr' must be non-empty hMETIS text",
                              field="hgr")
        if len(hgr) > MAX_HGR_CHARS:
            raise SchemaError(
                f"'hgr' exceeds {MAX_HGR_CHARS} characters", field="hgr"
            )
        _check_hgr_header(hgr)
        graph_spec: Dict[str, Any] = {"hgr": hgr}
    else:
        graph_spec = {"generate": _validated_generator(generate)}

    algorithm = _require(payload, "algorithm", str, "fm")
    _validate_algorithm(algorithm)

    runs = _require(payload, "runs", int, 1)
    if not 1 <= runs <= MAX_RUNS:
        raise SchemaError(f"'runs' must be in 1..{MAX_RUNS}", field="runs")

    seed = payload.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise SchemaError("'seed' must be an integer", field="seed")

    balance = _require(payload, "balance", str, "50-50")
    if not _BALANCE_RE.match(balance):
        raise SchemaError(
            f"bad balance spec {balance!r} (want e.g. '50-50' or '45-55')",
            field="balance",
        )
    lo_pct, hi_pct = (float(part) for part in balance.split("-"))
    if not (0.0 < lo_pct <= 50.0 <= hi_pct < 100.0):
        raise SchemaError(
            f"balance {balance!r} must satisfy 0 < lo <= 50 <= hi < 100",
            field="balance",
        )

    tenant = _require(payload, "tenant", str, "default")
    if not _TENANT_RE.match(tenant):
        raise SchemaError(
            "'tenant' must match [A-Za-z0-9._-]{1,64}", field="tenant"
        )

    priority = _require(payload, "priority", int, 0)
    if abs(priority) > 1_000_000:
        raise SchemaError("'priority' out of range", field="priority")

    tag = _require(payload, "tag", str, "")
    if len(tag) > 256:
        raise SchemaError("'tag' exceeds 256 characters", field="tag")

    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise SchemaError(
                "'deadline_seconds' must be a number", field="deadline_seconds"
            )
        if not 0.0 < deadline <= MAX_DEADLINE_SECONDS:
            raise SchemaError(
                f"'deadline_seconds' must be in (0, {MAX_DEADLINE_SECONDS:g}]",
                field="deadline_seconds",
            )
        deadline = float(deadline)

    return JobSpec(
        graph=graph_spec,
        algorithm=algorithm,
        runs=runs,
        seed=seed,
        balance=balance,
        tenant=tenant,
        priority=priority,
        tag=tag,
        deadline_seconds=deadline,
    )


def _check_hgr_header(text: str) -> None:
    """Reject inline hgr whose header declares absurd counts.

    Mirrors the first steps of :func:`parse_hgr_text` (skip blank and
    ``%`` comment lines, split the header) but stops at the counts —
    full parsing happens later in :func:`build_graph`.  Headers that
    fail to parse here are left for the real parser to diagnose.
    """
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            return  # the real parser owns this diagnostic
        try:
            num_nets, num_nodes = int(fields[0]), int(fields[1])
        except ValueError:
            return
        if num_nodes > MAX_INLINE_NODES:
            raise SchemaError(
                f"'hgr' header declares {num_nodes} nodes "
                f"(max {MAX_INLINE_NODES})",
                field="hgr",
            )
        if num_nets > MAX_INLINE_NETS:
            raise SchemaError(
                f"'hgr' header declares {num_nets} nets "
                f"(max {MAX_INLINE_NETS})",
                field="hgr",
            )
        return


def _validate_algorithm(name: str) -> None:
    """Reject unknown algorithm names at submission time."""
    import argparse

    from ..cli import _make_partitioner

    try:
        _make_partitioner(name)
    except (argparse.ArgumentTypeError, ValueError, IndexError) as exc:
        raise SchemaError(str(exc), field="algorithm") from None


def _validated_generator(spec: Any) -> Dict[str, Any]:
    """Normalize and validate a ``"generate"`` spec."""
    if not isinstance(spec, dict):
        raise SchemaError("'generate' must be an object", field="generate")
    kind = spec.get("kind")
    if kind not in GENERATOR_KINDS:
        raise SchemaError(
            f"generate.kind must be one of {', '.join(GENERATOR_KINDS)}",
            field="generate",
        )
    if kind == "benchmark":
        name = spec.get("name")
        if name not in BENCHMARK_NAMES:
            raise SchemaError(
                f"generate.name must be a Table-1 circuit "
                f"({', '.join(BENCHMARK_NAMES)})",
                field="generate",
            )
        scale = spec.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or not 0.0 < scale <= 1.0:
            raise SchemaError("generate.scale must be in (0, 1]",
                              field="generate")
        out: Dict[str, Any] = {"kind": kind, "name": name,
                               "scale": float(scale)}
        if spec.get("seed") is not None:
            out["seed"] = _generator_int(spec, "seed")
        return out
    if kind == "many_small":
        lo, hi = _size_range(spec.get("size_range", [8, 24]))
        index = _generator_int(spec, "index", default=0)
        if index < 0:
            raise SchemaError("generate.index must be >= 0",
                              field="generate")
        return {
            "kind": kind,
            "size_range": [lo, hi],
            "seed": _generator_int(spec, "seed", default=0),
            "index": index,
        }
    # kind == "random"
    nodes = _generator_int(spec, "nodes", default=64)
    nets = _generator_int(spec, "nets", default=96)
    if not 2 <= nodes <= 1_000_000 or not 1 <= nets <= 4_000_000:
        raise SchemaError("generate.nodes/nets out of range",
                          field="generate")
    return {
        "kind": kind,
        "nodes": nodes,
        "nets": nets,
        "seed": _generator_int(spec, "seed", default=0),
    }


def _generator_int(spec: Dict[str, Any], key: str, default=None) -> int:
    value = spec.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"generate.{key} must be an integer",
                          field="generate")
    return value


def _size_range(value: Any) -> Tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(v, bool) or not isinstance(v, int) for v in value)
    ):
        raise SchemaError(
            "generate.size_range must be [lo, hi] integers",
            field="generate",
        )
    lo, hi = value
    if lo < 6 or hi < lo or hi > 10_000:
        raise SchemaError(
            "generate.size_range must satisfy 6 <= lo <= hi <= 10000",
            field="generate",
        )
    return lo, hi


# ---------------------------------------------------------------------------
# Spec -> executable material
# ---------------------------------------------------------------------------
def build_graph(spec: JobSpec) -> Hypergraph:
    """Materialize the hypergraph a spec describes.

    Raises :exc:`SchemaError` for inline hgr text that fails to parse
    (the one validation that genuinely needs the full parser).
    """
    hgr = spec.graph.get("hgr")
    if hgr is not None:
        from ..hypergraph import HypergraphError

        try:
            return parse_hgr_text(hgr, origin="<inline hgr>")
        except (HypergraphError, ValueError) as exc:
            raise SchemaError(f"bad hgr payload: {exc}", field="hgr") from None
    gen = spec.graph["generate"]
    kind = gen["kind"]
    if kind == "benchmark":
        return make_benchmark(
            gen["name"], scale=gen["scale"], seed=gen.get("seed")
        )
    if kind == "many_small":
        lo, hi = gen["size_range"]
        return small_instance((lo, hi), gen["seed"], gen["index"])
    return random_hypergraph(gen["nodes"], gen["nets"], seed=gen["seed"])


def build_partitioner(spec: JobSpec) -> Partitioner:
    """The partitioner instance for a spec's algorithm name."""
    from ..cli import _make_partitioner

    return _make_partitioner(spec.algorithm)


def build_balance(spec: JobSpec, graph: Hypergraph) -> BalanceConstraint:
    """The balance constraint for a spec, bound to ``graph``."""
    from ..cli import _make_balance

    return _make_balance(graph, spec.balance)


@dataclass(frozen=True)
class JobMaterial:
    """Everything a job execution needs, built once from its spec."""

    graph: Hypergraph
    partitioner: Partitioner
    balance: BalanceConstraint
    units: List[WorkUnit] = field(default_factory=list)


def build_units(spec: JobSpec, tag: str = "") -> JobMaterial:
    """Turn a validated spec into engine work units.

    Seeds follow :func:`repro.engine.seed_stream` from the spec's
    effective seed, exactly as the CLI and ``run_many`` derive them —
    so a service job, a CLI run and a library call of the same request
    share cache keys and produce bit-identical cuts.
    """
    graph = build_graph(spec)
    partitioner = build_partitioner(spec)
    balance = build_balance(spec, graph)
    units = [
        WorkUnit(
            graph=graph,
            partitioner=partitioner,
            seed=seed,
            balance=balance,
            tag=tag or spec.tag,
        )
        for seed in seed_stream(spec.effective_seed(), spec.runs)
    ]
    return JobMaterial(
        graph=graph, partitioner=partitioner, balance=balance, units=units
    )
