"""Recursive k-way partitioning on top of 2-way min-cut.

"Each subset is further partitioned into two smaller subsets with a minimum
cut, and so forth until we have recursively partitioned the circuit into …
a prespecified number k of subsets" (paper Sec. 1).  k-way partitioning is
also the first item of the paper's future-work list (Sec. 5) — here it is
realized generically over any 2-way partitioner (PROP by default).

For k not a power of two, each level splits at a ``k1 : k2`` ratio
(``k1 = ceil(k/2)``) using an asymmetric balance constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import PropPartitioner
from ..hypergraph import Hypergraph, induced_subhypergraph
from ..multirun.runner import Partitioner
from ..partition import (
    AsymmetricBalanceConstraint,
    BalanceConstraint,
    random_fraction_sides,
)


@dataclass
class KWayResult:
    """A k-way partition of a hypergraph.

    ``cut`` counts (by cost) every net spanning two or more parts — the
    k-way generalization of the bipartition cutset (paper Sec. 1).
    """

    assignment: List[int]
    k: int
    cut: float
    part_weights: List[float]

    def part_nodes(self, part: int) -> List[int]:
        """Node ids assigned to ``part``."""
        return [v for v, p in enumerate(self.assignment) if p == part]

    def balance_spread(self) -> float:
        """(max − min) part weight divided by the mean (0 = perfect)."""
        mean = sum(self.part_weights) / len(self.part_weights)
        if mean == 0:
            return 0.0
        return (max(self.part_weights) - min(self.part_weights)) / mean


def kway_cut(graph: Hypergraph, assignment: Sequence[int]) -> float:
    """Total cost of nets spanning more than one part."""
    total = 0.0
    for net_id, pins in enumerate(graph.nets):
        first = assignment[pins[0]]
        if any(assignment[v] != first for v in pins[1:]):
            total += graph.net_cost(net_id)
    return total


def recursive_bisection(
    graph: Hypergraph,
    k: int,
    partitioner: Optional[Partitioner] = None,
    tolerance: float = 0.05,
    seed: int = 0,
    runs_per_split: int = 1,
) -> KWayResult:
    """Partition ``graph`` into ``k`` parts by recursive 2-way min-cut.

    Parameters
    ----------
    partitioner:
        Any 2-way partitioner with the common interface; defaults to PROP.
    tolerance:
        Per-split weight tolerance as a fraction of the subproblem weight
        (also the final per-part imbalance driver).
    runs_per_split:
        Random restarts per 2-way split (best cut kept).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > graph.num_nodes:
        raise ValueError(f"k={k} exceeds node count {graph.num_nodes}")
    if partitioner is None:
        partitioner = PropPartitioner()

    assignment = [0] * graph.num_nodes
    _split(
        graph,
        list(range(graph.num_nodes)),
        k,
        first_part=0,
        assignment=assignment,
        partitioner=partitioner,
        tolerance=tolerance,
        seed=seed,
        runs=max(1, runs_per_split),
    )

    weights = [0.0] * k
    for v, part in enumerate(assignment):
        weights[part] += graph.node_weight(v)
    return KWayResult(
        assignment=assignment,
        k=k,
        cut=kway_cut(graph, assignment),
        part_weights=weights,
    )


def _split(
    graph: Hypergraph,
    nodes: List[int],
    k: int,
    first_part: int,
    assignment: List[int],
    partitioner: Partitioner,
    tolerance: float,
    seed: int,
    runs: int,
) -> None:
    """Assign parts ``first_part .. first_part+k-1`` to ``nodes`` in place."""
    if k == 1:
        for v in nodes:
            assignment[v] = first_part
        return

    sub = induced_subhypergraph(graph, nodes)
    k1 = (k + 1) // 2
    k2 = k - k1
    fraction = k1 / k

    if k1 == k2:
        balance = BalanceConstraint.from_fractions(
            sub.graph, 0.5 - tolerance / 2, 0.5 + tolerance / 2
        )
        initial = None  # partitioner default (random balanced)
    else:
        balance = AsymmetricBalanceConstraint.from_fraction(
            sub.graph, fraction, tolerance
        )
        initial = random_fraction_sides(sub.graph, fraction, seed)

    best = None
    for i in range(runs):
        run_seed = seed + 7919 * i
        init = initial
        if init is None:
            result = partitioner.partition(
                sub.graph, balance=balance, seed=run_seed
            )
        else:
            if i > 0:
                init = random_fraction_sides(sub.graph, fraction, run_seed)
            result = partitioner.partition(
                sub.graph, balance=balance, initial_sides=init, seed=run_seed
            )
        if best is None or result.cut < best.cut:
            best = result
    assert best is not None

    side0 = [sub.to_parent[i] for i, s in enumerate(best.sides) if s == 0]
    side1 = [sub.to_parent[i] for i, s in enumerate(best.sides) if s == 1]
    _split(
        graph, side0, k1, first_part, assignment, partitioner,
        tolerance, seed * 2 + 1, runs,
    )
    _split(
        graph, side1, k2, first_part + k1, assignment, partitioner,
        tolerance, seed * 2 + 2, runs,
    )
