"""k-way partitioning by recursive 2-way min-cut (paper Secs. 1 and 5)."""

from .direct import KWayFMPartitioner
from .recursive import KWayResult, kway_cut, recursive_bisection
from .refine import (
    RefinementReport,
    pair_cut_costs,
    pairwise_refine,
    refine_kway_result,
)

__all__ = [
    "recursive_bisection",
    "KWayResult",
    "kway_cut",
    "pairwise_refine",
    "refine_kway_result",
    "RefinementReport",
    "pair_cut_costs",
    "KWayFMPartitioner",
]
