"""Pairwise k-way refinement.

Recursive bisection (``repro.kway.recursive``) fixes each split forever:
a node separated from its cluster at the top level can never come back.
The standard fix — and the natural way to realize the paper's Sec. 5
"k-way partitioning" with a 2-way engine — is *pairwise refinement*:
repeatedly pick a pair of parts, extract their union as a sub-hypergraph,
re-bisect it (PROP by default) starting from the current assignment, and
keep the result if the k-way cut improves.

Pairs are visited in decreasing order of the cut between them (the pair
with the most crossing cost has the most to gain); rounds repeat until a
full sweep yields no improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import PropPartitioner
from ..hypergraph import Hypergraph, induced_subhypergraph
from ..multirun.runner import Partitioner
from ..partition import BalanceConstraint, cut_cost
from .recursive import KWayResult, kway_cut


def pair_cut_costs(
    graph: Hypergraph, assignment: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Cost attributed to each part pair: for every net spanning >= 2
    parts, its cost is charged to every pair of parts it touches."""
    pairs: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(graph.nets):
        parts = sorted({assignment[v] for v in pins})
        if len(parts) < 2:
            continue
        cost = graph.net_cost(net_id)
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                key = (parts[i], parts[j])
                pairs[key] = pairs.get(key, 0.0) + cost
    return pairs


@dataclass
class RefinementReport:
    """What a refinement run did."""

    initial_cut: float
    final_cut: float
    rounds: int
    pair_attempts: int
    pair_improvements: int

    @property
    def improvement(self) -> float:
        return self.initial_cut - self.final_cut


def pairwise_refine(
    graph: Hypergraph,
    assignment: Sequence[int],
    k: int,
    partitioner: Optional[Partitioner] = None,
    max_rounds: int = 3,
    balance_tolerance: float = 0.1,
    seed: int = 0,
) -> Tuple[List[int], RefinementReport]:
    """Refine a k-way assignment by re-bisecting part pairs.

    Returns the (possibly improved) assignment and a report.  The input
    assignment is not mutated.  Per-pair balance keeps each part's weight
    within ``balance_tolerance`` of its current share, so overall k-way
    balance cannot degrade beyond that.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    if partitioner is None:
        partitioner = PropPartitioner()

    assignment = list(assignment)
    if len(assignment) != graph.num_nodes:
        raise ValueError("assignment length mismatch")
    if assignment and max(assignment) >= k:
        raise ValueError("assignment references part >= k")

    initial_cut = kway_cut(graph, assignment)
    current_cut = initial_cut
    attempts = 0
    improvements = 0
    rounds_done = 0

    for round_idx in range(max_rounds):
        rounds_done += 1
        improved_this_round = False
        pair_costs = pair_cut_costs(graph, assignment)
        ordered_pairs = sorted(
            pair_costs, key=lambda p: pair_costs[p], reverse=True
        )
        for pair_idx, (a, b) in enumerate(ordered_pairs):
            attempts += 1
            new_assignment, new_cut = _try_pair(
                graph,
                assignment,
                a,
                b,
                partitioner,
                balance_tolerance,
                seed + 101 * round_idx + pair_idx,
            )
            if new_cut < current_cut - 1e-9:
                assignment = new_assignment
                current_cut = new_cut
                improvements += 1
                improved_this_round = True
        if not improved_this_round:
            break

    report = RefinementReport(
        initial_cut=initial_cut,
        final_cut=current_cut,
        rounds=rounds_done,
        pair_attempts=attempts,
        pair_improvements=improvements,
    )
    return assignment, report


def _try_pair(
    graph: Hypergraph,
    assignment: List[int],
    a: int,
    b: int,
    partitioner: Partitioner,
    tolerance: float,
    seed: int,
) -> Tuple[List[int], float]:
    """Re-bisect parts (a, b); returns (candidate assignment, its cut)."""
    nodes = [v for v, part in enumerate(assignment) if part in (a, b)]
    if len(nodes) < 2:
        return assignment, kway_cut(graph, assignment)
    sub = induced_subhypergraph(graph, nodes, keep_dangling=True)

    # Anchor the pair balance at an even split of the pair's weight —
    # anchoring at the *current* split would let a part drain by one
    # slack per refinement attempt (a ratchet across rounds).
    total = sum(graph.node_weight(v) for v in nodes)
    slack = max(
        tolerance * total / 2.0,
        max(graph.node_weight(v) for v in nodes),
    )
    balance = BalanceConstraint(
        lo=max(0.0, total / 2.0 - slack),
        hi=min(total, total / 2.0 + slack),
        total=total,
    )

    initial_sides = [
        0 if assignment[parent] == a else 1 for parent in sub.to_parent
    ]
    result = partitioner.partition(
        sub.graph, balance=balance, initial_sides=initial_sides, seed=seed
    )

    candidate = list(assignment)
    for local, parent in enumerate(sub.to_parent):
        candidate[parent] = a if result.sides[local] == 0 else b
    return candidate, kway_cut(graph, candidate)


def refine_kway_result(
    graph: Hypergraph,
    result: KWayResult,
    partitioner: Optional[Partitioner] = None,
    max_rounds: int = 3,
    seed: int = 0,
) -> Tuple[KWayResult, RefinementReport]:
    """Convenience wrapper: refine a :class:`KWayResult` in place-style."""
    assignment, report = pairwise_refine(
        graph,
        result.assignment,
        result.k,
        partitioner=partitioner,
        max_rounds=max_rounds,
        seed=seed,
    )
    weights = [0.0] * result.k
    for v, part in enumerate(assignment):
        weights[part] += graph.node_weight(v)
    refined = KWayResult(
        assignment=assignment,
        k=result.k,
        cut=kway_cut(graph, assignment),
        part_weights=weights,
    )
    return refined, report
