"""Direct k-way FM partitioning (Sanchis-style).

Recursive bisection optimizes each 2-way cut greedily; a *direct* k-way
method [Sanchis 1989] works on the k-way objective itself: every free
node carries a gain for moving to each of the other k−1 parts, and each
step makes the globally best balance-feasible (node, target) move, locks
the node, and updates the neighborhood — the FM pass structure lifted to
k parts.  Included as the direct realization of the paper's Sec. 5 k-way
item, complementing ``recursive_bisection`` + ``pairwise_refine``.

Reference implementation: best-move selection scans all free nodes
(O(n k p) per move), which is fine up to a few hundred nodes; for larger
instances prefer recursive bisection + pairwise refinement, which reuse
the optimized 2-way engines.

The k-way cutset metric matches :func:`repro.kway.kway_cut`: a net counts
once when it spans two or more parts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from .recursive import KWayResult, kway_cut

DEFAULT_MAX_PASSES = 8


class _KWayState:
    """Mutable k-way assignment with per-net part counts and locks."""

    def __init__(self, graph: Hypergraph, assignment: Sequence[int], k: int):
        self.graph = graph
        self.k = k
        self.assignment = list(assignment)
        self.locked = [False] * graph.num_nodes
        self.part_weights = [0.0] * k
        for v, part in enumerate(self.assignment):
            self.part_weights[part] += graph.node_weight(v)
        # counts[net][part]
        self.counts: List[List[int]] = [
            [0] * k for _ in range(graph.num_nets)
        ]
        self.cut = 0.0
        for net_id, pins in enumerate(graph.nets):
            row = self.counts[net_id]
            for v in pins:
                row[self.assignment[v]] += 1
            if sum(1 for c in row if c) >= 2:
                self.cut += graph.net_cost(net_id)

    def span(self, net_id: int) -> int:
        return sum(1 for c in self.counts[net_id] if c)

    def move_gain(self, node: int, target: int) -> float:
        """Exact k-way cut decrease if ``node`` moved to ``target`` now."""
        source = self.assignment[node]
        if target == source:
            return 0.0
        gain = 0.0
        for net_id in self.graph.node_nets(node):
            row = self.counts[net_id]
            cost = self.graph.net_cost(net_id)
            spanned = sum(1 for c in row if c)
            # span after the move:
            after = spanned
            if row[source] == 1:
                after -= 1
            if row[target] == 0:
                after += 1
            if spanned >= 2 and after == 1:
                gain += cost
            elif spanned == 1 and after >= 2:
                gain -= cost
        return gain

    def move(self, node: int, target: int) -> float:
        """Apply the move; returns the realized gain."""
        gain = self.move_gain(node, target)
        source = self.assignment[node]
        for net_id in self.graph.node_nets(node):
            row = self.counts[net_id]
            row[source] -= 1
            row[target] += 1
        w = self.graph.node_weight(node)
        self.part_weights[source] -= w
        self.part_weights[target] += w
        self.assignment[node] = target
        self.cut -= gain
        return gain

    def best_target(
        self, node: int, lo: float, hi: float
    ) -> Optional[Tuple[float, int]]:
        """(gain, part) of the best feasible move for ``node``; None if
        no target part can accept it."""
        source = self.assignment[node]
        w = self.graph.node_weight(node)
        if self.part_weights[source] - w < lo - 1e-9:
            return None
        best: Optional[Tuple[float, int]] = None
        for part in range(self.k):
            if part == source:
                continue
            if self.part_weights[part] + w > hi + 1e-9:
                continue
            gain = self.move_gain(node, part)
            if best is None or gain > best[0]:
                best = (gain, part)
        return best


class KWayFMPartitioner:
    """Direct k-way FM over the spanning-net objective."""

    def __init__(
        self,
        k: int,
        balance_tolerance: float = 0.1,
        max_passes: int = DEFAULT_MAX_PASSES,
    ) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        if not 0.0 < balance_tolerance < 1.0:
            raise ValueError("balance_tolerance must be in (0, 1)")
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.k = k
        self.balance_tolerance = balance_tolerance
        self.max_passes = max_passes

    @property
    def name(self) -> str:
        return f"KFM-{self.k}"

    def partition(
        self,
        graph: Hypergraph,
        initial_assignment: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> KWayResult:
        """Partition ``graph`` into k parts by direct k-way FM passes."""
        if self.k > graph.num_nodes:
            raise ValueError(
                f"k={self.k} exceeds node count {graph.num_nodes}"
            )
        if initial_assignment is None:
            initial_assignment = self._random_assignment(graph, seed)
        state = _KWayState(graph, initial_assignment, self.k)

        mean = graph.total_node_weight / self.k
        slack = max(
            self.balance_tolerance * mean,
            max(graph.node_weights, default=1.0),
        )
        lo, hi = mean - slack, mean + slack

        for _ in range(self.max_passes):
            improvement = self._run_pass(state, lo, hi)
            if improvement <= 1e-9:
                break

        weights = [0.0] * self.k
        for v, part in enumerate(state.assignment):
            weights[part] += graph.node_weight(v)
        return KWayResult(
            assignment=state.assignment,
            k=self.k,
            cut=kway_cut(graph, state.assignment),
            part_weights=weights,
        )

    def _random_assignment(
        self, graph: Hypergraph, seed: Optional[int]
    ) -> List[int]:
        """Balanced random k-way start via repeated halving of a shuffle."""
        import random as _random

        rng = _random.Random(seed)
        order = list(range(graph.num_nodes))
        rng.shuffle(order)
        assignment = [0] * graph.num_nodes
        for idx, v in enumerate(order):
            assignment[v] = idx % self.k
        return assignment

    def _run_pass(self, state: _KWayState, lo: float, hi: float) -> float:
        """One tentative-move pass with prefix rollback on the k-way cut."""
        graph = state.graph
        state.locked = [False] * graph.num_nodes

        moves: List[Tuple[int, int]] = []  # (node, source)
        gains: List[float] = []
        free = state.graph.num_nodes
        while free > 0:
            best_node = -1
            best = None
            for v in range(graph.num_nodes):
                if state.locked[v]:
                    continue
                candidate = state.best_target(v, lo, hi)
                if candidate is None:
                    continue
                if best is None or candidate[0] > best[0]:
                    best = candidate
                    best_node = v
            if best is None:
                break
            source = state.assignment[best_node]
            realized = state.move(best_node, best[1])
            state.locked[best_node] = True
            free -= 1
            moves.append((best_node, source))
            gains.append(realized)

        best_k, best_sum, running = 0, 0.0, 0.0
        for k_idx, g in enumerate(gains, start=1):
            running += g
            if running > best_sum + 1e-12:
                best_sum, best_k = running, k_idx
        state.locked = [False] * graph.num_nodes
        for node, source in reversed(moves[best_k:]):
            state.move(node, source)
        return best_sum
