"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so the package can be
installed editable (``pip install -e .``) in offline environments that lack
the ``wheel`` package needed for PEP 660 editable installs.
"""

from setuptools import setup

setup()
