"""Tests for the table-regeneration harness (tiny scales for speed)."""

import pytest

from repro.experiments import (
    ComparisonTable,
    format_table4_times,
    run_table2,
    run_table3,
    run_table4,
    table1_rows,
)
from repro.hypergraph import TABLE1_CHARACTERISTICS


TINY = dict(scale=0.06, runs_scale=0.05, names=("balu", "t6"))


class TestTable1:
    def test_full_scale_matches_paper(self):
        rows = table1_rows(scale=1.0, names=["balu", "struct"])
        assert rows["balu"]["nodes"] == TABLE1_CHARACTERISTICS["balu"][0]
        assert rows["struct"]["pins"] == TABLE1_CHARACTERISTICS["struct"][2]

    def test_scaled(self):
        rows = table1_rows(scale=0.1, names=["t2"])
        assert rows["t2"]["nodes"] < TABLE1_CHARACTERISTICS["t2"][0]


@pytest.fixture(scope="module")
def table2():
    return run_table2(**TINY)


@pytest.fixture(scope="module")
def table3():
    return run_table3(**TINY)


class TestTable2:
    def test_structure(self, table2):
        assert isinstance(table2, ComparisonTable)
        assert set(table2.rows) == {"balu", "t6"}
        assert table2.algorithms == [
            "FM100", "FM40", "FM20", "LA-2", "LA-3", "WINDOW", "PROP",
        ]

    def test_totals_sum_rows(self, table2):
        totals = table2.totals()
        for alg in table2.algorithms:
            assert totals[alg] == pytest.approx(
                sum(table2.rows[c][alg].best_cut for c in table2.rows)
            )

    def test_improvements_exclude_reference(self, table2):
        imps = table2.improvements()
        assert "PROP" not in imps
        assert set(imps) == set(table2.algorithms) - {"PROP"}

    def test_more_fm_runs_never_hurt(self, table2):
        totals = table2.totals()
        assert totals["FM100"] <= totals["FM40"] <= totals["FM20"]

    def test_format_text(self, table2):
        text = table2.format_text()
        assert "TOTAL" in text
        assert "balu" in text
        assert "PROP" in text


class TestTable3:
    def test_structure(self, table3):
        assert table3.algorithms == ["MELO", "PARABOLI", "EIG1", "PROP"]
        assert table3.reference == "PROP"

    def test_all_cells_populated(self, table3):
        for circuit in table3.rows:
            for alg in table3.algorithms:
                assert table3.rows[circuit][alg].best_cut >= 0

    def test_cut_accessor(self, table3):
        assert table3.cut("balu", "PROP") == (
            table3.rows["balu"]["PROP"].best_cut
        )


class TestTable4:
    def test_timing_payload(self):
        table = run_table4(scale=0.06, names=("t6",), runs_per_algorithm=1)
        assert set(table.rows) == {"t6"}
        for alg in table.algorithms:
            assert table.rows["t6"][alg].seconds_per_run > 0
        text = format_table4_times(table)
        assert "TOTAL/run" in text
        assert "FM-bucket" in text
