"""Tests for the one-shot report generator."""

import pytest

from repro.experiments import REPORT_SECTIONS, generate_full_report
from repro.experiments.report import figure1_report, table1_report


class TestSectionBuilders:
    def test_figure1_report_content(self):
        text = figure1_report()
        assert "2.6400" in text       # g(3) = 2.64
        assert "ranking" in text
        assert "[3, 2, 1" in text

    def test_table1_report_all_exact(self):
        text = table1_report()
        assert "MISMATCH" not in text
        assert text.count("exact") == 16

    def test_sections_registered(self):
        assert list(REPORT_SECTIONS) == [
            "figure1", "table1", "table2", "table3", "table4",
        ]


class TestFullReport:
    def test_generate_writes_all_sections(self, tmp_path, monkeypatch):
        # keep this fast: tiny circuits, single runs
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCH_RUNS_SCALE", "0.02")
        monkeypatch.setenv("REPRO_BENCH_CIRCUITS", "t6")
        written = generate_full_report(tmp_path / "out")
        names = [p.name for p in written]
        assert names == [
            "figure1.txt", "table1.txt", "table2.txt", "table3.txt",
            "table4.txt", "report.txt",
        ]
        combined = (tmp_path / "out" / "report.txt").read_text()
        assert "Figure 1" in combined
        assert "Table 2" in combined
        assert "scale=0.05" in combined
        for p in written:
            assert p.read_text().strip()

    def test_main_entry(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.report import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        monkeypatch.setenv("REPRO_BENCH_RUNS_SCALE", "0.02")
        monkeypatch.setenv("REPRO_BENCH_CIRCUITS", "t6")
        assert main([str(tmp_path / "rep")]) == 0
        out = capsys.readouterr().out
        assert "report.txt" in out
