"""Tests for the benchmark environment-variable configuration."""

import pytest

from repro.experiments import bench_scale_from_env
from repro.experiments.tables import DEFAULT_BENCH_CIRCUITS, _scaled_runs
from repro.hypergraph import BENCHMARK_NAMES


class TestEnvParsing:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_RUNS_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_CIRCUITS", raising=False)
        scale, runs_scale, names = bench_scale_from_env()
        assert scale == 0.25
        assert runs_scale == 0.25
        assert names == DEFAULT_BENCH_CIRCUITS

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_RUNS_SCALE", "0.1")
        monkeypatch.setenv("REPRO_BENCH_CIRCUITS", "balu, t6 ,p2")
        scale, runs_scale, names = bench_scale_from_env()
        assert scale == 0.5
        assert runs_scale == 0.1
        assert names == ("balu", "t6", "p2")

    def test_full_scale_uses_all_circuits(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
        monkeypatch.delenv("REPRO_BENCH_CIRCUITS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_RUNS_SCALE", raising=False)
        _, _, names = bench_scale_from_env()
        assert names == BENCHMARK_NAMES

    def test_empty_circuit_list_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CIRCUITS", "  ")
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        _, _, names = bench_scale_from_env()
        assert names == DEFAULT_BENCH_CIRCUITS


class TestEngineFromEnv:
    def test_unset_means_sequential(self, monkeypatch):
        from repro.experiments.tables import engine_from_env

        monkeypatch.delenv("REPRO_ENGINE_WORKERS", raising=False)
        assert engine_from_env() is None

    def test_set_builds_engine(self, monkeypatch, tmp_path):
        from repro.experiments.tables import engine_from_env

        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "0")
        monkeypatch.setenv("REPRO_ENGINE_CACHE", str(tmp_path / "cache"))
        engine = engine_from_env()
        assert engine is not None
        assert engine.config.resolved_workers() == 0

    def test_env_engine_matches_sequential_table(self, monkeypatch, tmp_path):
        from repro.experiments.tables import run_table2

        kwargs = dict(scale=0.06, runs_scale=0.05, names=("t6",))
        monkeypatch.delenv("REPRO_ENGINE_WORKERS", raising=False)
        sequential = run_table2(**kwargs)
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "0")
        monkeypatch.setenv("REPRO_ENGINE_CACHE", str(tmp_path / "cache"))
        enveloped = run_table2(**kwargs)
        assert set(sequential.rows) == set(enveloped.rows)
        for circuit, row in sequential.rows.items():
            for label, cell in row.items():
                assert enveloped.rows[circuit][label].best_cut == cell.best_cut


class TestScaledRuns:
    def test_paper_counts_at_quarter_scale(self):
        assert _scaled_runs(100, 0.25) == 25
        assert _scaled_runs(40, 0.25) == 10
        assert _scaled_runs(20, 0.25) == 5

    def test_floor_of_one(self):
        assert _scaled_runs(20, 0.01) == 1

    def test_full_scale_identity(self):
        assert _scaled_runs(100, 1.0) == 100
