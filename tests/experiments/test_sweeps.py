"""Tests for the PropConfig sweep machinery."""

import pytest

from repro.core import PropConfig
from repro.experiments import sweep_prop_config
from repro.hypergraph import hierarchical_circuit


@pytest.fixture(scope="module")
def circuit():
    return hierarchical_circuit(90, 98, 350, seed=1)


class TestSweep:
    def test_cartesian_grid(self, circuit):
        result = sweep_prop_config(
            circuit,
            {"refinement_iterations": [0, 2], "pinit": [0.8, 0.95]},
            runs=2,
            circuit_name="test",
        )
        assert len(result.points) == 4
        combos = {p.overrides for p in result.points}
        assert (("refinement_iterations", 0), ("pinit", 0.8)) in combos

    def test_point_metrics_populated(self, circuit):
        result = sweep_prop_config(
            circuit, {"top_update_count": [5]}, runs=2
        )
        point = result.points[0]
        assert point.best_cut <= point.mean_cut
        assert point.seconds_per_run > 0
        assert point.override_dict() == {"top_update_count": 5}

    def test_best_point(self, circuit):
        result = sweep_prop_config(
            circuit, {"refinement_iterations": [0, 2]}, runs=2
        )
        best = result.best_point()
        assert best.best_cut == min(p.best_cut for p in result.points)

    def test_invalid_values_fail_fast(self, circuit):
        with pytest.raises(ValueError):
            sweep_prop_config(circuit, {"pmin": [0.0]}, runs=1)

    def test_unknown_field_fails_fast(self, circuit):
        with pytest.raises(TypeError):
            sweep_prop_config(circuit, {"nonsense_knob": [1]}, runs=1)

    def test_empty_grid_rejected(self, circuit):
        with pytest.raises(ValueError):
            sweep_prop_config(circuit, {}, runs=1)

    def test_runs_validated(self, circuit):
        with pytest.raises(ValueError):
            sweep_prop_config(circuit, {"pinit": [0.9]}, runs=0)

    def test_base_config_respected(self, circuit):
        base = PropConfig(refinement_iterations=1)
        result = sweep_prop_config(
            circuit, {"pinit": [0.9]}, base_config=base, runs=1
        )
        assert result.points  # ran without error under the base config

    def test_format_text(self, circuit):
        result = sweep_prop_config(
            circuit, {"refinement_iterations": [0, 2]}, runs=1,
            circuit_name="c90",
        )
        text = result.format_text()
        assert "c90" in text
        assert "refinement_iterations" in text
        assert "best" in text

    def test_empty_result_errors(self):
        from repro.experiments import SweepResult

        with pytest.raises(ValueError):
            SweepResult(circuit="x", runs_per_point=1).best_point()
