"""Internal consistency of the transcribed paper tables."""

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE2_IMPROVEMENTS,
    PAPER_TABLE2_TOTALS,
    PAPER_TABLE3,
    PAPER_TABLE3_IMPROVEMENTS,
    PAPER_TABLE3_TOTALS,
)
from repro.hypergraph import BENCHMARK_NAMES
from repro.partition import improvement_percent


class TestTable2Transcription:
    def test_all_circuits_present(self):
        assert set(PAPER_TABLE2) == set(BENCHMARK_NAMES)

    def test_totals_match_columns(self):
        """The per-circuit values must sum to the paper's totals row."""
        for alg, total in PAPER_TABLE2_TOTALS.items():
            column = [PAPER_TABLE2[c][alg] for c in PAPER_TABLE2]
            present = [v for v in column if v is not None]
            if alg == "WINDOW":
                # WINDOW is reported on a circuit subset
                assert sum(present) == total
            else:
                assert len(present) == 16
                assert sum(present) == total, alg

    def test_headline_improvements_recomputable(self):
        """Paper: PROP beats FM20 by 30%, LA-2 by 27.3%, FM100 by 22.3% —
        on totals with the (diff/larger)x100 metric."""
        prop = PAPER_TABLE2_TOTALS["PROP"]
        for alg, claimed in PAPER_TABLE2_IMPROVEMENTS.items():
            if alg == "WINDOW":
                continue  # subset total, not directly comparable
            recomputed = improvement_percent(prop, PAPER_TABLE2_TOTALS[alg])
            assert recomputed == pytest.approx(claimed, abs=0.4), alg

    def test_prop_wins_table2_totals(self):
        prop = PAPER_TABLE2_TOTALS["PROP"]
        for alg, total in PAPER_TABLE2_TOTALS.items():
            if alg not in ("PROP", "WINDOW"):
                assert prop < total


class TestTable3Transcription:
    def test_all_circuits_present(self):
        assert set(PAPER_TABLE3) == set(BENCHMARK_NAMES)

    def test_totals_match_columns(self):
        for alg, total in PAPER_TABLE3_TOTALS.items():
            column = [PAPER_TABLE3[c][alg] for c in PAPER_TABLE3]
            present = [v for v in column if v is not None]
            assert sum(present) == total, alg

    def test_paraboli_reported_on_nine_circuits(self):
        present = [
            c for c in PAPER_TABLE3 if PAPER_TABLE3[c]["PARABOLI"] is not None
        ]
        assert len(present) == 9

    def test_eig1_improvement_recomputable(self):
        """57.1% vs EIG1 on totals."""
        recomputed = improvement_percent(
            PAPER_TABLE3_TOTALS["PROP"], PAPER_TABLE3_TOTALS["EIG1"]
        )
        assert recomputed == pytest.approx(
            PAPER_TABLE3_IMPROVEMENTS["EIG1"], abs=0.2
        )

    def test_melo_improvement_recomputable(self):
        recomputed = improvement_percent(
            PAPER_TABLE3_TOTALS["PROP"], PAPER_TABLE3_TOTALS["MELO"]
        )
        assert recomputed == pytest.approx(
            PAPER_TABLE3_IMPROVEMENTS["MELO"], abs=0.2
        )

    def test_prop_wins_table3_totals(self):
        prop_total = PAPER_TABLE3_TOTALS["PROP"]
        assert prop_total < PAPER_TABLE3_TOTALS["MELO"]
        assert prop_total < PAPER_TABLE3_TOTALS["EIG1"]
