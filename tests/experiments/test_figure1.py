"""Exact reproduction of the paper's Figure 1 worked example.

These are the strongest correctness tests in the repo: every number the
paper prints for the example — FM gains, LA-3 gain vectors, iteration-1
probabilities and iteration-2 probabilistic gains — must come out of our
engines exactly.
"""

import pytest

from repro.experiments import (
    EXPECTED_FM_GAINS,
    EXPECTED_INITIAL_PROBABILITIES,
    EXPECTED_LA3_VECTORS,
    EXPECTED_PROP_GAINS,
    best_move_ranking,
    build_figure1,
    figure1_fm_gains,
    figure1_initial_probabilities,
    figure1_la3_vectors,
    figure1_prop_gains,
)


@pytest.fixture(scope="module")
def circuit():
    return build_figure1()


class TestConstruction:
    def test_sides(self, circuit):
        assert all(circuit.sides[v] == 1 for v in circuit.anchors)
        assert all(
            circuit.sides[circuit.node_index[l]] == 0 for l in range(1, 12)
        )

    def test_eleven_cut_nets(self, circuit):
        partition = circuit.make_partition()
        assert len(partition.cut_nets()) == 11

    def test_internal_nets_n12_to_n17(self, circuit):
        partition = circuit.make_partition()
        for i in range(12, 18):
            assert not partition.net_is_cut(circuit.net_index[f"n{i}"])


class TestFigure1a:
    def test_fm_gains_exact(self, circuit):
        """Fig. 1(a): FM gains 2,2,2 / 1,1 / -1 x6."""
        assert figure1_fm_gains(circuit) == EXPECTED_FM_GAINS

    def test_la3_vectors_exact(self, circuit):
        """Fig. 1(a): gain(1)=(2,0,0), gain(2)=gain(3)=(2,0,1)."""
        vectors = figure1_la3_vectors(circuit)
        for label, expected in EXPECTED_LA3_VECTORS.items():
            assert vectors[label] == expected

    def test_la3_cannot_separate_2_and_3(self, circuit):
        """The paper's point: LA-3 ties nodes 2 and 3 even though node 3 is
        clearly better (increasing lookahead does not help)."""
        vectors = figure1_la3_vectors(circuit)
        assert vectors[2] == vectors[3]

    def test_fm_cannot_separate_1_2_3(self, circuit):
        gains = figure1_fm_gains(circuit)
        assert gains[1] == gains[2] == gains[3]


class TestFigure1b:
    def test_initial_probabilities_exact(self, circuit):
        """Fig. 1(b): p = 1 / 0.8 / 0.2 from deterministic gains."""
        probs = figure1_initial_probabilities(circuit)
        for label, expected in EXPECTED_INITIAL_PROBABILITIES.items():
            assert probs[label] == pytest.approx(expected)


class TestFigure1c:
    def test_prop_gains_exact(self, circuit):
        """Fig. 1(c): g(1)=2.0016, g(2)=2.04, g(3)=2.64, g(10)=g(11)=1.8,
        g(8)=g(9)=-0.3, g(4..7)=-0.492."""
        gains = figure1_prop_gains(circuit)
        for label, expected in EXPECTED_PROP_GAINS.items():
            assert gains[label] == pytest.approx(expected, abs=1e-9), (
                f"node {label}: got {gains[label]}, paper says {expected}"
            )

    def test_prop_separates_all_three(self, circuit):
        """PROP's punchline ordering: node 3 > node 2 > node 1."""
        ranking = best_move_ranking(circuit)
        assert ranking[:3] == [3, 2, 1]

    def test_nodes_10_11_rank_next(self, circuit):
        assert set(best_move_ranking(circuit)[3:5]) == {10, 11}

    def test_gain_ordering_matches_paper_narrative(self, circuit):
        """Moving 10/11 later is worth more than moving 8/9 later (three
        nets vs one net) — visible as g(10) > g(8)."""
        gains = figure1_prop_gains(circuit)
        assert gains[10] > gains[8]
        assert gains[8] > gains[4]
