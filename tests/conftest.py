"""Shared fixtures: small canonical netlists used across the test suite.

Random-instance generation lives in :mod:`repro.testing` (shared with the
audit differential grids); this file only binds pytest fixtures to it.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import (
    Hypergraph,
    hierarchical_circuit,
    planted_bisection,
)
from repro.testing import random_instance


@pytest.fixture
def tiny_graph() -> Hypergraph:
    """6 nodes, 5 nets — small enough to reason about by hand.

    Nets: {0,1}, {1,2}, {3,4}, {4,5}, {2,3,5}.
    The split {0,1,2} / {3,4,5} cuts only the last net.
    """
    return Hypergraph([[0, 1], [1, 2], [3, 4], [4, 5], [2, 3, 5]])


@pytest.fixture
def tiny_sides() -> list:
    return [0, 0, 0, 1, 1, 1]


@pytest.fixture
def planted():
    """Planted bisection with known crossing count (quality oracle)."""
    graph, sides, crossing = planted_bisection(
        nodes_per_side=40, nets_per_side=100, crossing_nets=6, seed=11
    )
    return graph, sides, crossing


@pytest.fixture
def medium_circuit() -> Hypergraph:
    """A ~200-node clustered circuit for integration tests."""
    return hierarchical_circuit(200, 210, 760, seed=5)


def random_small_hypergraph(seed: int, max_nodes: int = 12) -> Hypergraph:
    """Deterministic random small netlist (used by handwritten sweeps).

    Alias of :func:`repro.testing.random_instance`, kept so older tests
    importing it from conftest keep working.
    """
    return random_instance(seed, max_nodes=max_nodes)
