"""Engine-backed experiment layers: tables and sweeps.

Covers the acceptance criterion that a warm cache makes the second
``run_table2`` invocation dramatically cheaper — asserted with the
engine's run counters, not wall clock, to keep CI stable.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.experiments import run_table2, run_table3, sweep_prop_config
from repro.hypergraph import hierarchical_circuit

TINY = dict(scale=0.06, runs_scale=0.05, names=("balu", "t6"))


def _inline_engine(tmp_path=None, **kwargs):
    """workers=0 keeps execution in-process so run counters are exact."""
    if tmp_path is not None:
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    else:
        kwargs.setdefault("use_cache", False)
    return Engine(EngineConfig(workers=0, **kwargs))


class TestTablesThroughEngine:
    def test_table2_engine_matches_sequential(self, tmp_path):
        sequential = run_table2(**TINY)
        engine = _inline_engine(tmp_path)
        parallel = run_table2(**TINY, engine=engine)
        assert parallel.totals() == sequential.totals()
        for circuit in sequential.rows:
            for alg in sequential.algorithms:
                assert (parallel.rows[circuit][alg].cuts
                        == sequential.rows[circuit][alg].cuts)
                assert (parallel.rows[circuit][alg].seeds
                        == sequential.rows[circuit][alg].seeds)

    def test_warm_cache_run_counter_speedup(self, tmp_path):
        """Acceptance: warm cache => >= 5x fewer executions (here: zero)."""
        engine = _inline_engine(tmp_path)
        cold = run_table2(**TINY, engine=engine)
        cold_executed = engine.stats.executed
        assert cold_executed > 0

        warm = run_table2(**TINY, engine=engine)
        warm_executed = engine.stats.executed - cold_executed
        assert engine.stats.cache_hits == cold_executed
        assert warm_executed * 5 <= cold_executed
        assert warm_executed == 0
        assert warm.totals() == cold.totals()

    def test_table3_deterministic_methods_single_run(self, tmp_path):
        engine = _inline_engine(tmp_path)
        table = run_table3(**TINY, engine=engine)
        for circuit in table.rows:
            for alg in ("MELO", "PARABOLI", "EIG1"):
                assert len(table.rows[circuit][alg].cuts) == 1

    def test_cell_timings_populated(self):
        engine = _inline_engine()
        table = run_table2(**TINY, engine=engine)
        for circuit in table.rows:
            for alg in table.algorithms:
                cell = table.rows[circuit][alg]
                assert len(cell.run_seconds) == len(cell.cuts)
                assert cell.seconds_per_run > 0


class TestSweepThroughEngine:
    @pytest.fixture(scope="class")
    def circuit(self):
        return hierarchical_circuit(90, 98, 350, seed=1)

    def test_engine_sweep_matches_sequential(self, circuit):
        grid = {"refinement_iterations": [0, 2]}
        sequential = sweep_prop_config(circuit, grid, runs=2, base_seed=3)
        swept = sweep_prop_config(
            circuit, grid, runs=2, base_seed=3, engine=_inline_engine()
        )
        assert [p.overrides for p in swept.points] == (
            [p.overrides for p in sequential.points]
        )
        assert [p.best_cut for p in swept.points] == (
            [p.best_cut for p in sequential.points]
        )
        assert [p.mean_cut for p in swept.points] == (
            [p.mean_cut for p in sequential.points]
        )

    def test_sweep_points_cached_across_sweeps(self, circuit, tmp_path):
        engine = _inline_engine(tmp_path)
        grid = {"pinit": [0.8, 0.95]}
        sweep_prop_config(circuit, grid, runs=2, engine=engine)
        first = engine.stats.executed
        sweep_prop_config(circuit, grid, runs=2, engine=engine)
        assert engine.stats.executed == first  # fully memoized
        assert engine.stats.cache_hits == first
