"""Engine streaming early-stop hook (``stop_check``).

The contract under test: ``stop_check`` sees completed units one at a
time **in unit order** (never completion order), a ``True`` verdict
drains the batch as a successful policy decision (``stopped_early`` set,
``interrupted`` NOT set), and the results list still folds in unit
order with stragglers simply absent.
"""

from repro.engine import Engine, EngineConfig, WorkUnit
from repro.testing import EchoPartitioner, FlakyPartitioner


def _inline_engine(**kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("use_cache", False)
    return Engine(EngineConfig(**kwargs))


def _units(graph, n, partitioner=None):
    partitioner = partitioner or EchoPartitioner()
    return [WorkUnit(graph, partitioner, seed=s) for s in range(n)]


class TestInlineEarlyStop:
    def test_stops_on_exact_prefix(self, tiny_graph):
        engine = _inline_engine()
        seen = []

        def stop_check(unit_result):
            seen.append(unit_result.result.cut)
            return unit_result.result.cut >= 3.0

        results = engine.run(_units(tiny_graph, 8), stop_check=stop_check)
        # EchoPartitioner: cut == seed, so the callback saw exactly the
        # seed-order prefix up to and including the stop trigger.
        assert seen == [0.0, 1.0, 2.0, 3.0]
        assert engine.stopped_early
        assert not engine.interrupted
        # Inline execution checks the guard per unit: nothing past the
        # stop point ran.
        completed = [r for r in results if r is not None]
        assert [r.result.cut for r in completed] == [0.0, 1.0, 2.0, 3.0]

    def test_no_stop_check_unchanged(self, tiny_graph):
        engine = _inline_engine()
        results = engine.run(_units(tiny_graph, 5))
        assert [r.result.cut for r in results] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert not engine.stopped_early
        assert not engine.interrupted

    def test_never_stopping_callback_runs_everything(self, tiny_graph):
        engine = _inline_engine()
        seen = []

        def stop_check(unit_result):
            seen.append(unit_result.index)
            return False

        results = engine.run(_units(tiny_graph, 6), stop_check=stop_check)
        assert seen == list(range(6))
        assert not engine.stopped_early
        assert len([r for r in results if r is not None]) == 6

    def test_flag_resets_between_runs(self, tiny_graph):
        engine = _inline_engine()
        engine.run(_units(tiny_graph, 4), stop_check=lambda r: True)
        assert engine.stopped_early
        engine.run(_units(tiny_graph, 4))
        assert not engine.stopped_early

    def test_error_units_reach_callback(self, tiny_graph):
        engine = _inline_engine(on_error="collect")
        seen = []

        def stop_check(unit_result):
            seen.append(
                "error" if unit_result.error is not None
                else unit_result.result.cut
            )
            return (
                unit_result.error is None
                and unit_result.result.cut >= 3.0
            )

        flaky = FlakyPartitioner(failing_seeds=(1,))
        results = engine.run(
            _units(tiny_graph, 8, flaky), stop_check=stop_check
        )
        assert seen == [0.0, "error", 2.0, 3.0]
        assert engine.stopped_early
        errors = [r for r in results if r is not None and r.error]
        assert len(errors) == 1


class TestPooledEarlyStop:
    def test_pool_decisions_use_unit_order(self, tiny_graph):
        # Pool completion order races, but the callback sequence and the
        # folded prefix must match the inline run bit-for-bit.
        inline_seen, pool_seen = [], []

        def make_check(log):
            def stop_check(unit_result):
                log.append(unit_result.result.cut)
                return unit_result.result.cut >= 4.0
            return stop_check

        inline = _inline_engine()
        inline.run(_units(tiny_graph, 10), stop_check=make_check(inline_seen))

        pooled = _inline_engine(workers=2)
        results = pooled.run(
            _units(tiny_graph, 10), stop_check=make_check(pool_seen)
        )
        assert pool_seen == inline_seen == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert pooled.stopped_early
        assert not pooled.interrupted
        # The decided prefix is always present; stragglers (pool units
        # already in flight when the stop fired) may or may not be.
        cuts = {
            r.index: r.result.cut for r in results if r is not None
        }
        assert all(cuts[i] == float(i) for i in range(5))

    def test_journal_serves_respect_stop(self, tiny_graph, tmp_path):
        # First run journals everything; the resumed run must stop on
        # served results without executing anything.
        config = dict(cache_dir=str(tmp_path), use_cache=False)
        first = _inline_engine(**config)
        first.run(_units(tiny_graph, 6), run_id="early-stop")

        second = _inline_engine(**config)
        seen = []

        def stop_check(unit_result):
            seen.append(unit_result.result.cut)
            return unit_result.result.cut >= 2.0

        second.run(
            _units(tiny_graph, 6), run_id="early-stop", resume=True,
            stop_check=stop_check,
        )
        assert seen == [0.0, 1.0, 2.0]
        assert second.stopped_early
        assert second.stats.executed == 0
        assert second.stats.journal_hits >= 3
