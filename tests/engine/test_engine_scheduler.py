"""Engine scheduling: parity, ordering, fault handling, progress."""

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropPartitioner
from repro.engine import Engine, EngineConfig, WorkUnit, seed_stream
from repro.hypergraph import make_benchmark
from repro.multirun import run_many
from repro.partition import BalanceConstraint
from repro.testing import SleepyPartitioner


def _inline_engine(**kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("use_cache", False)
    return Engine(EngineConfig(**kwargs))


class TestEngineBasics:
    def test_results_in_unit_order(self, tiny_graph):
        engine = _inline_engine()
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=s,
                          tag=f"u{s}")
                 for s in seed_stream(10, 5)]
        results = engine.run(units)
        assert [r.index for r in results] == list(range(5))
        assert [r.unit.seed for r in results] == [10, 11, 12, 13, 14]
        assert [r.unit.tag for r in results] == [f"u{s}" for s in range(10, 15)]

    def test_empty_batch(self):
        assert _inline_engine().run([]) == []

    def test_progress_callback_sees_every_unit(self, tiny_graph):
        events = []
        engine = _inline_engine()
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=s)
                 for s in range(4)]
        engine.run(units, progress=events.append)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        assert {e.latest.index for e in events} == {0, 1, 2, 3}

    def test_balance_travels_with_unit(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.4, 0.6)
        engine = _inline_engine()
        [result] = engine.run(
            [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0,
                      balance=balance)]
        )
        sides = result.result.sides
        assert 0.4 * 6 <= sum(1 for s in sides if s == 0) <= 0.6 * 6

    def test_run_seconds_positive(self, tiny_graph):
        engine = _inline_engine()
        [result] = engine.run(
            [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)]
        )
        assert result.seconds > 0
        assert result.source == "inline"
        assert not result.cached

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=-1)
        with pytest.raises(ValueError):
            EngineConfig(retries=-1)
        with pytest.raises(ValueError):
            EngineConfig(timeout=0)

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "3")
        assert EngineConfig().resolved_workers() == 3
        assert EngineConfig(workers=1).resolved_workers() == 1
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "zebra")
        with pytest.raises(ValueError):
            EngineConfig().resolved_workers()


class TestFaultHandling:
    def test_pool_unavailable_degrades_inline(self, tiny_graph, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", broken_pool
        )
        engine = Engine(EngineConfig(workers=4, use_cache=False, retries=1))
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=s)
                 for s in range(3)]
        results = engine.run(units)
        assert len(results) == 3
        assert all(r.source == "inline" for r in results)
        assert engine.stats.pool_failures >= 1
        assert engine.stats.inline_fallbacks == 3

    @pytest.mark.slow
    def test_timeout_falls_back_inline(self, tiny_graph):
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, timeout=0.05, retries=0,
        ))
        units = [WorkUnit(tiny_graph, SleepyPartitioner(0.6), seed=s)
                 for s in range(2)]
        results = engine.run(units)
        assert len(results) == 2
        assert engine.stats.timeouts >= 1
        assert engine.stats.inline_fallbacks >= 1
        assert [r.result.cut for r in results] == [0.0, 1.0]

    @pytest.mark.slow
    def test_deadlines_measured_from_submission(self, tiny_graph):
        """Budgets must not compound across units queued behind others.

        Four 0.4 s units on two workers against a 0.6 s budget: the
        first wave finishes in time, the second wave — started ~0.4 s
        after submission — cannot, so it must time out.  The old
        sequential ``future.result(timeout=...)`` collection restarted
        the 0.6 s budget per unit and never timed out here.
        """
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, timeout=0.6, retries=0,
        ))
        units = [WorkUnit(tiny_graph, SleepyPartitioner(0.4), seed=s)
                 for s in range(4)]
        results = engine.run(units)
        assert engine.stats.timeouts >= 1
        assert engine.stats.pool_executed >= 1  # first wave beat the deadline
        # no unit is lost: stragglers re-ran inline
        assert [r.result.cut for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert all(r.ok for r in results)


@pytest.mark.slow
class TestSequentialParallelParity:
    """Acceptance: identical cut lists, sequential vs workers=4."""

    CIRCUITS = {
        "balu": make_benchmark("balu", scale=0.1),
        "t6": make_benchmark("t6", scale=0.1),
    }

    @pytest.mark.parametrize("circuit", sorted(CIRCUITS))
    @pytest.mark.parametrize(
        "make_partitioner",
        [PropPartitioner, lambda: FMPartitioner("bucket")],
        ids=["PROP", "FM"],
    )
    def test_parity(self, circuit, make_partitioner):
        graph = self.CIRCUITS[circuit]
        sequential = run_many(
            make_partitioner(), graph, runs=4, base_seed=42,
            circuit_name=circuit,
        )
        engine = Engine(EngineConfig(workers=4, use_cache=False))
        parallel = run_many(
            make_partitioner(), graph, runs=4, base_seed=42,
            circuit_name=circuit, engine=engine,
        )
        assert parallel.cuts == sequential.cuts
        assert parallel.seeds == sequential.seeds
        assert parallel.best.sides == sequential.best.sides
        assert engine.stats.pool_executed == 4

    def test_parallel_flag_matches_sequential(self):
        graph = self.CIRCUITS["t6"]
        sequential = run_many(FMPartitioner("bucket"), graph, runs=6,
                              base_seed=7)
        parallel = run_many(FMPartitioner("bucket"), graph, runs=6,
                            base_seed=7, parallel=True)
        assert parallel.cuts == sequential.cuts
        assert parallel.seeds == sequential.seeds
