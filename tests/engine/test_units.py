"""Work-unit fingerprints and seed streams — the cache-key foundations."""

import pytest

from repro import __version__
from repro.baselines import FMPartitioner
from repro.core import PropConfig, PropPartitioner
from repro.engine import (
    WorkUnit,
    balance_fingerprint,
    hypergraph_fingerprint,
    partitioner_fingerprint,
    seed_stream,
    unit_key,
)
from repro.hypergraph import Hypergraph
from repro.partition import BalanceConstraint


class TestSeedStream:
    def test_matches_sequential_harness_convention(self):
        assert seed_stream(5, 4) == [5, 6, 7, 8]

    def test_empty(self):
        assert seed_stream(0, 0) == []

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError):
            seed_stream(0, -1)


class TestHypergraphFingerprint:
    def test_value_based_not_identity_based(self):
        a = Hypergraph([[0, 1], [1, 2]])
        b = Hypergraph([[0, 1], [1, 2]])
        assert a is not b
        assert hypergraph_fingerprint(a) == hypergraph_fingerprint(b)

    def test_net_change_changes_fingerprint(self):
        a = Hypergraph([[0, 1], [1, 2]])
        b = Hypergraph([[0, 1], [0, 2]])
        assert hypergraph_fingerprint(a) != hypergraph_fingerprint(b)

    def test_costs_and_weights_participate(self):
        base = Hypergraph([[0, 1], [1, 2]])
        costly = Hypergraph([[0, 1], [1, 2]], net_costs=[2.0, 1.0])
        heavy = Hypergraph([[0, 1], [1, 2]], node_weights=[2.0, 1.0, 1.0])
        prints = {
            hypergraph_fingerprint(g) for g in (base, costly, heavy)
        }
        assert len(prints) == 3


class TestPartitionerFingerprint:
    def test_same_config_same_fingerprint(self):
        assert partitioner_fingerprint(PropPartitioner()) == (
            partitioner_fingerprint(PropPartitioner())
        )

    def test_config_field_changes_fingerprint(self):
        default = PropPartitioner()
        tuned = PropPartitioner(PropConfig(pinit=0.8))
        assert partitioner_fingerprint(default) != partitioner_fingerprint(tuned)

    def test_container_choice_changes_fingerprint(self):
        assert partitioner_fingerprint(FMPartitioner("bucket")) != (
            partitioner_fingerprint(FMPartitioner("tree"))
        )

    def test_different_classes_differ(self):
        assert partitioner_fingerprint(PropPartitioner()) != (
            partitioner_fingerprint(FMPartitioner("bucket"))
        )

    def test_nested_partitioner_is_value_based(self):
        """A multilevel engine's ``refiner`` attribute is itself a
        partitioner object; its fingerprint must hash the configuration,
        not the default repr (which embeds the memory address and would
        defeat cross-process cache hits for every multilevel unit).
        """
        from repro.multilevel import MultilevelPartitioner, NLevelPartitioner

        for klass in (MultilevelPartitioner, NLevelPartitioner):
            assert partitioner_fingerprint(klass()) == (
                partitioner_fingerprint(klass())
            )

    def test_nested_refiner_config_participates(self):
        from repro.multilevel import MultilevelPartitioner

        default = MultilevelPartitioner()
        tuned = MultilevelPartitioner(
            refiner=PropPartitioner(PropConfig(pinit=0.8))
        )
        assert partitioner_fingerprint(default) != (
            partitioner_fingerprint(tuned)
        )

    def test_nlevel_knobs_participate(self):
        from repro.multilevel import NLevelPartitioner

        prints = {
            partitioner_fingerprint(p)
            for p in (
                NLevelPartitioner(),
                NLevelPartitioner(coarsest_nodes=120),
                NLevelPartitioner(coarsest_runs=4),
                NLevelPartitioner(rating="uniform"),
            )
        }
        assert len(prints) == 4


class TestUnitKey:
    def test_all_inputs_participate(self, tiny_graph):
        balance = BalanceConstraint.fifty_fifty(tiny_graph)
        base = WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0,
                        balance=balance)
        variants = [
            WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=1,
                     balance=balance),
            WorkUnit(tiny_graph, FMPartitioner("tree"), seed=0,
                     balance=balance),
            WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0,
                     balance=None),
        ]
        keys = {unit_key(u, __version__) for u in [base] + variants}
        assert len(keys) == 4

    def test_version_participates(self, tiny_graph):
        unit = WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)
        assert unit_key(unit, "1.0.0") != unit_key(unit, "9.9.9")
        assert unit.cache_key("1.0.0") == unit_key(unit, "1.0.0")

    def test_tag_does_not_participate(self, tiny_graph):
        a = WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0, tag="x")
        b = WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0, tag="y")
        assert unit_key(a, __version__) == unit_key(b, __version__)

    def test_balance_fingerprint_none(self):
        assert balance_fingerprint(None) == "none"
