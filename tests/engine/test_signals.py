"""Drain-then-stop signal semantics, in-process and through the engine."""

import signal
import threading

import pytest

from repro.engine import Engine, EngineConfig, SignalGuard, WorkUnit
from repro.hypergraph import make_benchmark
from repro.testing import EchoPartitioner

GRAPH = make_benchmark("t6", scale=0.05)


class TestSignalGuard:
    def test_first_signal_drains_second_hard_stops(self):
        with SignalGuard() as guard:
            assert not guard.draining
            signal.raise_signal(signal.SIGINT)
            assert guard.draining
            assert guard.signals_seen == 1
            with pytest.raises(KeyboardInterrupt, match="hard stop"):
                signal.raise_signal(signal.SIGINT)

    def test_sigterm_also_drains(self):
        with SignalGuard() as guard:
            signal.raise_signal(signal.SIGTERM)
            assert guard.draining

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with SignalGuard():
            assert signal.getsignal(signal.SIGINT) != before
        assert signal.getsignal(signal.SIGINT) == before

    def test_restored_even_after_hard_stop(self):
        before = signal.getsignal(signal.SIGINT)
        with SignalGuard():
            signal.raise_signal(signal.SIGINT)
            try:
                signal.raise_signal(signal.SIGINT)
            except KeyboardInterrupt:
                pass
        assert signal.getsignal(signal.SIGINT) == before

    def test_inert_off_main_thread(self):
        before = signal.getsignal(signal.SIGINT)
        seen = {}

        def body():
            with SignalGuard() as guard:
                seen["handler"] = signal.getsignal(signal.SIGINT)
                seen["draining"] = guard.draining

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert seen["handler"] == before  # nothing installed
        assert seen["draining"] is False


class _SignalAtSeed(EchoPartitioner):
    """Raises SIGINT in-process right before computing ``at_seed``."""

    name = "SIGNAL_AT_SEED"

    def __init__(self, at_seed: int) -> None:
        super().__init__()
        self.at_seed = at_seed

    def partition(self, graph, balance=None, initial_sides=None, seed=None):
        if seed == self.at_seed:
            signal.raise_signal(signal.SIGINT)
        return super().partition(graph, balance, initial_sides, seed)


class TestEngineDrain:
    def _units(self, n, partitioner):
        return [WorkUnit(GRAPH, partitioner, seed=s) for s in range(n)]

    def test_drain_returns_partial_journalled_results(self, tmp_path):
        """SIGINT mid-batch: completed prefix returned + journalled,
        then resume finishes the rest with zero recomputation."""
        config = EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "cache")
        )
        units = self._units(5, _SignalAtSeed(at_seed=2))
        engine = Engine(config)
        partial = engine.run(units, run_id="drained")
        # the signal fires before unit 2's compute; unit 2 itself still
        # completes (in-flight work is drained, not killed) and then the
        # engine stops scheduling units 3 and 4.
        assert engine.interrupted
        assert [r.result.cut for r in partial] == [0.0, 1.0, 2.0]
        journal = engine.open_journal("drained")
        assert len(journal.load()) == 3

        # resume with the same partitioner (same unit keys); seed 2 is
        # served from the journal, so its signal never re-fires
        resumed = Engine(config).run(
            self._units(5, _SignalAtSeed(at_seed=2)),
            run_id="drained", resume=True,
        )
        assert [r.result.cut for r in resumed] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_resume_after_drain_recomputes_zero(self, tmp_path):
        config = EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "cache")
        )
        Engine(config).run(
            self._units(5, _SignalAtSeed(at_seed=2)), run_id="d2"
        )
        second = Engine(config)
        second.run(
            self._units(5, _SignalAtSeed(at_seed=2)), run_id="d2", resume=True
        )
        assert second.stats.journal_hits == 3
        assert second.stats.executed == 2
        assert not second.interrupted

    def test_unjournalled_run_ignores_signals_by_default(self, tmp_path):
        """handle_signals=None -> guard only when run_id is given."""
        config = EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "cache")
        )
        units = self._units(5, _SignalAtSeed(at_seed=2))
        previous = signal.getsignal(signal.SIGINT)
        try:
            signal.signal(signal.SIGINT, lambda *args: None)  # absorb it
            engine = Engine(config)
            results = engine.run(units)  # no run_id
        finally:
            signal.signal(signal.SIGINT, previous)
        assert not engine.interrupted
        assert len(results) == 5  # batch ran to completion

    def test_handle_signals_true_forces_guard_without_journal(self, tmp_path):
        config = EngineConfig(
            workers=0, use_cache=False, handle_signals=True,
            cache_dir=str(tmp_path / "cache"),
        )
        engine = Engine(config)
        partial = engine.run(self._units(5, _SignalAtSeed(at_seed=1)))
        assert engine.interrupted
        assert [r.result.cut for r in partial] == [0.0, 1.0]
        # no run_id: nothing journalled
        assert not (tmp_path / "cache" / "runs").exists()
