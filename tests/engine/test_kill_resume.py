"""Subprocess kill-and-resume: the chaos smoke run under pytest.

A real process killed by a real SIGTERM mid-batch must leave a journal
from which resume yields bit-identical cuts with zero recomputation of
journalled units — the end-to-end form of the drain tests in
test_signals.py.  The logic lives in scripts/chaos_smoke.py so CI can
also run it standalone.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE = REPO_ROOT / "scripts" / "chaos_smoke.py"


def test_sigterm_then_resume_is_bit_identical(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(SMOKE), "--cache-dir", str(tmp_path)],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, (
        f"chaos smoke failed (rc {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "final cuts bit-identical" in proc.stdout


def test_sigkill_then_resume_is_bit_identical(tmp_path):
    """SIGKILL allows no drain at all — the journal's per-unit fsync
    alone must carry the resume (the torn final line is tolerated)."""
    proc = subprocess.run(
        [sys.executable, str(SMOKE), "--cache-dir", str(tmp_path),
         "--signal", "kill"],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, (
        f"chaos smoke (kill) failed (rc {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "final cuts bit-identical" in proc.stdout
