"""Run journal: append/load discipline, damage tolerance, engine resume."""

import json

import pytest

from repro.baselines import FMPartitioner
from repro.engine import (
    Engine,
    EngineConfig,
    RunJournal,
    WorkUnit,
    decode_result,
    journal_path,
    list_runs,
    seed_stream,
    unit_key,
    validate_run_id,
)
from repro.hypergraph import make_benchmark

GRAPH = make_benchmark("t6", scale=0.06)


def _units(n=4):
    return [WorkUnit(GRAPH, FMPartitioner("bucket"), seed=s)
            for s in seed_stream(7, n)]


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return Engine(EngineConfig(**kwargs))


class TestRunIds:
    def test_accepts_filesystem_safe_ids(self):
        for run_id in ("sweep-7", "20260806-121314.99", "a_b.c-d"):
            assert validate_run_id(run_id) == run_id

    @pytest.mark.parametrize(
        "bad", ["../x", "a/b", "", "a b", "x" * 129, "run\n"]
    )
    def test_rejects_escaping_ids(self, bad):
        with pytest.raises(ValueError):
            validate_run_id(bad)

    def test_journal_path_stays_under_runs(self, tmp_path):
        path = journal_path(tmp_path, "sweep-7")
        assert path == tmp_path / "runs" / "sweep-7.jsonl"


class TestAppendLoad:
    def _populate(self, tmp_path):
        engine = _engine(tmp_path)
        units = _units()
        results = engine.run(units, run_id="r1")
        return engine, units, results

    def test_roundtrip(self, tmp_path):
        engine, units, results = self._populate(tmp_path)
        journal = engine.open_journal("r1")
        records = journal.load()
        assert len(records) == 4
        for unit, unit_result in zip(units, results):
            record = records[unit_key(unit, engine._version)]
            assert record["seed"] == unit.seed
            assert record["source"] == "inline"
            assert decode_result(record).cut == unit_result.result.cut

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        engine, _, _ = self._populate(tmp_path)
        path = journal_path(engine.journal_root(), "r1")
        with open(path, "a") as fh:
            fh.write('{"type": "unit", "key": "torn')  # killed mid-append
        assert len(engine.open_journal("r1").load()) == 4

    def test_checksum_failing_line_is_skipped(self, tmp_path):
        engine, _, _ = self._populate(tmp_path)
        path = journal_path(engine.journal_root(), "r1")
        lines = path.read_text().splitlines()
        tampered = json.loads(lines[1])
        tampered["cut"] = -1.0  # edit without re-sealing
        lines[1] = json.dumps(tampered)
        path.write_text("\n".join(lines) + "\n")
        assert len(engine.open_journal("r1").load()) == 3

    def test_header_written_once(self, tmp_path):
        engine, _, _ = self._populate(tmp_path)
        engine.run(_units(), run_id="r1", resume=True)  # reopens journal
        path = journal_path(engine.journal_root(), "r1")
        headers = [
            line for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "header"
        ]
        assert len(headers) == 1
        assert json.loads(headers[0])["units"] == 4

    def test_unwritable_journal_never_aborts(self, tmp_path):
        # cache root is an existing file -> mkdir fails with NotADirectoryError
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        engine = _engine(tmp_path, cache_dir=str(blocker))
        results = engine.run(_units(), run_id="r1")
        assert len(results) == 4
        assert all(r.ok for r in results)


class TestEngineResume:
    def test_resume_recomputes_zero_completed_units(self, tmp_path):
        first = _engine(tmp_path)
        units = _units()
        baseline = first.run(units, run_id="sweep")
        assert first.stats.executed == 4

        second = _engine(tmp_path)
        resumed = second.run(units, run_id="sweep", resume=True)
        assert second.stats.journal_hits == 4
        assert second.stats.executed == 0
        assert [r.result.cut for r in resumed] == [
            r.result.cut for r in baseline
        ]
        assert all(r.source == "journal" and r.cached for r in resumed)

    def test_resume_completes_a_partial_journal(self, tmp_path):
        first = _engine(tmp_path)
        units = _units()
        baseline = first.run(units, run_id="partial")
        # simulate a crash after two units: drop the journal's tail
        path = journal_path(first.journal_root(), "partial")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")  # header + 2 units

        second = _engine(tmp_path)
        resumed = second.run(units, run_id="partial", resume=True)
        assert second.stats.journal_hits == 2
        assert second.stats.executed == 2
        assert [r.result.cut for r in resumed] == [
            r.result.cut for r in baseline
        ]
        # the journal now holds all four units again
        assert len(second.open_journal("partial").load()) == 4

    def test_without_resume_flag_journal_is_not_served(self, tmp_path):
        first = _engine(tmp_path)
        units = _units()
        first.run(units, run_id="fresh")
        second = _engine(tmp_path)
        second.run(units, run_id="fresh-2")
        assert second.stats.journal_hits == 0
        assert second.stats.executed == 4

    def test_resume_works_with_cache_enabled(self, tmp_path):
        first = _engine(tmp_path, use_cache=True)
        units = _units()
        first.run(units, run_id="cached")
        second = _engine(tmp_path, use_cache=True)
        second.run(units, run_id="cached", resume=True)
        # journal is consulted before the cache
        assert second.stats.journal_hits == 4
        assert second.stats.cache_hits == 0

    def test_list_runs(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run(_units(2), run_id="aaa")
        engine.run(_units(2), run_id="bbb")
        assert set(list_runs(engine.journal_root())) == {"aaa", "bbb"}
        assert list_runs(tmp_path / "nonexistent") == []


class TestReplayEdgeCases:
    """Crash-window shapes recovery must absorb: duplicate appends and
    torn tails, composed with a live resume (the service restart path)."""

    def test_duplicate_unit_records_replay_idempotently(self, tmp_path):
        first = _engine(tmp_path)
        units = _units()
        baseline = first.run(units, run_id="dup")
        # At-least-once journalling: re-append every unit line verbatim
        # (a crash between fsync and ack produces exactly this).
        path = journal_path(first.journal_root(), "dup")
        lines = path.read_text().splitlines()
        unit_lines = [l for l in lines if json.loads(l)["type"] == "unit"]
        with open(path, "a") as fh:
            for line in unit_lines:
                fh.write(line + "\n")

        second = _engine(tmp_path)
        resumed = second.run(units, run_id="dup", resume=True)
        assert second.stats.journal_hits == 4
        assert second.stats.executed == 0
        assert [r.result.cut for r in resumed] == [
            r.result.cut for r in baseline
        ]

    def test_conflicting_duplicate_latest_record_wins(self, tmp_path):
        engine, units = _engine(tmp_path), _units(1)
        engine.run(units, run_id="conflict")
        path = journal_path(engine.journal_root(), "conflict")
        record = json.loads(path.read_text().splitlines()[1])
        from repro.engine.records import seal

        record.pop("checksum", None)
        record["seconds"] = 123.0  # a legitimately re-sealed rewrite
        with open(path, "a") as fh:
            fh.write(json.dumps(seal(record), sort_keys=True) + "\n")
        records = engine.open_journal("conflict").load()
        assert len(records) == 1
        assert next(iter(records.values()))["seconds"] == 123.0

    def test_torn_final_line_then_resume_completes(self, tmp_path):
        first = _engine(tmp_path)
        units = _units()
        baseline = first.run(units, run_id="torn")
        path = journal_path(first.journal_root(), "torn")
        lines = path.read_text().splitlines()
        # Keep header + 2 whole units, then a torn third: the crash hit
        # mid-write.  The torn unit must be recomputed, not trusted.
        torn = lines[3][: len(lines[3]) // 2]
        path.write_text("\n".join(lines[:3] + [torn]) + "\n")

        second = _engine(tmp_path)
        resumed = second.run(units, run_id="torn", resume=True)
        assert second.stats.journal_hits == 2
        assert second.stats.executed == 2
        assert [r.result.cut for r in resumed] == [
            r.result.cut for r in baseline
        ]
        # The journal is whole again and a third resume serves all four.
        third = _engine(tmp_path)
        third.run(units, run_id="torn", resume=True)
        assert third.stats.journal_hits == 4
