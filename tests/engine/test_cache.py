"""Result-cache behaviour: hit, miss, invalidation, corruption, integrity."""

import json

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropConfig, PropPartitioner
from repro.engine import (
    Engine,
    EngineConfig,
    ResultCache,
    WorkUnit,
    checksum_ok,
    record_checksum,
)
from repro.partition import BipartitionResult


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache", version="1.0.0")


def _result(cut=3.0):
    return BipartitionResult(
        sides=[0, 0, 0, 1, 1, 1], cut=cut, algorithm="FM-bucket", seed=7,
        passes=2, runtime_seconds=0.01, stats={"moves": 5.0},
        pass_cuts=[5.0, 3.0],
    )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, cache):
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, _result())
        got = cache.get(key)
        assert got is not None
        assert got.cut == 3.0
        assert got.sides == [0, 0, 0, 1, 1, 1]
        assert got.seed == 7
        assert got.passes == 2
        assert got.stats == {"moves": 5.0}
        assert got.pass_cuts == [5.0, 3.0]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_sharded_layout(self, cache):
        key = "cd" + "1" * 62
        cache.put(key, _result())
        assert cache.path_for(key).exists()
        assert cache.path_for(key).parent.name == "cd"
        assert key in cache

    def test_corrupt_record_is_miss_and_removed(self, cache):
        key = "ef" + "2" * 62
        cache.put(key, _result())
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()
        assert cache.stats.errors == 1

    def test_record_missing_fields_is_miss(self, cache):
        key = "0a" + "3" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"cut": 1.0}))  # no "sides"
        assert cache.get(key) is None

    def test_clear_removes_all_records(self, cache):
        for i in range(3):
            cache.put(f"{i:02d}" + "4" * 62, _result())
        assert cache.clear() == 3
        assert cache.get("00" + "4" * 62) is None

    def test_non_serializable_stats_is_counted_not_raised(self, cache):
        """The old guard caught only OSError; json.dump's TypeError on a
        non-serializable ``result.stats`` escaped and aborted the run."""
        key = "1b" + "5" * 62
        bad = BipartitionResult(
            sides=[0, 1], cut=1.0, algorithm="X", seed=0,
            stats={"handle": object()},
        )
        cache.put(key, bad)  # must not raise
        assert cache.stats.errors == 1
        assert cache.stats.writes == 0
        assert key not in cache

    def test_circular_stats_is_counted_not_raised(self, cache):
        key = "2c" + "6" * 62
        loop = {}
        loop["self"] = loop
        bad = BipartitionResult(
            sides=[0, 1], cut=1.0, algorithm="X", seed=0, stats=loop,
        )
        cache.put(key, bad)  # json.dump raises ValueError here
        assert cache.stats.errors == 1
        assert key not in cache


class TestRecordIntegrity:
    """Embedded-checksum verification on read and store-wide."""

    def _tamper(self, cache, key, cut=999.0):
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        record["cut"] = cut  # valid JSON, wrong content, stale checksum
        path.write_text(json.dumps(record))
        return record

    def test_records_are_sealed_on_write(self, cache):
        key = "3d" + "7" * 62
        cache.put(key, _result())
        record = json.loads(cache.path_for(key).read_text())
        assert checksum_ok(record)
        assert record["sha256"] == record_checksum(record)

    def test_tampered_record_is_miss_and_removed(self, cache):
        key = "4e" + "8" * 62
        cache.put(key, _result())
        tampered = self._tamper(cache, key)
        assert not checksum_ok(tampered)
        assert cache.get(key) is None  # never serves the wrong cut
        assert not cache.path_for(key).exists()
        assert cache.stats.errors == 1

    def test_checksum_less_record_is_miss(self, cache):
        # pre-1.3.0 record shape: no embedded checksum
        key = "5f" + "9" * 62
        cache.put(key, _result())
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        del record["sha256"]
        path.write_text(json.dumps(record))
        assert cache.get(key) is None

    def test_verify_reports_and_removes(self, cache):
        keys = [f"{i:02d}" + "a" * 62 for i in range(3)]
        for key in keys:
            cache.put(key, _result())
        self._tamper(cache, keys[1])
        report = cache.verify()
        assert (report.scanned, report.ok, report.corrupt, report.removed) \
            == (3, 2, 1, 1)
        assert "1 corrupt" in report.summary()
        assert not cache.path_for(keys[1]).exists()
        again = cache.verify()
        assert (again.scanned, again.ok, again.corrupt) == (2, 2, 0)
        assert "all records verified" in again.summary()

    def test_verify_keep_leaves_corrupt_records(self, cache):
        key = "6a" + "b" * 62
        cache.put(key, _result())
        self._tamper(cache, key)
        report = cache.verify(remove=False)
        assert report.corrupt == 1 and report.removed == 0
        assert cache.path_for(key).exists()

    def test_verify_skips_run_journals(self, cache, tmp_path):
        cache.put("7b" + "c" * 62, _result())
        runs = cache.root / "runs"
        runs.mkdir(parents=True)
        (runs / "sweep.jsonl").write_text('{"type": "header"}\n')
        report = cache.verify()
        assert report.scanned == 1  # the journal was not scanned


class TestEngineCacheIntegration:
    """Hit/miss/invalidation through the engine (the acceptance cases)."""

    def _engine(self, tmp_path, version="1.0.0"):
        # workers=0: in-process execution, so counters are exact.
        return Engine(EngineConfig(
            workers=0, cache_dir=str(tmp_path / "cache"), version=version,
        ))

    def test_second_run_is_all_hits(self, tmp_path, tiny_graph):
        engine = self._engine(tmp_path)
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=s)
                 for s in range(3)]
        first = engine.run(units)
        assert engine.stats.executed == 3
        second = engine.run(units)
        assert engine.stats.executed == 3  # nothing new ran
        assert engine.stats.cache_hits == 3
        assert [u.result.cut for u in first] == [u.result.cut for u in second]
        assert all(u.cached and u.source == "cache" for u in second)

    def test_version_bump_invalidates(self, tmp_path, tiny_graph):
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)]
        old = self._engine(tmp_path, version="1.0.0")
        old.run(units)
        bumped = self._engine(tmp_path, version="1.0.1")
        bumped.run(units)
        assert bumped.stats.cache_hits == 0
        assert bumped.stats.executed == 1

    def test_config_change_invalidates(self, tmp_path, tiny_graph):
        engine = self._engine(tmp_path)
        engine.run([WorkUnit(tiny_graph, PropPartitioner(), seed=0)])
        engine.run([WorkUnit(
            tiny_graph, PropPartitioner(PropConfig(pinit=0.8)), seed=0,
        )])
        assert engine.stats.cache_hits == 0
        assert engine.stats.executed == 2

    def test_unserializable_stats_do_not_abort_the_run(
        self, tmp_path, tiny_graph
    ):
        class OpaqueStats:
            name = "OPAQUE"

            def partition(self, graph, balance=None, initial_sides=None,
                          seed=None):
                return BipartitionResult(
                    sides=[v % 2 for v in range(graph.num_nodes)],
                    cut=1.0, algorithm=self.name, seed=seed,
                    stats={"handle": object()},
                )

        engine = self._engine(tmp_path)
        results = engine.run([WorkUnit(tiny_graph, OpaqueStats(), seed=0)])
        assert len(results) == 1 and results[0].ok
        assert engine.cache.stats.errors == 1
        # nothing cached: the unit re-executes next time
        engine.run([WorkUnit(tiny_graph, OpaqueStats(), seed=0)])
        assert engine.stats.executed == 2

    def test_use_cache_false_disables(self, tmp_path, tiny_graph):
        engine = Engine(EngineConfig(workers=0, use_cache=False))
        assert engine.cache is None
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)]
        engine.run(units)
        engine.run(units)
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0
