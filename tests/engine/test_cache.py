"""Result-cache behaviour: hit, miss, invalidation, corruption."""

import json

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropConfig, PropPartitioner
from repro.engine import Engine, EngineConfig, ResultCache, WorkUnit
from repro.partition import BipartitionResult


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache", version="1.0.0")


def _result(cut=3.0):
    return BipartitionResult(
        sides=[0, 0, 0, 1, 1, 1], cut=cut, algorithm="FM-bucket", seed=7,
        passes=2, runtime_seconds=0.01, stats={"moves": 5.0},
        pass_cuts=[5.0, 3.0],
    )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, cache):
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, _result())
        got = cache.get(key)
        assert got is not None
        assert got.cut == 3.0
        assert got.sides == [0, 0, 0, 1, 1, 1]
        assert got.seed == 7
        assert got.passes == 2
        assert got.stats == {"moves": 5.0}
        assert got.pass_cuts == [5.0, 3.0]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_sharded_layout(self, cache):
        key = "cd" + "1" * 62
        cache.put(key, _result())
        assert cache.path_for(key).exists()
        assert cache.path_for(key).parent.name == "cd"
        assert key in cache

    def test_corrupt_record_is_miss_and_removed(self, cache):
        key = "ef" + "2" * 62
        cache.put(key, _result())
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()
        assert cache.stats.errors == 1

    def test_record_missing_fields_is_miss(self, cache):
        key = "0a" + "3" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"cut": 1.0}))  # no "sides"
        assert cache.get(key) is None

    def test_clear_removes_all_records(self, cache):
        for i in range(3):
            cache.put(f"{i:02d}" + "4" * 62, _result())
        assert cache.clear() == 3
        assert cache.get("00" + "4" * 62) is None


class TestEngineCacheIntegration:
    """Hit/miss/invalidation through the engine (the acceptance cases)."""

    def _engine(self, tmp_path, version="1.0.0"):
        # workers=0: in-process execution, so counters are exact.
        return Engine(EngineConfig(
            workers=0, cache_dir=str(tmp_path / "cache"), version=version,
        ))

    def test_second_run_is_all_hits(self, tmp_path, tiny_graph):
        engine = self._engine(tmp_path)
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=s)
                 for s in range(3)]
        first = engine.run(units)
        assert engine.stats.executed == 3
        second = engine.run(units)
        assert engine.stats.executed == 3  # nothing new ran
        assert engine.stats.cache_hits == 3
        assert [u.result.cut for u in first] == [u.result.cut for u in second]
        assert all(u.cached and u.source == "cache" for u in second)

    def test_version_bump_invalidates(self, tmp_path, tiny_graph):
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)]
        old = self._engine(tmp_path, version="1.0.0")
        old.run(units)
        bumped = self._engine(tmp_path, version="1.0.1")
        bumped.run(units)
        assert bumped.stats.cache_hits == 0
        assert bumped.stats.executed == 1

    def test_config_change_invalidates(self, tmp_path, tiny_graph):
        engine = self._engine(tmp_path)
        engine.run([WorkUnit(tiny_graph, PropPartitioner(), seed=0)])
        engine.run([WorkUnit(
            tiny_graph, PropPartitioner(PropConfig(pinit=0.8)), seed=0,
        )])
        assert engine.stats.cache_hits == 0
        assert engine.stats.executed == 2

    def test_use_cache_false_disables(self, tmp_path, tiny_graph):
        engine = Engine(EngineConfig(workers=0, use_cache=False))
        assert engine.cache is None
        units = [WorkUnit(tiny_graph, FMPartitioner("bucket"), seed=0)]
        engine.run(units)
        engine.run(units)
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 0
