"""AuditConfig validation and REPRO_AUDIT environment resolution."""

import pytest

from repro.audit import AUDIT_ENV, AUDIT_EVERY_ENV, AuditConfig, resolve_audit


class TestAuditConfig:
    def test_defaults_check_everything_every_move(self):
        cfg = AuditConfig()
        assert cfg.every == 1
        assert cfg.check_structure and cfg.check_gains
        assert cfg.check_probabilities and cfg.check_balance
        assert cfg.check_rollback
        assert cfg.max_gain_nodes == 0

    @pytest.mark.parametrize("bad", [0, -1])
    def test_every_must_be_positive(self, bad):
        with pytest.raises(ValueError):
            AuditConfig(every=bad)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            AuditConfig(tolerance=-1e-9)

    def test_with_overrides_revalidates(self):
        cfg = AuditConfig().with_overrides(every=7)
        assert cfg.every == 7
        with pytest.raises(ValueError):
            cfg.with_overrides(every=0)


class TestFromEnv:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off"])
    def test_falsy_means_off(self, raw):
        assert AuditConfig.from_env({AUDIT_ENV: raw}) is None

    def test_unset_means_off(self):
        assert AuditConfig.from_env({}) is None

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "TRUE", " On "])
    def test_truthy_means_every_move(self, raw):
        cfg = AuditConfig.from_env({AUDIT_ENV: raw})
        assert cfg is not None and cfg.every == 1

    def test_integer_sets_stride(self):
        cfg = AuditConfig.from_env({AUDIT_ENV: "25"})
        assert cfg is not None and cfg.every == 25

    def test_stride_override(self):
        cfg = AuditConfig.from_env({AUDIT_ENV: "1", AUDIT_EVERY_ENV: "10"})
        assert cfg is not None and cfg.every == 10

    def test_garbage_raises_not_silently_disables(self):
        with pytest.raises(ValueError):
            AuditConfig.from_env({AUDIT_ENV: "bananas"})
        with pytest.raises(ValueError):
            AuditConfig.from_env({AUDIT_ENV: "1", AUDIT_EVERY_ENV: "x"})


class TestResolveAudit:
    def test_explicit_config_wins_over_env(self):
        explicit = AuditConfig(every=3)
        resolved = resolve_audit(explicit, {AUDIT_ENV: "7"})
        assert resolved is explicit

    def test_none_falls_back_to_env(self):
        resolved = resolve_audit(None, {AUDIT_ENV: "4"})
        assert resolved is not None and resolved.every == 4

    def test_none_and_no_env_stays_off(self):
        assert resolve_audit(None, {}) is None

    def test_env_integration_via_os_environ(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "9")
        resolved = resolve_audit(None)
        assert resolved is not None and resolved.every == 9
        monkeypatch.delenv(AUDIT_ENV)
        assert resolve_audit(None) is None
