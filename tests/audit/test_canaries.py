"""Mutation canaries: deliberately broken engines must be caught.

A zero-violation audit is only evidence if the auditor can actually
detect breakage.  Each test here monkeypatches one incremental shortcut
to be subtly wrong — the kind of bug the audit subsystem exists for —
and asserts the auditor raises :class:`InvariantViolation` naming the
right invariant.  If a refactor ever silences one of these canaries, the
auditor lost its teeth for that whole invariant family.
"""

import pytest

from repro import AuditConfig, FMPartitioner, LAPartitioner, PropPartitioner
from repro.audit import InvariantViolation
from repro.core.gains import ProbabilisticGainEngine
from repro.datastructures import PassJournal
from repro.hypergraph import make_benchmark
from repro.partition import Partition

pytestmark = pytest.mark.audit


@pytest.fixture
def graph():
    return make_benchmark("t6", scale=0.05)


def _expect_violation(partitioner, graph, *invariants, audit=None):
    with pytest.raises(InvariantViolation) as err:
        partitioner.partition(
            graph, seed=9, audit=audit or AuditConfig()
        )
    assert err.value.invariant in invariants, err.value
    # The violation must carry enough context to replay the run.
    assert err.value.seed == 9
    assert "repro seed 9" in str(err.value)
    return err.value


def test_fm_broken_delta_rule_is_caught(monkeypatch, graph):
    """Dropping positive FM gain deltas leaves stale container gains."""
    import repro.baselines.fm as fm

    original = fm._apply_delta

    def lossy(containers, partition, node, delta, counters=None):
        if delta > 0:
            return  # "forgot" the critical-net +cost rule
        original(containers, partition, node, delta, counters)

    monkeypatch.setattr(fm, "_apply_delta", lossy)
    _expect_violation(FMPartitioner("tree"), graph, "fm-gain")


def test_la_wrong_vector_is_caught(monkeypatch, graph):
    """An off-by-cost lookahead level must fail the vector check."""
    import repro.baselines.la as la

    original = la.gain_vector
    calls = {"n": 0}

    def skewed(partition, node, k):
        vec = original(partition, node, k)
        calls["n"] += 1
        if calls["n"] > graph.num_nodes:  # corrupt only in-pass refreshes
            return (vec[0] + 1.0,) + vec[1:]
        return vec

    monkeypatch.setattr(la, "gain_vector", skewed)
    _expect_violation(LAPartitioner(2), graph, "la-gain-vector")


def test_prop_missing_lock_discipline_is_caught(monkeypatch, graph):
    """on_lock must zero the moved node's probability; skipping it is an
    audited probability violation (and would poison every later gain)."""
    monkeypatch.setattr(
        ProbabilisticGainEngine, "on_lock", lambda self, node: None
    )
    violation = _expect_violation(
        PropPartitioner(), graph, "lock-probability"
    )
    assert violation.node is not None


def test_prop_wrong_incremental_gain_is_caught(monkeypatch, graph):
    """A biased incremental gain must disagree with the Eqn. 2–6 oracle."""
    original = ProbabilisticGainEngine.node_gain

    def biased(self, node):
        return original(self, node) + 0.125

    monkeypatch.setattr(ProbabilisticGainEngine, "node_gain", biased)
    _expect_violation(PropPartitioner(), graph, "prop-gain")


def test_corrupted_cut_bookkeeping_is_caught(monkeypatch, graph):
    """Drifting the tracked cut must fail the structure cross-check."""
    original = Partition.move

    def leaky(self, node):
        gain = original(self, node)
        self._cut_cost -= 0.5  # double-counts half a net somewhere
        return gain

    monkeypatch.setattr(Partition, "move", leaky)
    _expect_violation(
        FMPartitioner("tree"), graph, "cut-cost", "journal-cut"
    )


def test_broken_best_prefix_is_caught(monkeypatch, graph):
    """Rolling back to the wrong prefix must fail the rollback check.

    The auditor recomputes the max-prefix decision from independently
    replayed gains, so it catches a broken ``best_prefix`` even though
    the engine trusts that same method for its rollback.
    """
    original = PassJournal.best_prefix

    def off_by_one(self):
        p, gmax = original(self)
        return (p - 1 if p > 0 else len(self.moves) and 1), gmax

    monkeypatch.setattr(PassJournal, "best_prefix", off_by_one)
    _expect_violation(FMPartitioner("tree"), graph, "rollback-prefix")


def test_unlocked_rollback_node_is_caught(monkeypatch, graph):
    """Replaying one move too few leaves state diverged from the replay."""
    original = PassJournal.rolled_back_moves

    def short(self):
        rolled = original(self)
        return rolled[:-1] if len(rolled) > 1 else rolled

    monkeypatch.setattr(PassJournal, "rolled_back_moves", short)
    _expect_violation(
        FMPartitioner("tree"), graph, "rollback-state", "rollback-cut"
    )


def test_canaries_do_not_fire_unbroken(graph):
    """Control: the same graph/seed passes clean without the mutations."""
    for partitioner in (
        FMPartitioner("tree"), LAPartitioner(2), PropPartitioner()
    ):
        result = partitioner.partition(graph, seed=9, audit=AuditConfig())
        assert result.stats["audited"] == 1.0
