"""Audited end-to-end runs: zero violations, bit-identical results.

The core acceptance tests of the audit subsystem: every pass engine
(PROP under both update strategies, FM with both containers, LA-2/LA-3)
completes fully-audited runs on generator circuits without a single
:class:`InvariantViolation`, and the audited run's moves are provably the
same as the unaudited run's (identical sides and cut).
"""

import os

import pytest

from repro import AuditConfig, FMPartitioner, LAPartitioner, PropPartitioner
from repro.audit import AUDIT_ENV
from repro.core import PropConfig
from repro.hypergraph import BENCHMARK_NAMES, make_benchmark
from repro.multirun import run_many

pytestmark = pytest.mark.audit

#: Small Table-1 circuits: fast enough to audit every move, every node.
SMALL_CIRCUITS = ("t6", "struct", "balu")

ENGINES = [
    ("PROP", PropPartitioner()),
    ("PROP-cached", PropPartitioner(PropConfig(update_strategy="cached"))),
    ("FM-bucket", FMPartitioner("bucket")),
    ("FM-tree", FMPartitioner("tree")),
    ("LA-2", LAPartitioner(2)),
    ("LA-3", LAPartitioner(3)),
]


@pytest.mark.parametrize("circuit", SMALL_CIRCUITS)
@pytest.mark.parametrize("label,partitioner", ENGINES, ids=[e[0] for e in ENGINES])
def test_fully_audited_run_is_clean_and_bit_identical(
    circuit, label, partitioner
):
    graph = make_benchmark(circuit, scale=0.04)
    plain = partitioner.partition(graph, seed=11)
    audited = partitioner.partition(graph, seed=11, audit=AuditConfig())
    assert audited.sides == plain.sides
    assert audited.cut == plain.cut
    assert audited.pass_cuts == plain.pass_cuts
    assert audited.stats["audited"] == 1.0
    assert audited.stats["audit_moves"] >= 1
    assert "audited" not in plain.stats


def test_sampling_stride_audits_every_nth_move():
    graph = make_benchmark("t6", scale=0.05)
    full = PropPartitioner().partition(graph, seed=2, audit=AuditConfig())
    sampled = PropPartitioner().partition(
        graph, seed=2, audit=AuditConfig(every=5)
    )
    assert sampled.cut == full.cut
    assert sampled.stats["audit_moves"] < full.stats["audit_moves"]
    assert sampled.stats["audit_moves"] == pytest.approx(
        full.stats["audit_moves"] / 5, abs=len(full.pass_cuts)
    )


def test_gain_sweep_cap_keeps_run_clean():
    graph = make_benchmark("struct", scale=0.1)
    capped = AuditConfig(max_gain_nodes=10)
    result = PropPartitioner().partition(graph, seed=4, audit=capped)
    assert result.stats["audited"] == 1.0


def test_env_variable_audits_without_code_changes(monkeypatch):
    graph = make_benchmark("t6", scale=0.04)
    monkeypatch.setenv(AUDIT_ENV, "1")
    result = FMPartitioner("tree").partition(graph, seed=5)
    assert result.stats["audited"] == 1.0
    monkeypatch.delenv(AUDIT_ENV)
    result = FMPartitioner("tree").partition(graph, seed=5)
    assert "audited" not in result.stats


def test_run_many_audits_each_seed():
    graph = make_benchmark("t6", scale=0.04)
    outcome = run_many(
        LAPartitioner(2), graph, runs=3, audit=AuditConfig(every=2)
    )
    assert outcome.best is not None
    assert outcome.best.stats["audited"] == 1.0
    plain = run_many(LAPartitioner(2), graph, runs=3)
    assert outcome.cuts == plain.cuts


def test_audited_engine_units_record_audit(tmp_path):
    from repro.engine import Engine, EngineConfig

    graph = make_benchmark("t6", scale=0.04)
    engine = Engine(EngineConfig(workers=0, cache_dir=str(tmp_path)))
    audited = run_many(
        PropPartitioner(), graph, runs=2, engine=engine,
        audit=AuditConfig(every=3),
    )
    assert audited.best is not None
    assert audited.best.stats["audited"] == 1.0


def test_unaudited_cache_record_not_served_for_audited_request(tmp_path):
    from repro.engine import Engine, EngineConfig

    graph = make_benchmark("t6", scale=0.04)
    engine = Engine(EngineConfig(workers=0, cache_dir=str(tmp_path)))
    plain = run_many(FMPartitioner("tree"), graph, runs=2, engine=engine)
    assert engine.stats.cache_hits == 0
    audited = run_many(
        FMPartitioner("tree"), graph, runs=2, engine=engine,
        audit=AuditConfig(),
    )
    # The unaudited records were not good enough: both units re-ran...
    assert engine.stats.cache_hits == 0
    assert audited.cuts == plain.cuts
    # ...and the audited records now serve both kinds of request.
    run_many(FMPartitioner("tree"), graph, runs=2, engine=engine,
             audit=AuditConfig())
    run_many(FMPartitioner("tree"), graph, runs=2, engine=engine)
    assert engine.stats.cache_hits == 4


def test_partitioner_without_audit_support_warns_and_runs():
    from repro.baselines import Eig1Partitioner

    graph = make_benchmark("t6", scale=0.1)
    with pytest.warns(UserWarning, match="unaudited"):
        outcome = run_many(
            Eig1Partitioner(), graph, runs=1, audit=AuditConfig()
        )
    assert outcome.best is not None
    assert "audited" not in outcome.best.stats


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_AUDIT_SWEEP"),
    reason="minutes-scale full-suite sweep; set REPRO_AUDIT_SWEEP=1 "
    "(the CI audit lane does)",
)
def test_benchmark_suite_audited_sweep():
    """Acceptance: every Table-1 circuit, PROP + FM + LA, zero violations.

    The larger circuits use a sampling stride and a gain-sweep cap to
    keep the sweep minutes-scale; every move still passes the structure
    and balance checks, and every pass the rollback check.
    """
    sweep_engines = [
        PropPartitioner(),
        FMPartitioner("bucket"),
        FMPartitioner("tree"),
        LAPartitioner(2),
    ]
    for name in BENCHMARK_NAMES:
        graph = make_benchmark(name, scale=0.04)
        audit = AuditConfig(
            every=1 if graph.num_nodes <= 150 else 4,
            max_gain_nodes=0 if graph.num_nodes <= 150 else 50,
        )
        for partitioner in sweep_engines:
            result = partitioner.partition(graph, seed=1, audit=audit)
            assert result.stats["audited"] == 1.0, (name, partitioner.name)
