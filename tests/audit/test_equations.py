"""Pin the probabilistic-gain implementation to the paper's equations.

``_paper_gain`` below is a deliberately naive, self-contained
transcription of Dutt & Deng's Eqns. (2)-(6) — written from the paper
text, not from :mod:`repro.core.gains` or :mod:`repro.audit.reference` —
evaluated on tiny hand-built nets where the expected value is also
derivable by hand.  The engine, the audit oracle and this transcription
must all agree; the hand-built cases additionally pin the *numbers*, so
all three cannot drift together.
"""

import random

import pytest

from repro.audit import reference
from repro.core.gains import ProbabilisticGainEngine
from repro.core.probability import LinearProbabilityMap, SigmoidProbabilityMap
from repro.hypergraph import Hypergraph
from repro.partition import Partition
from repro.testing import random_instance

pytestmark = pytest.mark.audit


def _paper_gain(graph, sides, locked, p, u):
    """Eqns. (2)-(6), straight off the page (u must be free).

    For each net of ``u``: A = its other pins on u's side, B = its pins
    on the other side; locked pins contribute probability 0.  A cut net
    (B nonempty) contributes ``c * (prod_A - prod_B)`` — Eqn. (3), with
    (5)/(6) as the locked cases; an internal net contributes
    ``c * (prod_A - 1)`` — Eqn. (4).  Total gain is the sum, Eqn. (2).
    """
    total = 0.0
    for net_id in graph.node_nets(u):
        pins = graph.net(net_id)
        prob = lambda v: 0.0 if locked[v] else p[v]
        prod_a = prod_b = 1.0
        cut = False
        for v in pins:
            if v == u:
                continue
            if sides[v] == sides[u]:
                prod_a *= prob(v)
            else:
                cut = True
                prod_b *= prob(v)
        c = graph.net_cost(net_id)
        total += c * (prod_a - prod_b) if cut else c * (prod_a - 1.0)
    return total


def _engine(graph, sides, p, locked=()):
    part = Partition(graph, sides)
    for v in locked:
        part.lock(v)
    return ProbabilisticGainEngine(part, p)


class TestHandBuiltNets:
    """Tiny nets with hand-derived expected gains."""

    def test_two_pin_cut_net(self):
        # u=0 on side 0, its only net cut by node 1: A = {}, B = {1}.
        # Eqn (3): g = c * (1 - p(1)).
        graph = Hypergraph([(0, 1)], net_costs=[2.0])
        engine = _engine(graph, [0, 1], [0.5, 0.7])
        assert engine.node_gain(0) == pytest.approx(2.0 * (1.0 - 0.7))
        assert engine.node_gain(1) == pytest.approx(2.0 * (1.0 - 0.5))

    def test_two_pin_internal_net(self):
        # Both pins on side 0: Eqn (4): g = c * (p(other) - 1) <= 0.
        graph = Hypergraph([(0, 1)])
        engine = _engine(graph, [0, 0], [0.5, 0.7])
        assert engine.node_gain(0) == pytest.approx(0.7 - 1.0)
        assert engine.node_gain(1) == pytest.approx(0.5 - 1.0)

    def test_three_pin_cut_net(self):
        # u=0 with companion 1 (p=0.6) and opponent 2 (p=0.9):
        # g = c * (p(1) - p(2)).
        graph = Hypergraph([(0, 1, 2)], net_costs=[3.0])
        engine = _engine(graph, [0, 0, 1], [0.5, 0.6, 0.9])
        assert engine.node_gain(0) == pytest.approx(3.0 * (0.6 - 0.9))

    def test_locked_opponent_is_a_sure_thing(self):
        # Node 2 locked on side 1: the other side can never clear, so the
        # foreclosed-option term vanishes — Eqn (5): g = c * prod_A.
        graph = Hypergraph([(0, 1, 2)])
        engine = _engine(graph, [0, 0, 1], [0.5, 0.6, 0.9], locked=[2])
        assert engine.p[2] == 0.0  # lock forces p = 0
        assert engine.node_gain(0) == pytest.approx(0.6)

    def test_locked_companion_zeroes_the_upside(self):
        # Node 1 locked on u's side: the net can never leave u's side, so
        # only the negative term survives — Eqn (6): g = -c * prod_B.
        graph = Hypergraph([(0, 1, 2)])
        engine = _engine(graph, [0, 0, 1], [0.5, 0.6, 0.9], locked=[1])
        assert engine.node_gain(0) == pytest.approx(-0.9)

    def test_locked_companion_internal_net(self):
        # Internal net with a locked companion: moving u cuts it for sure.
        graph = Hypergraph([(0, 1)], net_costs=[4.0])
        engine = _engine(graph, [0, 0], [0.5, 0.6], locked=[1])
        assert engine.node_gain(0) == pytest.approx(-4.0)

    def test_multi_net_gain_is_the_sum(self):
        # Eqn (2): one cut net (+1*(1-0.8)) and one internal (+2*(0.25-1)).
        graph = Hypergraph([(0, 1), (0, 2)], net_costs=[1.0, 2.0])
        engine = _engine(graph, [0, 1, 0], [0.5, 0.8, 0.25])
        expected = 1.0 * (1.0 - 0.8) + 2.0 * (0.25 - 1.0)
        assert engine.node_gain(0) == pytest.approx(expected)

    def test_zero_probabilities_reduce_to_fm_gain(self):
        # With p = 0 for every other node, Eqns (3)/(4) collapse to
        # Eqn (1): +c where u is its side's only pin, -c per internal
        # net, 0 otherwise — PROP's advertised FM specialization.
        graph = Hypergraph([(0, 1), (0, 2), (0, 3), (0, 1, 3)])
        sides = [0, 1, 1, 0]
        engine = _engine(graph, sides, [1.0, 0.0, 0.0, 0.0])
        fm = reference.immediate_gain(graph, sides, 0)
        assert fm == 2.0 - 1.0  # two sole-pin cut nets... minus (0,3)
        assert engine.node_gain(0) == pytest.approx(fm)


class TestThreeWayAgreement:
    """engine == audit oracle == in-test transcription, everywhere."""

    @pytest.mark.parametrize("seed", range(30, 40))
    def test_random_instances_random_probabilities(self, seed):
        graph = random_instance(seed, max_nodes=10)
        rng = random.Random(seed)
        sides = [rng.randint(0, 1) for _ in range(graph.num_nodes)]
        p = [rng.uniform(0.05, 0.95) for _ in range(graph.num_nodes)]
        lock = [v for v in range(graph.num_nodes) if rng.random() < 0.3]
        engine = _engine(graph, sides, p, locked=lock)
        locked = [v in set(lock) for v in range(graph.num_nodes)]
        for u in range(graph.num_nodes):
            if locked[u]:
                continue
            expected = _paper_gain(graph, sides, locked, p, u)
            assert engine.node_gain(u) == pytest.approx(expected), u
            assert reference.prop_gain(
                graph, sides, locked, engine.p, u
            ) == pytest.approx(expected), u

    @pytest.mark.parametrize("seed", range(30, 35))
    def test_bulk_paths_match_node_gain(self, seed):
        """all_gains / per-net contributions agree with the per-node path."""
        graph = random_instance(seed, max_nodes=10)
        rng = random.Random(seed ^ 0xBEEF)
        sides = [rng.randint(0, 1) for _ in range(graph.num_nodes)]
        p = [rng.uniform(0.05, 0.95) for _ in range(graph.num_nodes)]
        engine = _engine(graph, sides, p)
        gains = engine.all_gains()
        contribs = engine.all_contributions()
        for u in range(graph.num_nodes):
            assert gains[u] == pytest.approx(engine.node_gain(u)), u
            assert sum(contribs[u].values()) == pytest.approx(gains[u]), u


class TestProbabilityMapValues:
    """Pin the Sec. 4 linear map (and the sigmoid's clamp semantics)."""

    def test_paper_parameter_values(self):
        # pmin=0.4, pmax=0.95, glo=-1, gup=1 (PropConfig defaults).
        f = LinearProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert f(-1.0) == 0.4 and f(1.0) == 0.95  # exact at thresholds
        assert f(-5.0) == 0.4 and f(3.0) == 0.95  # clamped beyond them
        assert f(0.0) == pytest.approx(0.675)     # midpoint
        assert f(0.5) == pytest.approx(0.8125)
        assert f(-0.5) == pytest.approx(0.5375)

    def test_figure1_parameter_values(self):
        # The Figure-1 reproduction's standalone use: pmin=0, pmax=1.
        f = LinearProbabilityMap(0.0, 1.0, -1.0, 1.0)
        assert f(0.0) == pytest.approx(0.5)
        assert f(0.6) == pytest.approx(0.8)

    @pytest.mark.parametrize("cls", [LinearProbabilityMap, SigmoidProbabilityMap])
    def test_monotone_and_clamped(self, cls):
        f = cls(0.4, 0.95, -1.0, 1.0)
        xs = [i / 10.0 for i in range(-20, 21)]
        ys = [f(x) for x in xs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert all(0.4 <= y <= 0.95 for y in ys)
        assert f(1.0) == 0.95 and f(-1.0) == 0.4

    def test_sigmoid_centred_between_thresholds(self):
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert f(0.0) == pytest.approx((0.4 + 0.95) / 2.0)

    @pytest.mark.parametrize("cls", [LinearProbabilityMap, SigmoidProbabilityMap])
    def test_rejects_bad_parameters(self, cls):
        with pytest.raises(ValueError):
            cls(0.9, 0.4, -1.0, 1.0)  # pmin > pmax
        with pytest.raises(ValueError):
            cls(0.4, 0.95, 1.0, 1.0)  # glo == gup
