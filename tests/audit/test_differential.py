"""Differential oracle tests: incremental engines vs. from-scratch runs.

The reference runs in :mod:`repro.audit.differential` recompute every
gain before every move and replay rollbacks over plain lists.  An
incremental engine that shares the tie-breaking rules must match them
move for move; the seeded grids here make any divergence reproducible
from ``(seed, max_nodes)`` alone.
"""

import pytest

from repro.audit.differential import (
    Mismatch,
    Trajectory,
    compare_trajectories,
    differential_fm,
    differential_la,
    differential_prop_strategies,
    run_differential_grid,
)
from repro.hypergraph import make_benchmark
from repro.partition import BalanceConstraint, random_balanced_sides
from repro.testing import GRID_SEEDS, weighted_instance

pytestmark = pytest.mark.audit


def _assert_all_ok(reports):
    bad = [r for r in reports if not r.ok]
    assert not bad, "\n".join(
        f"{r.label} seed={r.seed} n={r.num_nodes}: {r.mismatch}" for r in bad
    )


class TestSeededGrids:
    def test_unweighted_grid_every_check(self):
        """FM, LA-2, LA-3 and both PROP strategies over 20 seeded circuits."""
        reports = run_differential_grid(GRID_SEEDS)
        assert len(reports) == 4 * len(GRID_SEEDS)
        _assert_all_ok(reports)

    def test_grid_under_relaxed_balance(self):
        reports = run_differential_grid(
            GRID_SEEDS[:8], balance_spec="40-60", checks=("fm", "la2")
        )
        _assert_all_ok(reports)

    def test_weighted_instances(self):
        """Node weights + net costs exercise the weight-aware balance path."""
        reports = []
        for seed in GRID_SEEDS[:8]:
            graph = weighted_instance(seed, max_nodes=12)
            sides = random_balanced_sides(graph, seed)
            balance = BalanceConstraint.from_fractions(graph, 0.35, 0.65)
            reports.append(differential_fm(graph, sides, balance, seed=seed))
            reports.append(
                differential_la(graph, sides, balance, k=2, seed=seed)
            )
        _assert_all_ok(reports)

    def test_benchmark_circuit_fm_and_la(self):
        """One real Table-1 circuit, not just generator instances."""
        graph = make_benchmark("t6", scale=0.04)
        sides = random_balanced_sides(graph, 3)
        balance = BalanceConstraint.fifty_fifty(graph)
        _assert_all_ok([
            differential_fm(graph, sides, balance, seed=3),
            differential_la(graph, sides, balance, k=2, seed=3),
            differential_prop_strategies(graph, sides, balance, seed=3),
        ])


class TestCompareTrajectories:
    """The comparator itself must flag each divergence kind."""

    def _traj(self, **overrides):
        base = dict(
            algorithm="x",
            moves=[(0, 4, 1.0), (0, 2, -1.0)],
            kept=[1],
            pass_cuts=[3.0],
            final_sides=[0, 1, 0, 1, 1],
            final_cut=3.0,
        )
        base.update(overrides)
        return Trajectory(**base)

    def test_identical_is_clean(self):
        assert compare_trajectories(self._traj(), self._traj()) is None

    def test_gain_within_tolerance_is_clean(self):
        b = self._traj(moves=[(0, 4, 1.0 + 1e-9), (0, 2, -1.0)])
        assert compare_trajectories(self._traj(), b) is None

    def test_different_node_is_a_move_mismatch(self):
        b = self._traj(moves=[(0, 3, 1.0), (0, 2, -1.0)])
        m = compare_trajectories(self._traj(), b)
        assert isinstance(m, Mismatch) and m.kind == "move" and m.index == 0

    def test_different_gain_is_a_move_mismatch(self):
        b = self._traj(moves=[(0, 4, 1.0), (0, 2, -1.5)])
        m = compare_trajectories(self._traj(), b)
        assert m is not None and m.kind == "move" and m.index == 1

    def test_missing_move_is_a_length_mismatch(self):
        b = self._traj(moves=[(0, 4, 1.0)])
        m = compare_trajectories(self._traj(), b)
        assert m is not None and m.kind == "length"

    def test_wrong_prefix_is_a_kept_mismatch(self):
        m = compare_trajectories(self._traj(), self._traj(kept=[2]))
        assert m is not None and m.kind == "kept"

    def test_divergent_sides_point_at_first_node(self):
        b = self._traj(final_sides=[0, 1, 1, 1, 1])
        m = compare_trajectories(self._traj(), b)
        assert m is not None and m.kind == "sides" and m.index == 2

    def test_cut_drift_is_flagged_last(self):
        m = compare_trajectories(self._traj(), self._traj(final_cut=2.0))
        assert m is not None and m.kind == "cut"
