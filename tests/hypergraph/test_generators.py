"""Unit tests for the synthetic circuit generators."""

import pytest

from repro.hypergraph import (
    BENCHMARK_NAMES,
    TABLE1_CHARACTERISTICS,
    benchmark_suite,
    compute_stats,
    hierarchical_circuit,
    make_benchmark,
    many_small,
    planted_bisection,
    random_hypergraph,
    small_instance,
)
from repro.partition import cut_cost


class TestRandomHypergraph:
    def test_counts(self):
        hg = random_hypergraph(50, 80, seed=1)
        assert hg.num_nodes == 50
        assert hg.num_nets == 80

    def test_deterministic(self):
        assert random_hypergraph(30, 40, seed=7) == random_hypergraph(
            30, 40, seed=7
        )

    def test_different_seeds_differ(self):
        assert random_hypergraph(30, 40, seed=1) != random_hypergraph(
            30, 40, seed=2
        )

    def test_min_nodes(self):
        with pytest.raises(ValueError):
            random_hypergraph(1, 5)

    def test_avg_net_size_validated(self):
        with pytest.raises(ValueError):
            random_hypergraph(10, 5, avg_net_size=1.5)

    def test_mean_net_size_near_target(self):
        hg = random_hypergraph(200, 600, avg_net_size=3.5, seed=3)
        s = compute_stats(hg)
        assert 2.5 < s.q < 4.5


class TestPlantedBisection:
    def test_planted_cut_is_exact(self):
        graph, sides, crossing = planted_bisection(30, 80, 4, seed=9)
        assert cut_cost(graph, sides) == crossing == 4

    def test_balanced(self):
        graph, sides, _ = planted_bisection(25, 60, 3, seed=2)
        assert sum(sides) == 25

    def test_shuffle_disabled_keeps_identity_layout(self):
        graph, sides, _ = planted_bisection(10, 20, 2, seed=0, shuffle=False)
        assert sides == [0] * 10 + [1] * 10

    def test_too_small_side_rejected(self):
        with pytest.raises(ValueError):
            planted_bisection(2, 5, 1, net_size=3)

    def test_crossing_nets_are_two_pin(self):
        graph, sides, crossing = planted_bisection(20, 30, 5, seed=4)
        crossing_found = 0
        for pins in graph.nets:
            pin_sides = {sides[v] for v in pins}
            if len(pin_sides) == 2:
                crossing_found += 1
                assert len(pins) == 2
        assert crossing_found == crossing


class TestHierarchicalCircuit:
    def test_exact_counts(self):
        hg = hierarchical_circuit(500, 520, 1900, seed=1)
        assert hg.num_nodes == 500
        assert hg.num_nets == 520
        assert hg.num_pins == 1900

    def test_deterministic(self):
        assert hierarchical_circuit(100, 110, 400, seed=5) == (
            hierarchical_circuit(100, 110, 400, seed=5)
        )

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            hierarchical_circuit(100, 110, 400, locality=1.5)

    def test_min_nodes_validated(self):
        with pytest.raises(ValueError):
            hierarchical_circuit(2, 5, 12)

    def test_pins_too_small_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_circuit(100, 110, 50)

    def test_net_sizes_dominated_by_small_nets(self):
        hg = hierarchical_circuit(800, 830, 3000, seed=2)
        hist = hg.degree_histogram()
        small = sum(c for size, c in hist.items() if size <= 4)
        assert small / hg.num_nets > 0.8

    def test_clustered_structure_beats_random(self):
        """The planted hierarchy must make min-cuts far below random cuts,
        otherwise the generator would not be circuit-like at all."""
        from repro.baselines import FMPartitioner
        from repro.partition import random_balanced_sides

        hg = hierarchical_circuit(240, 250, 900, seed=8)
        random_cut = cut_cost(hg, random_balanced_sides(hg, 0))
        best = min(
            FMPartitioner("bucket").partition(hg, seed=s).cut for s in range(5)
        )
        assert best < random_cut * 0.55


class TestBenchmarkSuite:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_table1_exact_counts(self, name):
        """Every Table-1 circuit matches the paper to the pin."""
        stats = compute_stats(make_benchmark(name))
        n, e, m = TABLE1_CHARACTERISTICS[name]
        assert stats.num_nodes == n
        assert stats.num_nets == e
        assert stats.num_pins == m

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            make_benchmark("nonexistent")

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            make_benchmark("balu", scale=0.0)
        with pytest.raises(ValueError):
            make_benchmark("balu", scale=1.5)

    def test_scaled_instance_proportional(self):
        full = TABLE1_CHARACTERISTICS["p2"]
        scaled = compute_stats(make_benchmark("p2", scale=0.25))
        assert scaled.num_nodes == pytest.approx(full[0] * 0.25, rel=0.02)
        assert scaled.num_nets == pytest.approx(full[1] * 0.25, rel=0.02)

    def test_deterministic_across_calls(self):
        assert make_benchmark("t5", scale=0.2) == make_benchmark("t5", scale=0.2)

    def test_suite_subset(self):
        suite = benchmark_suite(scale=0.1, names=["balu", "t6"])
        assert set(suite) == {"balu", "t6"}

    def test_full_suite_has_16_circuits(self):
        assert len(BENCHMARK_NAMES) == 16


class TestManySmall:
    def test_batch_counts_and_sizes(self):
        batch = many_small(10, size_range=(8, 20), seed=3)
        assert len(batch) == 10
        for hg in batch:
            assert 8 <= hg.num_nodes
            assert hg.num_nets >= 6

    def test_deterministic(self):
        assert many_small(5, (8, 16), seed=11) == many_small(5, (8, 16), seed=11)

    def test_seeds_vary_the_batch(self):
        assert many_small(5, (8, 16), seed=1) != many_small(5, (8, 16), seed=2)

    def test_prefix_stable(self):
        """Instance i never depends on how many circuits were requested."""
        long = many_small(12, (8, 16), seed=4)
        short = many_small(5, (8, 16), seed=4)
        assert long[:5] == short

    def test_index_addressable(self):
        """small_instance(r, s, i) == many_small(...)[i] — a consumer can
        materialize exactly the circuit it needs."""
        batch = many_small(6, (8, 16), seed=9)
        for i, hg in enumerate(batch):
            assert small_instance((8, 16), 9, i) == hg

    def test_adjacent_indices_decorrelated(self):
        batch = many_small(8, (8, 40), seed=0)
        assert len({hg.num_nodes for hg in batch}) > 1

    def test_instances_are_partitionable(self):
        from repro.baselines import FMPartitioner

        hg = small_instance((10, 14), 2, 0)
        result = FMPartitioner("bucket").partition(hg, seed=0)
        assert cut_cost(hg, result.sides) == result.cut

    def test_empty_batch(self):
        assert many_small(0, (8, 16), seed=0) == []

    @pytest.mark.parametrize(
        "n, size_range",
        [(-1, (8, 16)), (3, (4, 16)), (3, (16, 8))],
    )
    def test_validation(self, n, size_range):
        with pytest.raises(ValueError):
            many_small(n, size_range, seed=0)
