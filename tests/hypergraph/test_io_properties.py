"""Property tests: netlist I/O round-trips for arbitrary hypergraphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.hypergraph import io_ as nio


@st.composite
def hypergraphs(draw):
    """Small random hypergraphs with optional weights and costs."""
    num_nodes = draw(st.integers(2, 12))
    num_nets = draw(st.integers(1, 10))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(1, min(4, num_nodes)))
        pins = draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    weighted = draw(st.booleans())
    costs = None
    weights = None
    if weighted:
        costs = draw(
            st.lists(
                st.integers(1, 9).map(float),
                min_size=num_nets,
                max_size=num_nets,
            )
        )
        weights = draw(
            st.lists(
                st.integers(1, 5).map(float),
                min_size=num_nodes,
                max_size=num_nodes,
            )
        )
    return Hypergraph(
        nets, num_nodes=num_nodes, net_costs=costs, node_weights=weights
    )


class TestRoundTripProperties:
    @given(graph=hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_hgr(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.hgr"
        nio.write_hgr(graph, path)
        assert nio.read_hgr(path) == graph

    @given(graph=hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_netlist(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.net"
        nio.write_netlist(graph, path)
        assert nio.read_netlist(path) == graph

    @given(graph=hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_json(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "g.json"
        nio.write_json(graph, path)
        assert nio.read_json(path) == graph

    @given(graph=hypergraphs())
    @settings(max_examples=20, deadline=None)
    def test_cross_format_consistency(self, graph, tmp_path_factory):
        """All three formats reconstruct the identical object."""
        tmp = tmp_path_factory.mktemp("io")
        results = []
        for ext in (".hgr", ".net", ".json"):
            path = tmp / f"g{ext}"
            nio.write(graph, path)
            results.append(nio.read(path))
        assert results[0] == results[1] == results[2] == graph
