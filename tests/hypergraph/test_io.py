"""Unit tests for netlist readers/writers (hgr, SIGDA-style .net, JSON)."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    HypergraphBuilder,
    HypergraphError,
    hierarchical_circuit,
)
from repro.hypergraph import io_ as nio


def _weighted_graph() -> Hypergraph:
    return Hypergraph(
        [[0, 1], [1, 2, 3], [0, 3]],
        num_nodes=4,
        net_costs=[1.0, 2.5, 1.0],
        node_weights=[1.0, 2.0, 1.0, 1.0],
    )


def _named_graph() -> Hypergraph:
    b = HypergraphBuilder()
    b.add_node("alu", weight=2.0)
    b.add_node("mul")
    b.add_node("reg")
    b.add_net_by_names(["alu", "mul"], name="clk", cost=3.0)
    b.add_net_by_names(["mul", "reg"], name="d0")
    return b.build()


class TestHgr:
    def test_roundtrip_plain(self, tmp_path, tiny_graph):
        path = tmp_path / "g.hgr"
        nio.write_hgr(tiny_graph, path)
        assert nio.read_hgr(path) == tiny_graph

    def test_roundtrip_weighted(self, tmp_path):
        path = tmp_path / "w.hgr"
        graph = _weighted_graph()
        nio.write_hgr(graph, path)
        back = nio.read_hgr(path)
        assert back == graph
        assert back.node_weights == graph.node_weights

    def test_roundtrip_generated(self, tmp_path):
        graph = hierarchical_circuit(120, 130, 470, seed=3)
        path = tmp_path / "gen.hgr"
        nio.write_hgr(graph, path)
        assert nio.read_hgr(path) == graph

    def test_one_based_indices(self, tmp_path):
        path = tmp_path / "g.hgr"
        path.write_text("1 2\n1 2\n")
        hg = nio.read_hgr(path)
        assert hg.net(0) == (0, 1)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.hgr"
        path.write_text("% comment\n1 2\n1 2\n")
        assert nio.read_hgr(path).num_nets == 1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.hgr"
        path.write_text("")
        with pytest.raises(HypergraphError, match="empty"):
            nio.read_hgr(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.hgr"
        path.write_text("1\n1 2\n")
        with pytest.raises(HypergraphError, match="header"):
            nio.read_hgr(path)

    def test_wrong_line_count(self, tmp_path):
        path = tmp_path / "bad.hgr"
        path.write_text("2 3\n1 2\n")
        with pytest.raises(HypergraphError, match="data lines"):
            nio.read_hgr(path)

    def test_pin_out_of_range(self, tmp_path):
        path = tmp_path / "bad.hgr"
        path.write_text("1 2\n1 9\n")
        with pytest.raises(HypergraphError, match="out of range"):
            nio.read_hgr(path)

    def test_unsupported_fmt(self, tmp_path):
        path = tmp_path / "bad.hgr"
        path.write_text("1 2 7\n1 2\n")
        with pytest.raises(HypergraphError, match="fmt"):
            nio.read_hgr(path)


class TestNetlist:
    def test_roundtrip_named(self, tmp_path):
        graph = _named_graph()
        path = tmp_path / "g.net"
        nio.write_netlist(graph, path)
        back = nio.read_netlist(path)
        assert back == graph
        assert back.node_names == graph.node_names
        assert back.net_names == graph.net_names

    def test_roundtrip_anonymous(self, tmp_path, tiny_graph):
        path = tmp_path / "g.net"
        nio.write_netlist(tiny_graph, path)
        assert nio.read_netlist(path) == tiny_graph

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.net"
        path.write_text("# header\n\nNODE a\nNODE b\nNET n1 a b  # trailing\n")
        hg = nio.read_netlist(path)
        assert hg.num_nodes == 2
        assert hg.num_nets == 1

    def test_cost_clause(self, tmp_path):
        path = tmp_path / "g.net"
        path.write_text("NET n1 COST 4.5 a b\n")
        hg = nio.read_netlist(path)
        assert hg.net_cost(0) == 4.5

    def test_bad_keyword(self, tmp_path):
        path = tmp_path / "g.net"
        path.write_text("WIRE a b\n")
        with pytest.raises(HypergraphError, match="unknown keyword"):
            nio.read_netlist(path)

    def test_bad_net_line(self, tmp_path):
        path = tmp_path / "g.net"
        path.write_text("NET onlyname\n")
        with pytest.raises(HypergraphError, match="bad NET"):
            nio.read_netlist(path)

    def test_bad_cost_clause(self, tmp_path):
        path = tmp_path / "g.net"
        path.write_text("NET n COST 2\n")
        with pytest.raises(HypergraphError, match="COST"):
            nio.read_netlist(path)


class TestJson:
    def test_roundtrip(self, tmp_path):
        graph = _named_graph()
        path = tmp_path / "g.json"
        nio.write_json(graph, path)
        back = nio.read_json(path)
        assert back == graph
        assert back.node_names == graph.node_names

    def test_missing_field(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{"nets": [[0, 1]]}')
        with pytest.raises(HypergraphError, match="missing field"):
            nio.read_json(path)


class TestDispatch:
    @pytest.mark.parametrize("ext", [".hgr", ".net", ".json"])
    def test_roundtrip_by_extension(self, tmp_path, tiny_graph, ext):
        path = tmp_path / f"g{ext}"
        nio.write(tiny_graph, path)
        assert nio.read(path) == tiny_graph

    def test_unknown_extension(self, tmp_path, tiny_graph):
        with pytest.raises(HypergraphError, match="extension"):
            nio.write(tiny_graph, tmp_path / "g.xyz")
        with pytest.raises(HypergraphError, match="extension"):
            nio.read(tmp_path / "g.xyz")
