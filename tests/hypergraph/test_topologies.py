"""Tests for the structured topology generators — with analytic optima."""

import pytest

from repro.core import PropPartitioner
from repro.hypergraph import (
    butterfly_circuit,
    mesh_circuit,
    ring_circuit,
    star_circuit,
    torus_circuit,
    tree_circuit,
)
from repro.multirun import run_many
from repro.partition import BalanceConstraint, cut_cost


class TestMesh:
    def test_counts(self):
        mesh = mesh_circuit(4, 3)
        assert mesh.num_nodes == 12
        # edges: 3*3 horizontal + 4*2 vertical = 17
        assert mesh.num_nets == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_circuit(0, 3)

    def test_single_row(self):
        chain = mesh_circuit(5, 1)
        assert chain.num_nets == 4

    def test_optimal_bisection_is_short_axis(self):
        """An 8x4 mesh bisects with cut 4 (vertical cut down the middle)."""
        mesh = mesh_circuit(8, 4)
        best = run_many(PropPartitioner(), mesh, runs=5).best_cut
        assert best == 4.0

    def test_known_split_cut(self):
        mesh = mesh_circuit(6, 4)
        sides = [0 if (v % 6) < 3 else 1 for v in range(24)]
        assert cut_cost(mesh, sides) == 4.0


class TestTorus:
    def test_wrap_edges_added(self):
        assert torus_circuit(4, 4).num_nets == mesh_circuit(4, 4).num_nets + 8

    def test_small_dims_no_duplicate_wraps(self):
        # width 2: no horizontal wrap (would duplicate)
        torus = torus_circuit(2, 4)
        assert torus.num_nets == mesh_circuit(2, 4).num_nets + 2

    def test_bisection_doubles_mesh(self):
        torus = torus_circuit(8, 4)
        best = run_many(PropPartitioner(), torus, runs=6).best_cut
        assert best == 8.0  # two vertical cuts of height 4


class TestRing:
    def test_counts(self):
        ring = ring_circuit(10)
        assert ring.num_nodes == 10
        assert ring.num_nets == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_circuit(2)

    def test_optimal_bisection_is_two(self):
        ring = ring_circuit(40)
        best = run_many(PropPartitioner(), ring, runs=5).best_cut
        assert best == 2.0


class TestTree:
    def test_counts_binary(self):
        tree = tree_circuit(3)  # 15 nodes, 14 edges
        assert tree.num_nodes == 15
        assert tree.num_nets == 14

    def test_counts_ternary(self):
        tree = tree_circuit(2, fanout=3)  # 1 + 3 + 9 = 13 nodes
        assert tree.num_nodes == 13
        assert tree.num_nets == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_circuit(0)
        with pytest.raises(ValueError):
            tree_circuit(2, fanout=1)

    def test_near_optimal_bisection(self):
        """A 63-node binary tree bisects with a very small cut (cutting
        near the root isolates a subtree of ~half the nodes)."""
        tree = tree_circuit(5)
        balance = BalanceConstraint.from_fractions(tree, 0.45, 0.55)
        best = run_many(
            PropPartitioner(), tree, runs=5, balance=balance
        ).best_cut
        assert best <= 3.0


class TestStar:
    def test_spokes_model(self):
        star = star_circuit(8)
        assert star.num_nets == 8
        # any balanced bisection cuts at least ~half the spokes
        sides = [0] * 5 + [1] * 4
        assert cut_cost(star, sides) >= 4.0

    def test_single_net_model(self):
        """The same topology as ONE hyperedge can only contribute 1 to any
        cut — the hypergraph-vs-clique modelling point."""
        star = star_circuit(8, as_single_net=True)
        assert star.num_nets == 1
        sides = [0] * 5 + [1] * 4
        assert cut_cost(star, sides) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            star_circuit(0)


class TestButterfly:
    def test_counts(self):
        bf = butterfly_circuit(3)  # 4 stages x 8 rows
        assert bf.num_nodes == 32
        assert bf.num_nets == 3 * 8 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            butterfly_circuit(0)

    def test_partitionable(self):
        bf = butterfly_circuit(3)
        result = PropPartitioner().partition(bf, seed=0)
        result.verify(bf)
        assert result.cut < bf.num_nets / 2
