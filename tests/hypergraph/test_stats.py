"""Unit tests for hypergraph statistics (paper Sec. 3.5 symbols)."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    compute_stats,
    exact_average_neighbors,
    hierarchical_circuit,
)


class TestComputeStats:
    def test_tiny(self, tiny_graph):
        s = compute_stats(tiny_graph)
        assert s.n == 6
        assert s.e == 5
        assert s.m == 11
        assert s.p == pytest.approx(11 / 6)
        assert s.q == pytest.approx(11 / 5)
        assert s.d == pytest.approx((11 / 6) * (11 / 5 - 1))
        assert s.max_pins_per_net == 3
        assert s.max_pins_per_node == 2

    def test_m_equals_pn_and_qe(self, medium_circuit):
        s = compute_stats(medium_circuit)
        assert s.p * s.n == pytest.approx(s.m)
        assert s.q * s.e == pytest.approx(s.m)

    def test_as_table_row(self, tiny_graph):
        assert compute_stats(tiny_graph).as_table_row() == {
            "nodes": 6,
            "nets": 5,
            "pins": 11,
        }

    def test_empty_graph(self):
        s = compute_stats(Hypergraph([], num_nodes=4))
        assert s.m == 0
        assert s.p == 0.0
        assert s.q == 0.0
        assert s.d == 0.0


class TestExactNeighbors:
    def test_tiny(self, tiny_graph):
        # neighbor counts: 0:1, 1:2, 2:3, 3:3, 4:2, 5:3 -> mean 14/6
        assert exact_average_neighbors(tiny_graph) == pytest.approx(14 / 6)

    def test_empty(self):
        assert exact_average_neighbors(Hypergraph([], num_nodes=0)) == 0.0

    def test_paper_estimate_same_order_on_circuits(self):
        """d = p(q-1) is an amortized estimate; it deviates from the exact
        mean neighbor count in both directions (shared nets reduce it,
        net-size variance inflates it) but must stay the same order of
        magnitude on circuit-like instances for the Sec. 3.5 complexity
        arguments to apply."""
        graph = hierarchical_circuit(300, 320, 1150, seed=3)
        s = compute_stats(graph)
        exact = exact_average_neighbors(graph)
        assert s.d * 0.3 <= exact <= s.d * 3.0
