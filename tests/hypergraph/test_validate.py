"""Tests for netlist linting and connectivity analysis."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    connected_components,
    hierarchical_circuit,
    is_connected,
    lint,
    mesh_circuit,
    ring_circuit,
)


class TestConnectivity:
    def test_connected_chain(self):
        chain = Hypergraph([[0, 1], [1, 2], [2, 3]])
        assert is_connected(chain)
        assert connected_components(chain) == [[0, 1, 2, 3]]

    def test_two_components(self):
        hg = Hypergraph([[0, 1], [2, 3], [3, 4]], num_nodes=5)
        comps = connected_components(hg)
        assert len(comps) == 2
        assert comps[0] == [2, 3, 4]  # larger first
        assert comps[1] == [0, 1]
        assert not is_connected(hg)

    def test_isolated_nodes_are_singletons(self):
        hg = Hypergraph([[0, 1]], num_nodes=4)
        comps = connected_components(hg)
        assert [0, 1] in comps
        assert [2] in comps and [3] in comps

    def test_hyperedge_connects_all_pins(self):
        hg = Hypergraph([[0, 1, 2, 3, 4]])
        assert is_connected(hg)

    def test_empty_and_single(self):
        assert is_connected(Hypergraph([], num_nodes=0))
        assert is_connected(Hypergraph([], num_nodes=1))

    def test_generated_circuits_mostly_connected(self):
        graph = hierarchical_circuit(200, 215, 780, seed=2)
        comps = connected_components(graph)
        assert len(comps[0]) > graph.num_nodes * 0.9


class TestLint:
    def test_clean_mesh(self):
        report = lint(mesh_circuit(6, 6))
        assert report.clean
        assert "clean" in report.summary()

    def test_disconnected_flagged(self):
        hg = Hypergraph([[0, 1], [2, 3]], num_nodes=4)
        report = lint(hg)
        assert report.num_components == 2
        assert not report.clean
        assert "disconnected" in report.summary()

    def test_isolated_nodes(self):
        hg = Hypergraph([[0, 1]], num_nodes=3)
        report = lint(hg)
        assert report.isolated_nodes == [2]

    def test_single_pin_nets(self):
        hg = Hypergraph([[0], [0, 1]])
        report = lint(hg)
        assert report.single_pin_nets == [0]

    def test_duplicate_nets(self):
        hg = Hypergraph([[0, 1], [1, 0], [1, 2]])
        report = lint(hg)
        assert report.duplicate_net_groups == [[0, 1]]

    def test_huge_nets(self):
        hg = Hypergraph([list(range(30)), [0, 1]], num_nodes=30)
        report = lint(hg, huge_net_fraction=0.5)
        assert report.huge_nets == [0]

    def test_zero_cost_nets(self):
        hg = Hypergraph([[0, 1], [1, 2]], net_costs=[0.0, 1.0])
        report = lint(hg)
        assert report.zero_cost_nets == [0]
        # zero-cost alone doesn't make a netlist dirty
        assert lint(ring_circuit(6)).clean

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            lint(mesh_circuit(3, 3), huge_net_fraction=0.0)

    def test_summary_mentions_findings(self):
        hg = Hypergraph([[0], [0, 1], [1, 0]], num_nodes=3)
        text = lint(hg).summary()
        assert "single-pin" in text
        assert "duplicate" in text
        assert "isolated" in text
