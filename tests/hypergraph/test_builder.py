"""Unit tests for HypergraphBuilder."""

import pytest

from repro.hypergraph import HypergraphBuilder, HypergraphError


class TestNodes:
    def test_add_node_returns_indices(self):
        b = HypergraphBuilder()
        assert b.add_node() == 0
        assert b.add_node() == 1
        assert b.num_nodes == 2

    def test_add_nodes_range(self):
        b = HypergraphBuilder()
        b.add_node()
        assert list(b.add_nodes(3)) == [1, 2, 3]

    def test_add_nodes_negative_count(self):
        with pytest.raises(HypergraphError):
            HypergraphBuilder().add_nodes(-1)

    def test_named_node_lookup(self):
        b = HypergraphBuilder()
        idx = b.add_node(name="alu")
        assert b.node_by_name("alu") == idx

    def test_duplicate_name_rejected(self):
        b = HypergraphBuilder()
        b.add_node(name="x")
        with pytest.raises(HypergraphError, match="duplicate"):
            b.add_node(name="x")

    def test_get_or_add_node(self):
        b = HypergraphBuilder()
        first = b.get_or_add_node("x")
        assert b.get_or_add_node("x") == first
        assert b.num_nodes == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(HypergraphError, match="negative"):
            HypergraphBuilder().add_node(weight=-1.0)


class TestNets:
    def test_add_net(self):
        b = HypergraphBuilder()
        b.add_nodes(3)
        assert b.add_net([0, 1]) == 0
        assert b.add_net([1, 2], cost=2.0) == 1
        hg = b.build()
        assert hg.net(0) == (0, 1)
        assert hg.net_cost(1) == 2.0

    def test_net_pin_out_of_range(self):
        b = HypergraphBuilder()
        b.add_nodes(2)
        with pytest.raises(HypergraphError, match="out of range"):
            b.add_net([0, 5])

    def test_empty_net_rejected(self):
        b = HypergraphBuilder()
        b.add_nodes(2)
        with pytest.raises(HypergraphError, match="no pins"):
            b.add_net([])

    def test_duplicate_pin_rejected(self):
        b = HypergraphBuilder()
        b.add_nodes(2)
        with pytest.raises(HypergraphError, match="duplicate"):
            b.add_net([0, 0])

    def test_negative_cost_rejected(self):
        b = HypergraphBuilder()
        b.add_nodes(2)
        with pytest.raises(HypergraphError, match="negative"):
            b.add_net([0, 1], cost=-2.0)

    def test_add_net_by_names_creates_nodes(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["a", "b"])
        b.add_net_by_names(["b", "c"])
        hg = b.build()
        assert hg.num_nodes == 3
        assert hg.num_nets == 2
        assert hg.node_names is not None
        assert "a" in hg.node_names


class TestBuild:
    def test_docstring_example(self):
        b = HypergraphBuilder()
        a, c, d = b.add_node("a"), b.add_node("c"), b.add_node("d")
        b.add_net([a, c], name="n1")
        b.add_net([c, d], cost=2.0)
        hg = b.build()
        assert (hg.num_nodes, hg.num_nets, hg.num_pins) == (3, 2, 4)
        assert hg.net_names == ("n1", "net1")

    def test_anonymous_build_has_no_names(self):
        b = HypergraphBuilder()
        b.add_nodes(2)
        b.add_net([0, 1])
        hg = b.build()
        assert hg.node_names is None
        assert hg.net_names is None

    def test_weights_preserved(self):
        b = HypergraphBuilder()
        b.add_node(weight=3.0)
        b.add_node(weight=1.5)
        b.add_net([0, 1])
        hg = b.build()
        assert hg.node_weights == (3.0, 1.5)
