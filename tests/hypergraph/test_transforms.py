"""Unit tests for contraction, induced subhypergraphs, net filtering."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    HypergraphError,
    contract,
    induced_subhypergraph,
    remove_large_nets,
)
from repro.partition import cut_cost


class TestContract:
    def test_basic(self, tiny_graph):
        # clusters: {0,1,2} and {3,4,5}; only the 3-pin net crosses
        c = contract(tiny_graph, [0, 0, 0, 1, 1, 1])
        assert c.coarse.num_nodes == 2
        assert c.coarse.num_nets == 1
        assert c.coarse.net(0) == (0, 1)

    def test_weights_summed(self, tiny_graph):
        c = contract(tiny_graph, [0, 0, 0, 1, 1, 1])
        assert c.coarse.node_weights == (3.0, 3.0)

    def test_merged_nets_accumulate_cost(self):
        hg = Hypergraph([[0, 2], [1, 3], [0, 1]])
        c = contract(hg, [0, 0, 1, 1])
        # nets {0,2} and {1,3} both become coarse net {0,1}: cost 2
        assert c.coarse.num_nets == 1
        assert c.coarse.net_cost(0) == 2.0

    def test_internal_nets_dropped(self):
        hg = Hypergraph([[0, 1], [2, 3]])
        c = contract(hg, [0, 0, 1, 1])
        assert c.coarse.num_nets == 0

    def test_cut_preserved_under_projection(self, medium_circuit):
        """Cut of a coarse partition equals cut of its projection."""
        k = 10
        cluster_of = [v % k for v in range(medium_circuit.num_nodes)]
        c = contract(medium_circuit, cluster_of)
        coarse_sides = [i % 2 for i in range(k)]
        fine_sides = c.project_sides(coarse_sides)
        assert cut_cost(c.coarse, coarse_sides) == pytest.approx(
            cut_cost(medium_circuit, fine_sides)
        )

    def test_members_inverse_of_cluster_of(self, tiny_graph):
        c = contract(tiny_graph, [0, 1, 0, 1, 0, 1])
        for cluster, members in enumerate(c.members):
            for v in members:
                assert c.cluster_of[v] == cluster

    def test_length_mismatch(self, tiny_graph):
        with pytest.raises(HypergraphError, match="length"):
            contract(tiny_graph, [0, 1])

    def test_non_contiguous_ids(self, tiny_graph):
        with pytest.raises(HypergraphError, match="contiguous"):
            contract(tiny_graph, [0, 0, 0, 2, 2, 2])

    def test_negative_ids(self, tiny_graph):
        with pytest.raises(HypergraphError, match="negative"):
            contract(tiny_graph, [0, 0, 0, -1, 1, 1])

    def test_project_sides_length_check(self, tiny_graph):
        c = contract(tiny_graph, [0, 0, 0, 1, 1, 1])
        with pytest.raises(ValueError, match="coarse sides"):
            c.project_sides([0])


class TestInducedSubhypergraph:
    def test_basic(self, tiny_graph):
        sub = induced_subhypergraph(tiny_graph, [0, 1, 2])
        assert sub.graph.num_nodes == 3
        # nets {0,1} and {1,2} survive; {2,3,5} restricts to 1 pin -> dropped
        assert sub.graph.num_nets == 2

    def test_maps_are_consistent(self, tiny_graph):
        sub = induced_subhypergraph(tiny_graph, [3, 4, 5])
        for local, parent in enumerate(sub.to_parent):
            assert sub.from_parent[parent] == local

    def test_keep_dangling(self, tiny_graph):
        sub = induced_subhypergraph(tiny_graph, [0, 1, 2], keep_dangling=True)
        # crossing net {2,3,5} keeps its 1-pin restriction
        assert sub.graph.num_nets == 3

    def test_weights_carried(self):
        hg = Hypergraph([[0, 1], [1, 2]], node_weights=[1.0, 2.0, 3.0])
        sub = induced_subhypergraph(hg, [1, 2])
        assert sub.graph.node_weights == (2.0, 3.0)

    def test_empty_rejected(self, tiny_graph):
        with pytest.raises(HypergraphError, match="empty"):
            induced_subhypergraph(tiny_graph, [])

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(HypergraphError, match="out of range"):
            induced_subhypergraph(tiny_graph, [0, 99])

    def test_duplicates_deduped(self, tiny_graph):
        sub = induced_subhypergraph(tiny_graph, [0, 0, 1])
        assert sub.graph.num_nodes == 2


class TestRemoveLargeNets:
    def test_filters(self, tiny_graph):
        filtered = remove_large_nets(tiny_graph, 2)
        assert filtered.num_nets == 4
        assert all(filtered.net_size(i) <= 2 for i in range(4))

    def test_noop_when_all_small(self, tiny_graph):
        assert remove_large_nets(tiny_graph, 10).num_nets == 5

    def test_min_size_validated(self, tiny_graph):
        with pytest.raises(ValueError):
            remove_large_nets(tiny_graph, 1)

    def test_node_count_preserved(self, tiny_graph):
        assert remove_large_nets(tiny_graph, 2).num_nodes == 6
