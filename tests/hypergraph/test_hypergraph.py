"""Unit tests for the core Hypergraph data structure."""

import pytest

from repro.hypergraph import Hypergraph, HypergraphError, clique_edges


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_nets == 5
        assert tiny_graph.num_pins == 11

    def test_infers_num_nodes(self):
        hg = Hypergraph([[0, 3]])
        assert hg.num_nodes == 4

    def test_explicit_num_nodes_allows_isolated(self):
        hg = Hypergraph([[0, 1]], num_nodes=5)
        assert hg.num_nodes == 5
        assert hg.isolated_nodes() == [2, 3, 4]

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(HypergraphError, match="reference node"):
            Hypergraph([[0, 5]], num_nodes=3)

    def test_empty_net_rejected(self):
        with pytest.raises(HypergraphError, match="empty"):
            Hypergraph([[0, 1], []])

    def test_duplicate_pin_rejected(self):
        with pytest.raises(HypergraphError, match="duplicate"):
            Hypergraph([[0, 1, 0]])

    def test_negative_node_rejected(self):
        with pytest.raises(HypergraphError, match="negative"):
            Hypergraph([[0, -1]])

    def test_non_integer_node_rejected(self):
        with pytest.raises(HypergraphError, match="non-integer"):
            Hypergraph([[0, 1.5]])

    def test_bool_node_rejected(self):
        with pytest.raises(HypergraphError, match="non-integer"):
            Hypergraph([[0, True]])

    def test_single_pin_net_allowed(self):
        hg = Hypergraph([[2]])
        assert hg.num_nets == 1
        assert hg.net_size(0) == 1

    def test_empty_hypergraph(self):
        hg = Hypergraph([], num_nodes=3)
        assert hg.num_nodes == 3
        assert hg.num_nets == 0
        assert hg.num_pins == 0


class TestCostsAndWeights:
    def test_default_unit_costs(self, tiny_graph):
        assert tiny_graph.has_unit_net_costs
        assert tiny_graph.net_costs == (1.0,) * 5

    def test_explicit_costs(self):
        hg = Hypergraph([[0, 1], [1, 2]], net_costs=[2.5, 1.0])
        assert hg.net_cost(0) == 2.5
        assert not hg.has_unit_net_costs

    def test_cost_length_mismatch(self):
        with pytest.raises(HypergraphError, match="length"):
            Hypergraph([[0, 1]], net_costs=[1.0, 2.0])

    def test_negative_cost_rejected(self):
        with pytest.raises(HypergraphError, match="negative"):
            Hypergraph([[0, 1]], net_costs=[-1.0])

    def test_node_weights(self):
        hg = Hypergraph([[0, 1]], node_weights=[2.0, 3.0])
        assert hg.node_weight(1) == 3.0
        assert hg.total_node_weight == 5.0

    def test_with_net_costs_copy(self, tiny_graph):
        weighted = tiny_graph.with_net_costs([2.0] * 5)
        assert weighted.net_cost(0) == 2.0
        assert tiny_graph.net_cost(0) == 1.0  # original untouched
        assert weighted.nets == tiny_graph.nets

    def test_with_node_weights_copy(self, tiny_graph):
        weighted = tiny_graph.with_node_weights([2.0] * 6)
        assert weighted.total_node_weight == 12.0
        assert tiny_graph.total_node_weight == 6.0


class TestIncidence:
    def test_node_nets(self, tiny_graph):
        assert tiny_graph.node_nets(1) == (0, 1)
        assert tiny_graph.node_nets(5) == (3, 4)

    def test_node_degree(self, tiny_graph):
        assert tiny_graph.node_degree(4) == 2
        assert tiny_graph.node_degree(0) == 1

    def test_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.neighbors(2)) == [1, 3, 5]
        assert sorted(tiny_graph.neighbors(0)) == [1]

    def test_neighbors_no_self(self, tiny_graph):
        for v in range(tiny_graph.num_nodes):
            assert v not in tiny_graph.neighbors(v)

    def test_neighbors_deduplicated(self):
        # nodes 0,1 share two nets; neighbor listed once
        hg = Hypergraph([[0, 1], [0, 1]])
        assert hg.neighbors(0) == [1]

    def test_iter_pins(self, tiny_graph):
        pins = list(tiny_graph.iter_pins())
        assert len(pins) == tiny_graph.num_pins
        assert (0, 0) in pins
        assert (4, 5) in pins

    def test_degree_histogram(self, tiny_graph):
        assert tiny_graph.degree_histogram() == {2: 4, 3: 1}


class TestEquality:
    def test_equal(self):
        a = Hypergraph([[0, 1], [1, 2]])
        b = Hypergraph([[0, 1], [1, 2]])
        assert a == b
        assert hash(a) == hash(b)

    def test_costs_matter(self):
        a = Hypergraph([[0, 1]])
        b = Hypergraph([[0, 1]], net_costs=[2.0])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Hypergraph([[0, 1]]) != "nope"


class TestCliqueEdges:
    def test_two_pin_net(self):
        edges = clique_edges(Hypergraph([[0, 1]]))
        assert edges == {(0, 1): 1.0}

    def test_standard_weighting(self):
        # 3-pin net: each edge gets 1/(3-1) = 0.5
        edges = clique_edges(Hypergraph([[0, 1, 2]]))
        assert edges == {(0, 1): 0.5, (0, 2): 0.5, (1, 2): 0.5}

    def test_uniform_weighting(self):
        edges = clique_edges(Hypergraph([[0, 1, 2]]), weight_model="uniform")
        assert edges[(0, 1)] == 1.0

    def test_parallel_nets_accumulate(self):
        edges = clique_edges(Hypergraph([[0, 1], [0, 1]]))
        assert edges == {(0, 1): 2.0}

    def test_single_pin_net_ignored(self):
        assert clique_edges(Hypergraph([[0]])) == {}

    def test_net_cost_scales(self):
        hg = Hypergraph([[0, 1]], net_costs=[3.0])
        assert clique_edges(hg) == {(0, 1): 3.0}

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="weight_model"):
            clique_edges(Hypergraph([[0, 1]]), weight_model="bogus")
