"""End-to-end integration scenarios chaining multiple subsystems.

Each test is a realistic user workflow touching several packages; unit
tests elsewhere cover the parts, these cover the seams.
"""

import pytest

from repro import (
    BalanceConstraint,
    FMPartitioner,
    PropPartitioner,
    make_benchmark,
    run_many,
)
from repro.fpga import FpgaDevice, partition_onto_fpgas
from repro.hypergraph import io_ as netlist_io
from repro.hypergraph import lint, remove_large_nets
from repro.kway import recursive_bisection, refine_kway_result
from repro.partition import check_partition
from repro.placement import mincut_placement
from repro.timing import critical_net_weights, timing_report


@pytest.fixture(scope="module")
def circuit():
    return make_benchmark("t3", scale=0.2)


class TestFullFlows:
    def test_load_lint_partition_verify(self, circuit, tmp_path):
        """Disk in -> lint -> partition -> validate -> disk out."""
        path = tmp_path / "design.hgr"
        netlist_io.write(circuit, path)
        loaded = netlist_io.read(path)
        assert loaded == circuit

        report = lint(loaded)
        assert report.num_components >= 1

        balance = BalanceConstraint.forty_five_fifty_five(loaded)
        outcome = run_many(PropPartitioner(), loaded, runs=3, balance=balance)
        check = check_partition(
            loaded, outcome.best.sides, balance=balance,
            expected_cut=outcome.best_cut,
        )
        assert check.ok, check.summary()

    def test_clean_then_partition(self, circuit):
        """Huge-net filtering before partitioning: the cut on the filtered
        netlist lower-bounds the unfiltered cut of the same sides."""
        filtered = remove_large_nets(circuit, max_size=12)
        assert filtered.num_nets <= circuit.num_nets
        result = PropPartitioner().partition(filtered, seed=0)
        from repro.partition import cut_cost

        full_cut = cut_cost(circuit, result.sides)
        assert result.cut <= full_cut

    def test_timing_to_fpga_flow(self, circuit):
        """Weight critical nets, then map the weighted design onto FPGAs;
        crossing count and reports stay consistent."""
        from repro.timing import synthetic_critical_nets

        critical = synthetic_critical_nets(circuit, 0.1, seed=1)
        weighted = critical_net_weights(circuit, critical, 8.0)
        devices = [
            FpgaDevice(capacity=circuit.num_nodes * 0.3, io_limit=10_000)
        ] * 4
        plan = partition_onto_fpgas(weighted, devices, seed=0)
        assert len(plan.assignment) == circuit.num_nodes
        report = timing_report(weighted, [
            0 if part < 2 else 1 for part in plan.assignment
        ], critical)
        assert report.critical_total == len(critical)

    def test_kway_to_placement_consistency(self, circuit):
        """k-way assignment and a placement derived independently both
        come from the same min-cut machinery and must agree on scale:
        parts correspond to spatial clusters with bounded wirelength."""
        kway = recursive_bisection(circuit, 4, seed=0)
        refined, _ = refine_kway_result(circuit, kway, seed=0)
        placement = mincut_placement(circuit, seed=0)
        placement.check_in_bounds()
        assert refined.cut <= kway.cut

    def test_fm_and_prop_agree_on_verified_outputs(self, circuit, tmp_path):
        """Cross-algorithm: both engines' outputs pass the same checker
        under the same balance."""
        balance = BalanceConstraint.fifty_fifty(circuit)
        for engine in (FMPartitioner("bucket"), PropPartitioner()):
            result = engine.partition(circuit, balance=balance, seed=1)
            check = check_partition(
                circuit, result.sides, balance=balance,
                expected_cut=result.cut,
            )
            assert check.ok, f"{engine.name}: {check.summary()}"
