"""CLI: `cache verify|clear` maintenance and the --run-id/--resume flow."""

import json

import pytest

from repro.cli import main


def _partition_args(tmp_path, *extra):
    return [
        "--generate", "t6", "--scale", "0.05", "-a", "fm", "--runs", "2",
        "--workers", "0", "--cache-dir", str(tmp_path / "cache"), *extra,
    ]


def _record_paths(tmp_path):
    root = tmp_path / "cache"
    return [
        p for p in root.rglob("*.json") if p.parent.name != "runs"
    ] if root.is_dir() else []


class TestCacheVerify:
    def test_empty_store_verifies_clean(self, tmp_path, capsys):
        rc = main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scanned 0 record(s)" in out

    def test_corrupt_record_fails_then_second_pass_is_clean(
        self, tmp_path, capsys
    ):
        assert main(_partition_args(tmp_path)) == 0
        [first, *_] = sorted(_record_paths(tmp_path))
        record = json.loads(first.read_text())
        record["cut"] = -1.0  # stale checksum
        first.write_text(json.dumps(record))
        capsys.readouterr()

        rc = main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 1  # CI integrity gate
        assert "1 corrupt record(s), 1 removed" in capsys.readouterr().out
        assert not first.exists()

        rc = main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "all records verified" in capsys.readouterr().out

    def test_keep_flag_reports_without_removing(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path)) == 0
        [first, *_] = sorted(_record_paths(tmp_path))
        first.write_text("{torn")
        rc = main([
            "cache", "verify", "--keep",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 1
        assert "0 removed" in capsys.readouterr().out
        assert first.exists()

    def test_verify_lists_run_journals(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path, "--run-id", "myrun")) == 0
        capsys.readouterr()
        assert main(
            ["cache", "verify", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "run journal(s)" in out
        assert "myrun" in out


class TestCacheClear:
    def test_clear_removes_records_not_journals(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path, "--run-id", "keepme")) == 0
        count = len(_record_paths(tmp_path))
        assert count > 0
        capsys.readouterr()
        assert main(
            ["cache", "clear", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert f"removed {count} record(s)" in capsys.readouterr().out
        assert _record_paths(tmp_path) == []
        assert (tmp_path / "cache" / "runs" / "keepme.jsonl").exists()

    def test_unknown_action_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "polish", "--cache-dir", str(tmp_path / "cache")])


class TestRunIdResumeFlow:
    def test_resume_serves_journal_and_matches(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path, "--run-id", "sweep")) == 0
        first = capsys.readouterr().out
        assert "journalling run sweep (resume with --resume sweep)" in first

        # --no-cache isolates the journal: hits must come from it alone
        assert main(
            _partition_args(tmp_path, "--no-cache", "--resume", "sweep")
        ) == 0
        second = capsys.readouterr().out
        assert "resuming run sweep" in second
        assert "2 resumed" in second
        assert "0 executed" in second

        def best_cut(out):
            [line] = [ln for ln in out.splitlines() if "best cut" in ln]
            return line.rsplit(",", 1)[0]  # drop the wall-clock suffix

        assert best_cut(first) == best_cut(second)

    def test_auto_run_id_is_announced(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "journalling run " in out
        assert "resume with --resume" in out


class TestCacheVerifyJson:
    """`cache verify --json`: machine-readable report, same exit codes."""

    def _verify_json(self, tmp_path, capsys, *extra):
        rc = main([
            "cache", "verify", "--json",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ])
        out = capsys.readouterr().out
        return rc, json.loads(out)

    def test_clean_store_emits_report_and_exit_0(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path, "--run-id", "r1")) == 0
        capsys.readouterr()
        rc, report = self._verify_json(tmp_path, capsys)
        assert rc == 0
        assert report["scanned"] == report["ok"] > 0
        assert report["corrupt"] == report["removed"] == 0
        assert report["runs"] == ["r1"]
        assert report["root"] == str(tmp_path / "cache")

    def test_corruption_reported_and_exit_1(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path)) == 0
        [first, *_] = sorted(_record_paths(tmp_path))
        record = json.loads(first.read_text())
        record["cut"] = -1.0
        first.write_text(json.dumps(record))
        capsys.readouterr()
        rc, report = self._verify_json(tmp_path, capsys)
        assert rc == 1
        assert report["corrupt"] == report["removed"] == 1
        assert not first.exists()

    def test_keep_reports_without_removing(self, tmp_path, capsys):
        assert main(_partition_args(tmp_path)) == 0
        [first, *_] = sorted(_record_paths(tmp_path))
        record = json.loads(first.read_text())
        record["cut"] = -1.0
        first.write_text(json.dumps(record))
        capsys.readouterr()
        rc, report = self._verify_json(tmp_path, capsys, "--keep")
        assert rc == 1
        assert report["corrupt"] == 1 and report["removed"] == 0
        assert first.exists()

    def test_json_output_is_the_only_stdout(self, tmp_path, capsys):
        """Pipelines depend on stdout being exactly one JSON object."""
        assert main(["cache", "verify", "--json",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["scanned"] == 0
        assert out.count("\n") == 1
