"""Tests for the pass journal / prefix-sum rollback machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import PassJournal


def brute_force_best_prefix(gains):
    """Reference: smallest p maximizing the prefix sum (0 if all <= 0)."""
    best_p, best_sum = 0, float("-inf")
    running = 0.0
    for k, g in enumerate(gains, start=1):
        running += g
        if running > best_sum:
            best_sum, best_p = running, k
    if not gains:
        return 0, 0.0
    if best_sum <= 0:
        return 0, best_sum
    return best_p, best_sum


class TestBasics:
    def test_empty(self):
        j = PassJournal()
        assert len(j) == 0
        assert j.best_prefix() == (0, 0.0)
        assert j.kept_moves() == []
        assert j.rolled_back_moves() == []

    def test_all_positive(self):
        j = PassJournal()
        for node, g in enumerate([2, 1, 3]):
            j.record(node, 0, g)
        assert j.best_prefix() == (3, 6.0)
        assert len(j.kept_moves()) == 3

    def test_peak_in_middle(self):
        j = PassJournal()
        for node, g in enumerate([2, 3, -1, -4]):
            j.record(node, 0, g)
        p, gmax = j.best_prefix()
        assert (p, gmax) == (2, 5.0)
        assert [m.node for m in j.kept_moves()] == [0, 1]
        assert [m.node for m in j.rolled_back_moves()] == [2, 3]

    def test_all_negative_returns_zero_prefix(self):
        j = PassJournal()
        for node, g in enumerate([-1, -2]):
            j.record(node, 0, g)
        p, gmax = j.best_prefix()
        assert p == 0
        assert gmax <= 0

    def test_ties_prefer_shorter_prefix(self):
        # prefix sums: 3, 2, 3 -> keep 1 move, not 3
        j = PassJournal()
        for node, g in enumerate([3, -1, 1]):
            j.record(node, 0, g)
        assert j.best_prefix() == (1, 3.0)

    def test_prefix_sums(self):
        j = PassJournal()
        for node, g in enumerate([1, -2, 4]):
            j.record(node, 0, g)
        assert j.prefix_sums() == [1.0, -1.0, 3.0]

    def test_tiny_fractional_improvement_is_kept(self):
        # Regression: weighted (fractional) net costs can produce a later
        # prefix that is strictly better by less than 1e-12 — e.g. the
        # float residue (0.1 + 0.2) - 0.3 ~ 5.6e-17.  The old absolute
        # tolerance discarded it; the exact comparison must keep it.
        residue = (0.1 + 0.2) - 0.3
        assert 0 < residue < 1e-12
        j = PassJournal()
        j.record(0, 0, 0.3)
        j.record(1, 1, residue)
        p, gmax = j.best_prefix()
        assert p == 2
        assert gmax == 0.3 + residue
        assert len(j.kept_moves()) == 2

    def test_exact_tie_still_prefers_shorter_prefix(self):
        # Exactly equal prefix sums (0.5, 0.0, 0.5) must still resolve to
        # the earliest prefix under the exact comparison.
        j = PassJournal()
        for node, g in enumerate([0.5, -0.5, 0.5]):
            j.record(node, 0, g)
        assert j.best_prefix() == (1, 0.5)

    def test_records_metadata(self):
        j = PassJournal()
        j.record(7, 1, -2.5)
        mv = j.moves[0]
        assert (mv.node, mv.from_side, mv.immediate_gain) == (7, 1, -2.5)


class TestProperties:
    @given(st.lists(st.integers(-5, 5)))
    @settings(max_examples=80)
    def test_matches_brute_force(self, gains):
        j = PassJournal()
        for node, g in enumerate(gains):
            j.record(node, node % 2, float(g))
        assert j.best_prefix() == brute_force_best_prefix(gains)

    @given(
        st.lists(
            st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False)
        )
    )
    @settings(max_examples=80)
    def test_matches_brute_force_fractional(self, gains):
        # Weighted nets yield non-integer gains; the exact comparison must
        # agree with the reference on arbitrary floats too.
        j = PassJournal()
        for node, g in enumerate(gains):
            j.record(node, node % 2, g)
        assert j.best_prefix() == brute_force_best_prefix(gains)

    @given(st.lists(st.integers(-5, 5)))
    def test_kept_plus_rolled_back_is_everything(self, gains):
        j = PassJournal()
        for node, g in enumerate(gains):
            j.record(node, 0, float(g))
        assert len(j.kept_moves()) + len(j.rolled_back_moves()) == len(gains)

    @given(st.lists(st.integers(-5, 5), min_size=1))
    def test_gmax_is_max_prefix_sum_when_positive(self, gains):
        j = PassJournal()
        for node, g in enumerate(gains):
            j.record(node, 0, float(g))
        p, gmax = j.best_prefix()
        sums = j.prefix_sums()
        if max(sums) > 0:
            assert gmax == max(sums)
            assert sums[p - 1] == gmax
