"""Model-based (stateful) tests for the gain containers.

Hypothesis drives random operation sequences against a container and a
deliberately naive model kept in plain dicts/lists; after every step the
two must agree on everything observable.  The model encodes the
*documented* tie rules — ``(gain, node)`` max for the tree container,
LIFO-within-bucket for the bucket container — so a regression in either
structure's ordering (not just its membership) is caught.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.datastructures import BucketGainContainer, TreeGainContainer

NODES = st.integers(min_value=0, max_value=23)
INT_GAINS = st.integers(min_value=-6, max_value=6)
FLOAT_GAINS = st.one_of(
    INT_GAINS.map(float),
    st.floats(min_value=-6.0, max_value=6.0, allow_nan=False, width=32),
)

COMMON_SETTINGS = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class TreeContainerMachine(RuleBasedStateMachine):
    """TreeGainContainer vs. a plain dict ordered by ``(gain, node)``."""

    def __init__(self):
        super().__init__()
        self.container = TreeGainContainer()
        self.model = {}

    def _descending(self):
        return sorted(
            ((n, g) for n, g in self.model.items()),
            key=lambda item: (item[1], item[0]),
            reverse=True,
        )

    @rule(node=NODES, gain=FLOAT_GAINS)
    def insert(self, node, gain):
        if node in self.model:
            with pytest.raises(KeyError):
                self.container.insert(node, gain)
        else:
            self.container.insert(node, gain)
            self.model[node] = gain

    @rule(node=NODES)
    def remove(self, node):
        if node not in self.model:
            with pytest.raises(KeyError):
                self.container.remove(node)
        else:
            assert self.container.remove(node) == self.model.pop(node)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), gain=FLOAT_GAINS)
    def update_present(self, data, gain):
        node = data.draw(st.sampled_from(sorted(self.model)))
        self.container.update(node, gain)
        self.model[node] = gain

    @rule(node=NODES)
    def gain_of(self, node):
        if node not in self.model:
            with pytest.raises(KeyError):
                self.container.gain_of(node)
        else:
            assert self.container.gain_of(node) == self.model[node]

    @rule(k=st.integers(min_value=0, max_value=8))
    def top_k(self, k):
        assert self.container.top(k) == self._descending()[:k]

    @invariant()
    def same_size_and_membership(self):
        assert len(self.container) == len(self.model)
        assert bool(self.container) == bool(self.model)
        for node in range(24):
            assert (node in self.container) == (node in self.model)

    @invariant()
    def same_order(self):
        assert list(self.container.iter_descending()) == self._descending()
        if self.model:
            assert self.container.peek_best() == self._descending()[0]
        else:
            with pytest.raises(KeyError):
                self.container.peek_best()


class BucketContainerMachine(RuleBasedStateMachine):
    """BucketGainContainer vs. per-gain LIFO lists.

    The model's bucket lists mirror the linked-list discipline exactly:
    insertion prepends, so iteration and best-pick follow most-recently-
    inserted-first within a gain.
    """

    CAPACITY, MAX_GAIN = 24, 6

    def __init__(self):
        super().__init__()
        self.container = BucketGainContainer(self.CAPACITY, self.MAX_GAIN)
        self.gains = {}
        self.buckets = {}  # gain -> [node, ...] front first

    def _descending(self):
        out = []
        for g in sorted(self.buckets, reverse=True):
            out.extend((n, g) for n in self.buckets[g])
        return out

    def _model_insert(self, node, gain):
        self.gains[node] = gain
        self.buckets.setdefault(gain, []).insert(0, node)

    def _model_remove(self, node):
        gain = self.gains.pop(node)
        self.buckets[gain].remove(node)
        if not self.buckets[gain]:
            del self.buckets[gain]
        return gain

    @rule(node=NODES, gain=INT_GAINS)
    def insert(self, node, gain):
        if node in self.gains:
            with pytest.raises(KeyError):
                self.container.insert(node, gain)
        else:
            self.container.insert(node, gain)
            self._model_insert(node, gain)

    @rule(node=NODES)
    def remove(self, node):
        if node not in self.gains:
            with pytest.raises(KeyError):
                self.container.remove(node)
        else:
            assert self.container.remove(node) == self._model_remove(node)

    @precondition(lambda self: self.gains)
    @rule(data=st.data(), gain=INT_GAINS)
    def update_present(self, data, gain):
        node = data.draw(st.sampled_from(sorted(self.gains)))
        self.container.update(node, gain)
        self._model_remove(node)
        self._model_insert(node, gain)

    @precondition(lambda self: self.gains)
    @rule(data=st.data(), delta=st.integers(min_value=-3, max_value=3))
    def adjust_present(self, data, delta):
        node = data.draw(st.sampled_from(sorted(self.gains)))
        new_gain = self.gains[node] + delta
        if abs(new_gain) > self.MAX_GAIN:
            with pytest.raises(ValueError):
                self.container.adjust(node, delta)
            # the failed adjust must not have lost the node
            assert self.container.gain_of(node) == self.gains[node]
        else:
            self.container.adjust(node, delta)
            if delta:
                self._model_remove(node)
                self._model_insert(node, new_gain)

    @rule(node=NODES)
    def gain_of(self, node):
        if node not in self.gains:
            with pytest.raises(KeyError):
                self.container.gain_of(node)
        else:
            assert self.container.gain_of(node) == self.gains[node]

    @invariant()
    def same_size_and_membership(self):
        assert len(self.container) == len(self.gains)
        for node in range(self.CAPACITY):
            assert (node in self.container) == (node in self.gains)

    @invariant()
    def same_order(self):
        assert list(self.container.iter_descending()) == self._descending()
        if self.gains:
            assert self.container.peek_best() == self._descending()[0]
        else:
            with pytest.raises(KeyError):
                self.container.peek_best()

    @invariant()
    def internal_linkage_sound(self):
        self.container._buckets.check_invariants()


TestTreeContainerModel = TreeContainerMachine.TestCase
TestTreeContainerModel.settings = COMMON_SETTINGS
TestBucketContainerModel = BucketContainerMachine.TestCase
TestBucketContainerModel.settings = COMMON_SETTINGS


class TestContainerEquivalence:
    """The two containers agree wherever both are defined (integer gains).

    Tie order may differ (documented), so equality is on the multiset of
    (node, gain) pairs and on the best *gain*, not the best node.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_same_contents_after_random_ops(self, seed):
        import random

        rng = random.Random(seed)
        tree, bucket = TreeGainContainer(), BucketGainContainer(24, 6)
        present = set()
        for _ in range(300):
            op = rng.random()
            if op < 0.5 or not present:
                node = rng.randrange(24)
                if node in present:
                    continue
                gain = rng.randint(-6, 6)
                tree.insert(node, gain)
                bucket.insert(node, gain)
                present.add(node)
            elif op < 0.75:
                node = rng.choice(sorted(present))
                gain = rng.randint(-6, 6)
                tree.update(node, gain)
                bucket.update(node, gain)
            else:
                node = rng.choice(sorted(present))
                assert tree.remove(node) == bucket.remove(node)
                present.remove(node)
            assert sorted(tree.iter_descending()) == sorted(
                bucket.iter_descending()
            )
            if present:
                assert tree.peek_best()[1] == bucket.peek_best()[1]
