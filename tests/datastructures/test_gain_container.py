"""Tests for the uniform gain-container interface (tree and bucket)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import BucketGainContainer, TreeGainContainer


def make_tree():
    return TreeGainContainer()


def make_bucket():
    return BucketGainContainer(capacity=64, max_gain=10)


@pytest.fixture(params=["tree", "bucket"])
def container(request):
    return make_tree() if request.param == "tree" else make_bucket()


class TestCommonInterface:
    def test_empty(self, container):
        assert len(container) == 0
        assert not container
        assert 3 not in container
        with pytest.raises(KeyError):
            container.peek_best()

    def test_insert_peek_remove(self, container):
        container.insert(1, 5)
        container.insert(2, -3)
        assert container.peek_best() == (1, 5)
        assert container.gain_of(2) == -3
        assert container.remove(1) == 5
        assert container.peek_best() == (2, -3)

    def test_update(self, container):
        container.insert(1, 0)
        container.insert(2, 1)
        container.update(1, 9)
        assert container.peek_best() == (1, 9)

    def test_double_insert_rejected(self, container):
        container.insert(1, 0)
        with pytest.raises(KeyError):
            container.insert(1, 2)

    def test_remove_missing_rejected(self, container):
        with pytest.raises(KeyError):
            container.remove(42)

    def test_top_k(self, container):
        for node, gain in [(0, 5), (1, 7), (2, -1), (3, 7)]:
            container.insert(node, gain)
        top2 = container.top(2)
        assert len(top2) == 2
        assert all(g == 7 for _, g in top2)
        assert len(container.top(99)) == 4

    def test_top_zero_is_empty(self, container):
        # Regression: top(0) used to return one item (the break fired
        # only after the first append).
        container.insert(1, 5)
        assert container.top(0) == []

    def test_iter_descending_sorted(self, container):
        for node, gain in [(0, 3), (1, -2), (2, 8), (3, 0)]:
            container.insert(node, gain)
        gains = [g for _, g in container.iter_descending()]
        assert gains == sorted(gains, reverse=True)


class TestTreeSpecific:
    def test_float_gains(self):
        c = make_tree()
        c.insert(0, 1.25)
        c.insert(1, 1.5)
        assert c.peek_best() == (1, 1.5)

    def test_vector_gains(self):
        """LA uses lexicographic tuples as gains."""
        c = make_tree()
        c.insert(0, (2, 0, 0))
        c.insert(1, (2, 0, 1))
        c.insert(2, (1, 9, 9))
        assert c.peek_best() == (1, (2, 0, 1))

    def test_tie_break_prefers_higher_node(self):
        c = make_tree()
        c.insert(3, 1.0)
        c.insert(7, 1.0)
        assert c.peek_best() == (7, 1.0)


class TestBucketSpecific:
    def test_adjust(self):
        c = make_bucket()
        c.insert(0, 1)
        c.adjust(0, 3)
        assert c.gain_of(0) == 4

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(-10, 10)),
                    min_size=1, max_size=80))
    @settings(max_examples=40)
    def test_tree_and_bucket_agree_on_best_gain(self, traffic):
        """Same traffic into both containers -> same best gain value."""
        tree, bucket = make_tree(), BucketGainContainer(31, 10)
        state = {}
        for node, gain in traffic:
            if node in state:
                tree.update(node, gain)
                bucket.update(node, gain)
            else:
                tree.insert(node, gain)
                bucket.insert(node, gain)
            state[node] = gain
        assert tree.peek_best()[1] == bucket.peek_best()[1] == max(state.values())
