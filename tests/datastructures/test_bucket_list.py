"""Unit + property tests for the FM gain bucket structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import BucketList


class TestBasics:
    def test_construction_validated(self):
        with pytest.raises(ValueError):
            BucketList(0, 5)
        with pytest.raises(ValueError):
            BucketList(5, -1)

    def test_empty(self):
        b = BucketList(4, 3)
        assert len(b) == 0
        assert not b
        assert 0 not in b
        with pytest.raises(KeyError):
            b.peek_best()
        with pytest.raises(KeyError):
            b.remove(0)
        with pytest.raises(KeyError):
            b.gain_of(0)

    def test_insert_peek(self):
        b = BucketList(4, 3)
        b.insert(0, 1)
        b.insert(1, -2)
        b.insert(2, 3)
        assert b.peek_best() == (2, 3)
        assert b.gain_of(1) == -2
        assert len(b) == 3

    def test_lifo_within_bucket(self):
        b = BucketList(4, 3)
        b.insert(0, 2)
        b.insert(1, 2)
        assert b.peek_best() == (1, 2)  # most recent first

    def test_gain_out_of_range(self):
        b = BucketList(4, 3)
        with pytest.raises(ValueError, match="bucket range"):
            b.insert(0, 4)

    def test_update_out_of_range_keeps_node(self):
        # Regression: update() used to remove the node before the range
        # check, so a failed update/adjust silently dropped it.
        b = BucketList(4, 3)
        b.insert(0, 3)
        with pytest.raises(ValueError, match="bucket range"):
            b.update(0, 4)
        assert b.gain_of(0) == 3
        with pytest.raises(ValueError, match="bucket range"):
            b.adjust(0, 1)
        assert b.gain_of(0) == 3
        b.check_invariants()

    def test_node_out_of_range(self):
        b = BucketList(4, 3)
        with pytest.raises(KeyError):
            b.insert(9, 0)

    def test_double_insert_rejected(self):
        b = BucketList(4, 3)
        b.insert(0, 1)
        with pytest.raises(KeyError, match="already"):
            b.insert(0, 2)

    def test_remove_updates_best(self):
        b = BucketList(4, 3)
        b.insert(0, 3)
        b.insert(1, 1)
        assert b.remove(0) == 3
        assert b.peek_best() == (1, 1)
        b.check_invariants()

    def test_remove_middle_of_chain(self):
        b = BucketList(5, 3)
        for v in (0, 1, 2):
            b.insert(v, 2)
        b.remove(1)
        b.check_invariants()
        assert sorted(v for v, _ in b.iter_descending()) == [0, 2]

    def test_update_moves_bucket(self):
        b = BucketList(4, 3)
        b.insert(0, 0)
        b.update(0, 3)
        assert b.peek_best() == (0, 3)
        b.check_invariants()

    def test_adjust(self):
        b = BucketList(4, 3)
        b.insert(0, 1)
        b.adjust(0, -2)
        assert b.gain_of(0) == -1
        b.adjust(0, 0)  # no-op
        assert b.gain_of(0) == -1

    def test_iter_descending_order(self):
        b = BucketList(6, 3)
        gains = {0: 2, 1: -1, 2: 3, 3: 0, 4: 3}
        for v, g in gains.items():
            b.insert(v, g)
        seq = [g for _, g in b.iter_descending()]
        assert seq == sorted(seq, reverse=True)
        assert len(seq) == 5


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(-6, 6)), min_size=1
        ),
        st.lists(st.integers(0, 19)),
    )
    @settings(max_examples=60)
    def test_matches_dict_reference(self, inserts, removes):
        """Arbitrary insert/update/remove traffic tracks a reference dict."""
        b = BucketList(20, 6)
        reference = {}
        for node, gain in inserts:
            if node in reference:
                b.update(node, gain)
            else:
                b.insert(node, gain)
            reference[node] = gain
        for node in removes:
            if node in reference:
                assert b.remove(node) == reference.pop(node)
        b.check_invariants()
        assert len(b) == len(reference)
        if reference:
            node, gain = b.peek_best()
            assert gain == max(reference.values())
            assert reference[node] == gain
        listed = dict(b.iter_descending())
        assert listed == reference
