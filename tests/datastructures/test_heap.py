"""AddressablePriorityQueue: the n-level coarsener's rating queue.

The coarsening determinism contract rests on one property checked here
exhaustively: the pop order is the total order on ``(-priority, item)``
tuples of the *live* entries, regardless of the push/update/discard
history that produced them.
"""

import itertools
import random

from repro.datastructures import AddressablePriorityQueue


def test_pop_orders_by_priority_then_item():
    pq = AddressablePriorityQueue()
    pq.push(3, 1.0)
    pq.push(1, 2.0)
    pq.push(2, 2.0)
    assert pq.pop()[:2] == (1, 2.0)  # ties -> smaller item first
    assert pq.pop()[:2] == (2, 2.0)
    assert pq.pop()[:2] == (3, 1.0)
    assert pq.pop() is None


def test_update_supersedes_old_priority():
    pq = AddressablePriorityQueue()
    pq.push(7, 1.0)
    pq.push(8, 5.0)
    pq.push(7, 9.0)  # raise
    assert pq.pop()[0] == 7
    pq.push(8, 0.5)  # lower (stale 5.0 entry must be skipped)
    assert pq.pop()[:2] == (8, 0.5)
    assert len(pq) == 0


def test_payload_travels_with_entry():
    pq = AddressablePriorityQueue()
    pq.push(1, 1.0, payload="a")
    pq.push(1, 2.0, payload="b")
    assert pq.payload(1) == "b"
    item, priority, payload = pq.pop()
    assert (item, priority, payload) == (1, 2.0, "b")


def test_discard_and_membership():
    pq = AddressablePriorityQueue()
    pq.push(4, 1.0)
    pq.push(5, 2.0)
    assert 4 in pq and 5 in pq
    pq.discard(4)
    assert 4 not in pq
    assert len(pq) == 1
    assert pq.pop()[0] == 5
    assert pq.pop() is None
    pq.discard(99)  # absent: no-op


def test_peek_does_not_remove():
    pq = AddressablePriorityQueue()
    pq.push(2, 3.0, payload=9)
    assert pq.peek()[:2] == (2, 3.0)
    assert len(pq) == 1
    assert pq.priority(2) == 3.0


def test_identical_repush_is_noop():
    pq = AddressablePriorityQueue()
    pq.push(1, 1.5, payload="x")
    pq.push(1, 1.5, payload="x")
    assert len(pq) == 1
    assert pq.pop()[:2] == (1, 1.5)
    assert pq.pop() is None


def test_pop_order_is_history_independent():
    """Any sequence of pushes/updates/discards ending in the same live
    set pops in the same order — the resume-determinism foundation."""
    rng = random.Random(9)
    for _ in range(50):
        items = list(range(10))
        final = {}
        pq = AddressablePriorityQueue()
        for _ in range(60):
            op = rng.random()
            item = rng.choice(items)
            if op < 0.7:
                prio = rng.choice([0.5, 1.0, 1.5, 2.0])
                pq.push(item, prio, payload=item * 2)
                final[item] = prio
            else:
                pq.discard(item)
                final.pop(item, None)
        expected = sorted(final.items(), key=lambda kv: (-kv[1], kv[0]))
        got = []
        while True:
            entry = pq.pop()
            if entry is None:
                break
            got.append((entry[0], entry[1]))
        assert got == expected


def test_interleaved_exhaustive_small():
    """Every permutation of a small op sequence yields sorted pops."""
    ops = [(0, 1.0), (1, 3.0), (2, 2.0), (0, 4.0)]
    for perm in itertools.permutations(ops):
        pq = AddressablePriorityQueue()
        final = {}
        for item, prio in perm:
            pq.push(item, prio)
            final[item] = prio
        expected = sorted(final.items(), key=lambda kv: (-kv[1], kv[0]))
        got = []
        while len(pq):
            item, prio, _ = pq.pop()
            got.append((item, prio))
        assert got == expected
