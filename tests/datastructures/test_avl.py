"""Unit + property tests for the AVL tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures import AVLTree


class TestBasics:
    def test_empty(self):
        t = AVLTree()
        assert len(t) == 0
        assert not t
        assert 5 not in t
        with pytest.raises(KeyError):
            t.max_item()
        with pytest.raises(KeyError):
            t.min_item()
        with pytest.raises(KeyError):
            t.remove(5)

    def test_insert_find(self):
        t = AVLTree()
        t.insert(3, "a")
        t.insert(1, "b")
        t.insert(2, "c")
        assert t.find(1) == "b"
        assert t.find(99, default="missing") == "missing"
        assert 2 in t
        assert len(t) == 3

    def test_duplicate_insert_rejected(self):
        t = AVLTree()
        t.insert(1)
        with pytest.raises(KeyError, match="duplicate"):
            t.insert(1)

    def test_max_min(self):
        t = AVLTree()
        for k in [5, 1, 9, 3]:
            t.insert(k, k * 10)
        assert t.max_item() == (9, 90)
        assert t.min_item() == (1, 10)

    def test_remove_returns_value(self):
        t = AVLTree()
        t.insert(1, "x")
        assert t.remove(1) == "x"
        assert len(t) == 0

    def test_remove_node_with_two_children(self):
        t = AVLTree()
        for k in [5, 2, 8, 1, 3, 7, 9]:
            t.insert(k)
        t.remove(5)  # root with two children
        assert sorted(k for k, _ in t.iter_ascending()) == [1, 2, 3, 7, 8, 9]
        t.check_invariants()

    def test_iter_orders(self):
        t = AVLTree()
        for k in [4, 2, 6, 1, 3]:
            t.insert(k)
        assert [k for k, _ in t.iter_ascending()] == [1, 2, 3, 4, 6]
        assert [k for k, _ in t.iter_descending()] == [6, 4, 3, 2, 1]

    def test_tuple_keys(self):
        """Gain containers use (gain, node) tuples — must order correctly."""
        t = AVLTree()
        t.insert((1.5, 3))
        t.insert((1.5, 7))
        t.insert((-2.0, 1))
        assert t.max_item()[0] == (1.5, 7)
        assert t.min_item()[0] == (-2.0, 1)

    def test_sequential_inserts_stay_balanced(self):
        """Ascending inserts are the classic worst case for plain BSTs."""
        t = AVLTree()
        for k in range(1000):
            t.insert(k)
        t.check_invariants()
        # height must be O(log n): AVL bound is 1.44 log2(n+2)
        assert t._root.height <= 15


class TestProperties:
    @given(st.lists(st.integers(-1000, 1000), unique=True))
    def test_matches_sorted_reference(self, keys):
        t = AVLTree()
        for k in keys:
            t.insert(k)
        t.check_invariants()
        assert [k for k, _ in t.iter_ascending()] == sorted(keys)

    @given(
        st.lists(st.integers(0, 50), min_size=1),
        st.lists(st.integers(0, 50)),
    )
    @settings(max_examples=60)
    def test_insert_remove_interleaved(self, inserts, removes):
        """Arbitrary insert/remove sequences track a reference set."""
        t = AVLTree()
        reference = set()
        for k in inserts:
            if k not in reference:
                t.insert(k)
                reference.add(k)
        for k in removes:
            if k in reference:
                assert t.remove(k) is None  # default value
                reference.remove(k)
            else:
                with pytest.raises(KeyError):
                    t.remove(k)
        t.check_invariants()
        assert len(t) == len(reference)
        assert [k for k, _ in t.iter_ascending()] == sorted(reference)
        if reference:
            assert t.max_item()[0] == max(reference)
            assert t.min_item()[0] == min(reference)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                    unique=True, min_size=1))
    @settings(max_examples=40)
    def test_float_keys(self, keys):
        t = AVLTree()
        for k in keys:
            t.insert(k)
        t.check_invariants()
        assert t.max_item()[0] == max(keys)
