"""Tests for the two Sec. 3.4 update strategies (recompute vs cached)."""

import pytest

from repro.core import PropConfig, PropPartitioner
from repro.core.gains import ProbabilisticGainEngine
from repro.hypergraph import hierarchical_circuit
from repro.multirun import run_many
from repro.partition import Partition, cut_cost, random_balanced_sides


class TestConfig:
    def test_strategies_accepted(self):
        PropConfig(update_strategy="recompute")
        PropConfig(update_strategy="cached")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="update_strategy"):
            PropConfig(update_strategy="psychic")

    def test_describe_includes_strategy(self):
        assert PropConfig().describe()["update_strategy"] == "recompute"


class TestContributionPrimitives:
    @pytest.fixture
    def engine(self):
        graph = hierarchical_circuit(60, 66, 240, seed=3)
        partition = Partition(graph, random_balanced_sides(graph, 1))
        engine = ProbabilisticGainEngine(partition)
        engine.fill(0.7)
        return engine

    def test_net_pin_contributions_match_net_gain(self, engine):
        graph = engine.partition.graph
        for net_id in range(graph.num_nets):
            per_pin = engine.net_pin_contributions(net_id)
            for pin, contribution in per_pin.items():
                assert contribution == pytest.approx(
                    engine.net_gain(pin, net_id), abs=1e-12
                )

    def test_contributions_sum_to_node_gain(self, engine):
        graph = engine.partition.graph
        for node in range(graph.num_nodes):
            entry = engine.contributions_for(node)
            assert sum(entry.values()) == pytest.approx(
                engine.node_gain(node), abs=1e-12
            )

    def test_all_contributions_matches_per_node(self, engine):
        graph = engine.partition.graph
        bulk = engine.all_contributions()
        for node in range(graph.num_nodes):
            expected = engine.contributions_for(node)
            assert set(bulk[node]) == set(expected)
            for net_id, c in expected.items():
                assert bulk[node][net_id] == pytest.approx(c, abs=1e-12)

    def test_locked_pins_excluded(self, engine):
        partition = engine.partition
        graph = partition.graph
        node = 0
        partition.move_and_lock(node)
        engine.on_lock(node)
        for net_id in graph.node_nets(node):
            assert node not in engine.net_pin_contributions(net_id)
        assert engine.all_contributions()[node] == {}


class TestCachedStrategyEndToEnd:
    @pytest.fixture
    def circuit(self):
        return hierarchical_circuit(250, 265, 960, seed=7)

    def test_valid_results(self, circuit):
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(circuit, seed=0)
        result.verify(circuit)
        assert cut_cost(circuit, result.sides) == result.cut

    def test_quality_parity_with_recompute(self, circuit):
        """The strategies differ only in which second-order staleness
        survives until the top-k repair; best-of-N quality must land in
        the same band."""
        rec = run_many(
            PropPartitioner(PropConfig(update_strategy="recompute")),
            circuit, runs=4,
        )
        cac = run_many(
            PropPartitioner(PropConfig(update_strategy="cached")),
            circuit, runs=4,
        )
        assert cac.best_cut <= rec.best_cut * 1.2
        assert rec.best_cut <= cac.best_cut * 1.2

    def test_deterministic(self, circuit):
        cfg = PropConfig(update_strategy="cached")
        a = PropPartitioner(cfg).partition(circuit, seed=3)
        b = PropPartitioner(cfg).partition(circuit, seed=3)
        assert a.sides == b.sides

    def test_improves_initial(self, circuit):
        initial = random_balanced_sides(circuit, 2)
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(circuit, initial_sides=initial)
        assert result.cut < cut_cost(circuit, initial) * 0.7

    def test_weighted_nets(self, circuit):
        weighted = circuit.with_net_costs(
            [1.0 + (i % 3) for i in range(circuit.num_nets)]
        )
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(weighted, seed=1)
        result.verify(weighted)
