"""Tests for the two Sec. 3.4 update strategies (recompute vs cached)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PropConfig, PropPartitioner
from repro.core.engine import run_prop
from repro.core.gains import ProbabilisticGainEngine
from repro.hypergraph import hierarchical_circuit
from repro.multirun import run_many
from repro.partition import (
    BalanceConstraint,
    Partition,
    cut_cost,
    random_balanced_sides,
)
from repro.telemetry import MemoryRecorder
from repro.testing import strategies


class TestConfig:
    def test_strategies_accepted(self):
        PropConfig(update_strategy="recompute")
        PropConfig(update_strategy="cached")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="update_strategy"):
            PropConfig(update_strategy="psychic")

    def test_describe_includes_strategy(self):
        assert PropConfig().describe()["update_strategy"] == "recompute"


class TestContributionPrimitives:
    @pytest.fixture
    def engine(self):
        graph = hierarchical_circuit(60, 66, 240, seed=3)
        partition = Partition(graph, random_balanced_sides(graph, 1))
        engine = ProbabilisticGainEngine(partition)
        engine.fill(0.7)
        return engine

    def test_net_pin_contributions_match_net_gain(self, engine):
        graph = engine.partition.graph
        for net_id in range(graph.num_nets):
            per_pin = engine.net_pin_contributions(net_id)
            for pin, contribution in per_pin.items():
                assert contribution == pytest.approx(
                    engine.net_gain(pin, net_id), abs=1e-12
                )

    def test_contributions_sum_to_node_gain(self, engine):
        graph = engine.partition.graph
        for node in range(graph.num_nodes):
            entry = engine.contributions_for(node)
            assert sum(entry.values()) == pytest.approx(
                engine.node_gain(node), abs=1e-12
            )

    def test_all_contributions_matches_per_node(self, engine):
        graph = engine.partition.graph
        bulk = engine.all_contributions()
        for node in range(graph.num_nodes):
            expected = engine.contributions_for(node)
            assert set(bulk[node]) == set(expected)
            for net_id, c in expected.items():
                assert bulk[node][net_id] == pytest.approx(c, abs=1e-12)

    def test_locked_pins_excluded(self, engine):
        partition = engine.partition
        graph = partition.graph
        node = 0
        partition.move_and_lock(node)
        engine.on_lock(node)
        for net_id in graph.node_nets(node):
            assert node not in engine.net_pin_contributions(net_id)
        assert engine.all_contributions()[node] == {}


class TestCachedStrategyEndToEnd:
    @pytest.fixture
    def circuit(self):
        return hierarchical_circuit(250, 265, 960, seed=7)

    def test_valid_results(self, circuit):
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(circuit, seed=0)
        result.verify(circuit)
        assert cut_cost(circuit, result.sides) == result.cut

    def test_quality_parity_with_recompute(self, circuit):
        """The strategies differ only in which second-order staleness
        survives until the top-k repair; best-of-N quality must land in
        the same band."""
        rec = run_many(
            PropPartitioner(PropConfig(update_strategy="recompute")),
            circuit, runs=4,
        )
        cac = run_many(
            PropPartitioner(PropConfig(update_strategy="cached")),
            circuit, runs=4,
        )
        assert cac.best_cut <= rec.best_cut * 1.2
        assert rec.best_cut <= cac.best_cut * 1.2

    def test_deterministic(self, circuit):
        cfg = PropConfig(update_strategy="cached")
        a = PropPartitioner(cfg).partition(circuit, seed=3)
        b = PropPartitioner(cfg).partition(circuit, seed=3)
        assert a.sides == b.sides

    def test_improves_initial(self, circuit):
        initial = random_balanced_sides(circuit, 2)
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(circuit, initial_sides=initial)
        assert result.cut < cut_cost(circuit, initial) * 0.7

    def test_weighted_nets(self, circuit):
        weighted = circuit.with_net_costs(
            [1.0 + (i % 3) for i in range(circuit.num_nets)]
        )
        result = PropPartitioner(
            PropConfig(update_strategy="cached")
        ).partition(weighted, seed=1)
        result.verify(weighted)


class TestCachedRecomputeParity:
    """Hypothesis: with in-pass probability re-derivation disabled the two
    update strategies are trajectory-identical (see
    ``repro.audit.differential.differential_prop_strategies``): the cached
    Eqn. 5/6 contribution deltas must reproduce the recomputed gains
    exactly, so the move sequences and final cuts must match move-for-move.
    This drives ``_update_neighbors_cached`` / ``_update_top_ranked_cached``
    against the recompute path on random instances via the telemetry
    per-move event stream."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_identical_move_sequences_and_cuts(self, data):
        graph, sides = data.draw(
            strategies.graphs_with_sides(
                min_nodes=4, max_nodes=14, balanced=True
            )
        )
        balance = BalanceConstraint.fifty_fifty(graph)
        trajectories = {}
        for strategy in ("recompute", "cached"):
            rec = MemoryRecorder()
            config = PropConfig(
                update_strategy=strategy,
                update_neighbor_probabilities=False,
                max_passes=4,
            )
            result = run_prop(
                graph, sides, balance, config=config, seed=0, recorder=rec
            )
            trajectories[strategy] = (
                [(m.pass_index, m.node, m.from_side, m.immediate_gain)
                 for m in rec.moves],
                result.cut,
                result.sides,
            )
        assert trajectories["recompute"] == trajectories["cached"]
