"""Tests for the gain → probability maps (paper Sec. 3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PropConfig, make_probability_fn
from repro.core.probability import LinearProbabilityMap, SigmoidProbabilityMap


class TestLinearMap:
    def test_paper_parameters(self):
        """With Sec. 4 params: g >= 1 -> 0.95, g <= -1 -> 0.4, 0 -> midpoint."""
        f = LinearProbabilityMap(pmin=0.4, pmax=0.95, glo=-1.0, gup=1.0)
        assert f(1.0) == 0.95
        assert f(5.0) == 0.95
        assert f(-1.0) == 0.4
        assert f(-9.0) == 0.4
        assert f(0.0) == pytest.approx(0.675)

    def test_figure1_map(self):
        """The Figure-1 map p = clip(0.5 + 0.3 g, 0, 1)."""
        f = LinearProbabilityMap(pmin=0.0, pmax=1.0, glo=-5 / 3, gup=5 / 3)
        assert f(2.0) == 1.0
        assert f(1.0) == pytest.approx(0.8)
        assert f(-1.0) == pytest.approx(0.2)
        assert f(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearProbabilityMap(0.9, 0.5, -1, 1)
        with pytest.raises(ValueError):
            LinearProbabilityMap(0.1, 0.9, 1, 1)
        with pytest.raises(ValueError):
            LinearProbabilityMap(-0.1, 0.9, -1, 1)

    @given(st.floats(-100, 100))
    def test_bounded_and_monotone(self, g):
        f = LinearProbabilityMap(0.4, 0.95, -1, 1)
        assert 0.4 <= f(g) <= 0.95
        assert f(g) <= f(g + 0.5) + 1e-12


class TestSigmoidMap:
    def test_saturation_at_thresholds(self):
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert f(1.0) == 0.95
        assert f(-1.0) == 0.4
        assert f(3.0) == 0.95

    def test_midpoint(self):
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert f(0.0) == pytest.approx((0.4 + 0.95) / 2, abs=0.01)

    @given(st.floats(-50, 50))
    def test_bounded_and_monotone(self, g):
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert 0.4 <= f(g) <= 0.95
        assert f(g) <= f(g + 0.5) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            SigmoidProbabilityMap(0.9, 0.5, -1, 1)
        with pytest.raises(ValueError):
            SigmoidProbabilityMap(0.1, 0.9, 2, 1)

    def test_continuous_at_thresholds(self):
        """Regression: the raw logistic only reaches sigma(+-4) ~ 0.982 /
        0.018 at glo/gup, so the clamped map used to jump ~1.8% of the
        probability range there.  The renormalized map must approach pmin
        and pmax continuously."""
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        eps = 1e-9
        assert f(1.0 - eps) == pytest.approx(0.95, abs=1e-6)
        assert f(-1.0 + eps) == pytest.approx(0.4, abs=1e-6)

    def test_exact_midpoint(self):
        """Renormalization is symmetric: the midpoint is exact, not approximate."""
        f = SigmoidProbabilityMap(0.4, 0.95, -1.0, 1.0)
        assert f(0.0) == pytest.approx((0.4 + 0.95) / 2, abs=1e-12)

    @given(
        st.floats(0.0, 0.45),
        st.floats(0.55, 1.0),
        st.floats(-10.0, -0.1),
        st.floats(0.1, 10.0),
        st.floats(-12.0, 12.0),
        st.floats(0.0, 1.0),
    )
    def test_continuity_and_monotonicity_everywhere(
        self, pmin, pmax, glo, gup, g, step
    ):
        """Property: both maps are monotone in g and (locally) continuous —
        nearby gains map to nearby probabilities, including across the
        glo/gup thresholds."""
        for map_cls in (LinearProbabilityMap, SigmoidProbabilityMap):
            f = map_cls(pmin, pmax, glo, gup)
            assert pmin <= f(g) <= pmax
            assert f(g) <= f(g + step) + 1e-12
            # Lipschitz-style continuity bound: the renormalized sigmoid's
            # steepest slope is scale/4/span of the range; the linear map's
            # is its slope.  Both are <= ~2.2 * (pmax-pmin)/(gup-glo).
            lip = 2.2 * (pmax - pmin) / (gup - glo)
            assert abs(f(g + step) - f(g)) <= lip * step + 1e-9


class TestFactory:
    def test_linear_selected(self):
        f = make_probability_fn(PropConfig(probability_function="linear"))
        assert isinstance(f, LinearProbabilityMap)

    def test_sigmoid_selected(self):
        f = make_probability_fn(PropConfig(probability_function="sigmoid"))
        assert isinstance(f, SigmoidProbabilityMap)

    def test_config_params_threaded(self):
        cfg = PropConfig(pmin=0.5, pmax=0.9, glo=-2.0, gup=2.0)
        f = make_probability_fn(cfg)
        assert f(-5.0) == 0.5
        assert f(5.0) == 0.9
