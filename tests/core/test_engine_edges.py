"""Edge-case tests for the PROP engine not covered elsewhere."""

import pytest

from repro.core import PropConfig, PropPartitioner, run_prop
from repro.hypergraph import Hypergraph, hierarchical_circuit, star_circuit
from repro.partition import BalanceConstraint, cut_cost


class TestDegenerateInputs:
    def test_graph_with_isolated_nodes(self):
        """Isolated nodes carry zero gain everywhere but still count for
        balance; PROP must place them without blowing up."""
        graph = Hypergraph([[0, 1], [1, 2], [2, 3]], num_nodes=10)
        result = PropPartitioner().partition(graph, seed=0)
        result.verify(graph)
        assert abs(result.sides.count(0) - 5) <= 1

    def test_single_net_star(self):
        """One hyperedge over everything: any balanced split cuts it; the
        cut must be exactly 1, never more."""
        graph = star_circuit(11, as_single_net=True)
        result = PropPartitioner().partition(graph, seed=0)
        assert result.cut == 1.0

    def test_two_nodes_exact_bisection(self):
        """Under exact bisection the single net is unavoidably cut.  (The
        default 50-50 criterion has ±1-node slack, which on a 2-node graph
        legitimately permits collapsing to one side for cut 0.)"""
        graph = Hypergraph([[0, 1]])
        balance = BalanceConstraint.from_fractions(graph, 0.5, 0.5)
        result = PropPartitioner().partition(graph, balance=balance, seed=0)
        assert result.cut == 1.0
        assert sorted(result.sides) == [0, 1]

    def test_two_nodes_default_slack_collapses(self):
        graph = Hypergraph([[0, 1]])
        result = PropPartitioner().partition(graph, seed=0)
        assert result.cut == 0.0  # slack of one node makes this feasible

    def test_all_single_pin_nets(self):
        graph = Hypergraph([[0], [1], [2], [3]])
        result = PropPartitioner().partition(graph, seed=0)
        assert result.cut == 0.0

    def test_zero_cost_nets_ignored_in_objective(self):
        graph = Hypergraph(
            [[0, 1], [2, 3], [0, 2], [1, 3]],
            net_costs=[1.0, 1.0, 0.0, 0.0],
        )
        result = PropPartitioner().partition(graph, seed=0)
        # the two free nets make {0,1} vs {2,3} a zero-cost bisection
        assert result.cut == 0.0


class TestConfigEdges:
    def test_min_pass_gain_stops_marginal_improvement(self, medium_circuit):
        """An absurdly high min_pass_gain ends the run after one pass."""
        cfg = PropConfig(min_pass_gain=1e9)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=0)
        assert result.passes == 1

    def test_tight_custom_balance(self, medium_circuit):
        balance = BalanceConstraint.from_fractions(
            medium_circuit, 0.49, 0.51
        )
        result = PropPartitioner().partition(
            medium_circuit, balance=balance, seed=0
        )
        n1 = sum(result.sides)
        n = medium_circuit.num_nodes
        assert 0.49 * n - 1 <= n1 <= 0.51 * n + 1

    def test_pmax_one_allowed(self, medium_circuit):
        """Footnote 3: pmax = 1 'is not unreasonable'."""
        cfg = PropConfig(pmax=1.0, pinit=1.0)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=0)
        result.verify(medium_circuit)

    def test_extreme_thresholds(self, medium_circuit):
        cfg = PropConfig(gup=10.0, glo=-10.0)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=0)
        result.verify(medium_circuit)


class TestRunPropDirect:
    def test_initial_sides_validated_by_partition(self, medium_circuit):
        balance = BalanceConstraint.fifty_fifty(medium_circuit)
        with pytest.raises(ValueError):
            run_prop(medium_circuit, [0, 1], balance)  # wrong length

    def test_custom_seed_recorded(self, medium_circuit):
        balance = BalanceConstraint.fifty_fifty(medium_circuit)
        from repro.partition import random_balanced_sides

        result = run_prop(
            medium_circuit,
            random_balanced_sides(medium_circuit, 3),
            balance,
            seed=1234,
        )
        assert result.seed == 1234

    def test_prop_on_fully_disconnected(self):
        """No nets at all: any balanced assignment is optimal (cut 0)."""
        graph = Hypergraph([], num_nodes=8)
        result = PropPartitioner().partition(graph, seed=0)
        assert result.cut == 0.0
        assert result.sides.count(0) == 4
