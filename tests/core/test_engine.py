"""Integration tests for the PROP engine (paper Fig. 2)."""

import pytest

from repro.core import PropConfig, PropPartitioner, prop_bisect, run_prop
from repro.hypergraph import hierarchical_circuit, planted_bisection
from repro.partition import (
    BalanceConstraint,
    Partition,
    balance_ratio,
    cut_cost,
    random_balanced_sides,
)


class TestBasicBehaviour:
    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = PropPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut < before * 0.7
        result.verify(medium_circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        result = PropPartitioner().partition(graph, seed=0)
        assert result.cut <= crossing + 2

    def test_respects_5050_balance(self, medium_circuit):
        result = PropPartitioner().partition(medium_circuit, seed=1)
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            1.5 / medium_circuit.num_nodes
        )

    def test_respects_4555_balance(self, medium_circuit):
        balance = BalanceConstraint.forty_five_fifty_five(medium_circuit)
        result = PropPartitioner().partition(
            medium_circuit, balance=balance, seed=1
        )
        assert balance_ratio(medium_circuit, result.sides) <= 0.55 + 1e-9

    def test_deterministic_given_seed(self, medium_circuit):
        a = PropPartitioner().partition(medium_circuit, seed=9)
        b = PropPartitioner().partition(medium_circuit, seed=9)
        assert a.sides == b.sides
        assert a.cut == b.cut

    def test_different_seeds_explore(self, medium_circuit):
        cuts = {
            PropPartitioner().partition(medium_circuit, seed=s).cut
            for s in range(6)
        }
        assert len(cuts) > 1  # run-to-run variety exists

    def test_result_metadata(self, medium_circuit):
        result = PropPartitioner().partition(medium_circuit, seed=4)
        assert result.algorithm == "PROP"
        assert result.seed == 4
        assert result.passes >= 1
        assert result.runtime_seconds > 0
        assert result.stats["tentative_moves"] > 0

    def test_passes_match_paper_range(self, medium_circuit):
        """Sec. 2: local minima typically reached in 2–4 passes (we allow a
        little slack — the bound is empirical)."""
        result = PropPartitioner().partition(medium_circuit, seed=2)
        assert 1 <= result.passes <= 10

    def test_prop_bisect_wrapper(self, medium_circuit):
        r = prop_bisect(medium_circuit, seed=5)
        assert r.algorithm == "PROP"


class TestConfigVariants:
    def test_deterministic_bootstrap(self, medium_circuit):
        cfg = PropConfig(init_method="deterministic")
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        result.verify(medium_circuit)
        initial = random_balanced_sides(medium_circuit, 1)
        assert result.cut < cut_cost(medium_circuit, initial)

    def test_sigmoid_probability(self, medium_circuit):
        cfg = PropConfig(probability_function="sigmoid")
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        result.verify(medium_circuit)

    def test_zero_refinement_iterations(self, medium_circuit):
        """With 0 refinements, gains come straight from the bootstrap
        probabilities — still a valid (if weaker) partitioner."""
        cfg = PropConfig(refinement_iterations=0)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        result.verify(medium_circuit)

    def test_no_top_updates(self, medium_circuit):
        cfg = PropConfig(top_update_count=0)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        result.verify(medium_circuit)

    def test_no_neighbor_probability_updates(self, medium_circuit):
        cfg = PropConfig(update_neighbor_probabilities=False)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        result.verify(medium_circuit)

    def test_max_passes_cap(self, medium_circuit):
        cfg = PropConfig(max_passes=1)
        result = PropPartitioner(cfg).partition(medium_circuit, seed=1)
        assert result.passes == 1


class TestEngineInternals:
    def test_explicit_initial_sides(self, tiny_graph, tiny_sides):
        balance = BalanceConstraint.fifty_fifty(tiny_graph)
        result = run_prop(tiny_graph, tiny_sides, balance)
        # tiny graph's optimal bisection cut is 1 and we start there
        assert result.cut == 1.0

    def test_weighted_nets(self, medium_circuit):
        """PROP handles non-unit net costs natively (Sec. 4)."""
        weighted = medium_circuit.with_net_costs(
            [1.0 + (i % 3) for i in range(medium_circuit.num_nets)]
        )
        result = PropPartitioner().partition(weighted, seed=2)
        result.verify(weighted)
        initial = random_balanced_sides(weighted, 2)
        assert result.cut < cut_cost(weighted, initial)

    def test_locks_released_between_passes(self, medium_circuit):
        """After a run, the final partition state must have no locks —
        verified indirectly: a second run from the result's sides works."""
        first = PropPartitioner().partition(medium_circuit, seed=3)
        again = PropPartitioner().partition(
            medium_circuit, initial_sides=first.sides
        )
        assert again.cut <= first.cut  # can only stay or improve

    def test_small_complete_graph(self):
        """Degenerate instance: everything connected to everything."""
        graph, _, _ = planted_bisection(4, 8, 2, net_size=2, seed=0)
        result = PropPartitioner().partition(graph, seed=0)
        result.verify(graph)

    def test_beats_or_matches_initial_cut_always(self):
        for seed in range(5):
            graph = hierarchical_circuit(80, 90, 320, seed=seed)
            initial = random_balanced_sides(graph, seed)
            result = PropPartitioner().partition(
                graph, initial_sides=initial
            )
            assert result.cut <= cut_cost(graph, initial)
