"""Cross-cutting pass-semantics tests for the iterative engines.

These validate properties of the shared FM-family pass structure that the
paper relies on implicitly: monotone improvement across passes, clean lock
release, and rollback integrity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FMPartitioner, LAPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.partition import cut_cost, random_balanced_sides

ENGINES = [
    PropPartitioner,
    lambda: FMPartitioner("bucket"),
    lambda: FMPartitioner("tree"),
    lambda: LAPartitioner(2),
]


@pytest.fixture(params=range(len(ENGINES)), ids=["PROP", "FM-b", "FM-t", "LA-2"])
def engine(request):
    return ENGINES[request.param]()


class TestPassCuts:
    def test_trace_recorded(self, medium_circuit, engine):
        result = engine.partition(medium_circuit, seed=1)
        assert len(result.pass_cuts) == result.passes
        assert result.pass_cuts[-1] == pytest.approx(result.cut)

    def test_strictly_decreasing_until_last(self, medium_circuit, engine):
        result = engine.partition(medium_circuit, seed=2)
        if not result.pass_cuts:
            pytest.skip("no trace")
        trace = result.pass_cuts
        # every pass except possibly the terminating one improves the cut
        for before, after in zip(trace, trace[1:-1] or []):
            assert after < before

    def test_final_cut_is_minimum_of_trace(self, medium_circuit, engine):
        result = engine.partition(medium_circuit, seed=3)
        if not result.pass_cuts:
            pytest.skip("no trace")
        assert result.cut == pytest.approx(min(result.pass_cuts))


class TestRollbackIntegrity:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_prop_result_state_is_consistent(self, seed):
        """After a full PROP run the recorded sides/cut must agree with an
        independent recount — catching any rollback bookkeeping bug."""
        graph = hierarchical_circuit(90, 98, 350, seed=seed % 4)
        result = PropPartitioner().partition(graph, seed=seed)
        assert cut_cost(graph, result.sides) == pytest.approx(result.cut)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_fm_result_state_is_consistent(self, seed):
        graph = hierarchical_circuit(90, 98, 350, seed=seed % 4)
        result = FMPartitioner("bucket").partition(graph, seed=seed)
        assert cut_cost(graph, result.sides) == pytest.approx(result.cut)

    def test_rerun_from_result_is_stable(self, medium_circuit):
        """A converged partition must be (near-)stable under another run:
        the first pass from it yields Gmax <= 0 or a small improvement."""
        for engine in (PropPartitioner(), FMPartitioner("bucket")):
            first = engine.partition(medium_circuit, seed=5)
            second = engine.partition(
                medium_circuit, initial_sides=first.sides
            )
            assert second.cut <= first.cut


class TestCrossEngineSanity:
    def test_all_engines_agree_on_easy_instance(self):
        """On a well-separated planted instance every engine lands on the
        same optimum — a strong mutual-consistency check."""
        from repro.hypergraph import planted_bisection

        graph, _, crossing = planted_bisection(35, 90, 3, seed=4)
        cuts = set()
        for make in ENGINES:
            engine = make()
            best = min(
                engine.partition(graph, seed=s).cut for s in range(3)
            )
            cuts.add(best)
        assert cuts == {float(crossing)}

    def test_initial_cut_upper_bounds_all_engines(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 9)
        start_cut = cut_cost(medium_circuit, initial)
        for make in ENGINES:
            result = make().partition(
                medium_circuit, initial_sides=initial
            )
            assert result.cut <= start_cut
