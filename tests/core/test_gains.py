"""Tests for the probabilistic gain engine (paper Eqns. 2–6).

The unified rule (DESIGN.md decision 1) must reproduce each of the paper's
equations, including every locked-net specialization, and the O(m)
``all_gains`` must agree with per-node recomputation bit for bit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gains import ProbabilisticGainEngine
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import Partition, random_balanced_sides


def make_engine(nets, sides, probabilities, net_costs=None, locked=()):
    graph = Hypergraph(nets, num_nodes=len(sides), net_costs=net_costs)
    partition = Partition(graph, sides)
    for v in locked:
        partition.lock(v)
    engine = ProbabilisticGainEngine(partition)
    for v, p in enumerate(probabilities):
        if not partition.is_locked(v):
            engine.set_probability(v, p)
    return engine


class TestEquation3_NetInCut:
    def test_basic(self):
        """u=0 with partner 1 (p=0.6) on side 0; nodes 2,3 (p=0.5, 0.7) on
        side 1.  g = prodA - prodB = 0.6 - 0.35."""
        engine = make_engine(
            nets=[[0, 1, 2, 3]],
            sides=[0, 0, 1, 1],
            probabilities=[0.9, 0.6, 0.5, 0.7],
        )
        assert engine.net_gain(0, 0) == pytest.approx(0.6 - 0.35)

    def test_sole_pin_prodA_is_one(self):
        """u is the only pin on its side: moving it removes the net for
        sure -> prodA = 1 (empty product)."""
        engine = make_engine(
            nets=[[0, 1, 2]],
            sides=[0, 1, 1],
            probabilities=[0.9, 0.5, 0.5],
        )
        assert engine.net_gain(0, 0) == pytest.approx(1.0 - 0.25)

    def test_cost_scales(self):
        engine = make_engine(
            nets=[[0, 1]],
            sides=[0, 1],
            probabilities=[0.9, 0.4],
            net_costs=[3.0],
        )
        assert engine.net_gain(0, 0) == pytest.approx(3.0 * (1.0 - 0.4))


class TestEquation4_InternalNet:
    def test_basic(self):
        """Internal net {0,1,2}: g = -c(1 - p(1)p(2))."""
        engine = make_engine(
            nets=[[0, 1, 2]],
            sides=[0, 0, 0],
            probabilities=[0.9, 0.5, 0.4],
        )
        assert engine.net_gain(0, 0) == pytest.approx(-(1 - 0.2))

    def test_two_pin_internal(self):
        engine = make_engine(
            nets=[[0, 1]],
            sides=[0, 0],
            probabilities=[0.9, 0.7],
        )
        assert engine.net_gain(0, 0) == pytest.approx(-(1 - 0.7))

    def test_internal_net_locked_partner_forces_minus_c(self):
        """A locked same-side partner can never follow: g = -c exactly."""
        engine = make_engine(
            nets=[[0, 1]],
            sides=[0, 0],
            probabilities=[0.9, 0.7],
            locked=[1],
        )
        assert engine.net_gain(0, 0) == pytest.approx(-1.0)


class TestEquation5and6_LockedNets:
    def test_eqn5_net_locked_other_side(self):
        """Net locked in V2: p(n^{2->1}) = 0, so g = +c * prodA."""
        engine = make_engine(
            nets=[[0, 1, 2]],
            sides=[0, 0, 1],
            probabilities=[0.9, 0.6, 0.0],
            locked=[2],
        )
        assert engine.net_gain(0, 0) == pytest.approx(0.6)

    def test_eqn6_net_locked_own_side(self):
        """u free on a side where the net is locked: the positive term dies,
        leaving g = -c * p(n^{1->2}) (the Eqn. 6 mirror)."""
        engine = make_engine(
            nets=[[0, 1, 2, 3]],
            sides=[0, 0, 1, 1],
            probabilities=[0.9, 0.0, 0.5, 0.8],
            locked=[1],
        )
        # u = 0: locked partner on side 0 -> prodA = 0; prodB = 0.4
        assert engine.net_gain(0, 0) == pytest.approx(-0.4)

    def test_net_locked_both_sides_contributes_nothing(self):
        """A net locked in the cutset can never change: gain 0."""
        engine = make_engine(
            nets=[[0, 1, 2]],
            sides=[0, 0, 1],
            probabilities=[0.9, 0.0, 0.0],
            locked=[1, 2],
        )
        assert engine.net_gain(0, 0) == pytest.approx(0.0)


class TestNodeGain:
    def test_sums_over_nets(self):
        engine = make_engine(
            nets=[[0, 1], [0, 2]],
            sides=[0, 1, 0],
            probabilities=[0.9, 0.5, 0.6],
        )
        expected = (1.0 - 0.5) + (-(1 - 0.6))
        assert engine.node_gain(0) == pytest.approx(expected)

    def test_clearing_probability_exclude(self):
        engine = make_engine(
            nets=[[0, 1, 2]],
            sides=[0, 0, 0],
            probabilities=[0.5, 0.6, 0.7],
        )
        assert engine.net_clearing_probability(0, 0) == pytest.approx(0.21)
        assert engine.net_clearing_probability(0, 0, exclude=0) == (
            pytest.approx(0.42)
        )
        assert engine.net_clearing_probability(0, 1) == pytest.approx(1.0)


class TestProbabilityMaintenance:
    def test_set_probability_validates_range(self, tiny_graph, tiny_sides):
        engine = ProbabilisticGainEngine(Partition(tiny_graph, tiny_sides))
        with pytest.raises(ValueError):
            engine.set_probability(0, 1.5)
        with pytest.raises(ValueError):
            engine.set_probability(0, -0.1)

    def test_locked_node_must_stay_zero(self, tiny_graph, tiny_sides):
        partition = Partition(tiny_graph, tiny_sides)
        partition.lock(0)
        engine = ProbabilisticGainEngine(partition)
        with pytest.raises(ValueError, match="locked"):
            engine.set_probability(0, 0.5)
        engine.set_probability(0, 0.0)  # zero is fine

    def test_fill_skips_locked(self, tiny_graph, tiny_sides):
        partition = Partition(tiny_graph, tiny_sides)
        partition.lock(3)
        engine = ProbabilisticGainEngine(partition)
        engine.fill(0.8)
        assert engine.p[3] == 0.0
        assert engine.p[0] == 0.8

    def test_initial_probabilities_vector(self, tiny_graph, tiny_sides):
        engine = ProbabilisticGainEngine(
            Partition(tiny_graph, tiny_sides), probabilities=[0.5] * 6
        )
        assert engine.p == [0.5] * 6

    def test_initial_vector_length_checked(self, tiny_graph, tiny_sides):
        with pytest.raises(ValueError):
            ProbabilisticGainEngine(
                Partition(tiny_graph, tiny_sides), probabilities=[0.5]
            )

    def test_on_lock_zeroes(self, tiny_graph, tiny_sides):
        partition = Partition(tiny_graph, tiny_sides)
        engine = ProbabilisticGainEngine(partition)
        engine.fill(0.9)
        partition.move_and_lock(2)
        engine.on_lock(2)
        assert engine.p[2] == 0.0


class TestAllGainsConsistency:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_gains_matches_per_node(self, seed):
        """The O(m) bulk computation equals per-node recomputation, with
        random probabilities and a random set of locked nodes."""
        rng = random.Random(seed)
        graph = hierarchical_circuit(60, 66, 240, seed=seed % 6)
        partition = Partition(graph, random_balanced_sides(graph, seed))
        for v in rng.sample(range(graph.num_nodes), 8):
            if not partition.is_locked(v):
                partition.move_and_lock(v)
        engine = ProbabilisticGainEngine(partition)
        for v in range(graph.num_nodes):
            if not partition.is_locked(v):
                engine.set_probability(v, rng.uniform(0.4, 0.95))
        bulk = engine.all_gains()
        for v in range(graph.num_nodes):
            if partition.is_locked(v):
                assert bulk[v] == 0.0
            else:
                assert bulk[v] == pytest.approx(
                    engine.node_gain(v), rel=1e-9, abs=1e-12
                )
