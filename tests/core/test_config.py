"""Tests for PropConfig validation and the paper defaults."""

import pytest

from repro.core import PAPER_CONFIG, PropConfig


class TestPaperDefaults:
    def test_section4_parameters(self):
        """Sec. 4: pinit=0.95, pmax=0.95, pmin=0.4, linear, gup=1, glo=-1."""
        cfg = PropConfig()
        assert cfg.pinit == 0.95
        assert cfg.pmax == 0.95
        assert cfg.pmin == 0.4
        assert cfg.gup == 1.0
        assert cfg.glo == -1.0
        assert cfg.probability_function == "linear"
        assert cfg.refinement_iterations == 2
        assert cfg.top_update_count == 5

    def test_paper_config_is_default(self):
        assert PAPER_CONFIG == PropConfig()


class TestValidation:
    def test_pmin_must_be_positive(self):
        """Footnote 3: pmin definitely needs to be greater than 0."""
        with pytest.raises(ValueError):
            PropConfig(pmin=0.0)

    def test_pmin_le_pmax(self):
        with pytest.raises(ValueError):
            PropConfig(pmin=0.9, pmax=0.5)

    def test_pmax_le_one(self):
        with pytest.raises(ValueError):
            PropConfig(pmax=1.5)

    def test_pinit_range(self):
        with pytest.raises(ValueError):
            PropConfig(pinit=0.0)
        with pytest.raises(ValueError):
            PropConfig(pinit=1.5)
        PropConfig(pinit=1.0)  # pmax = 1 "is not unreasonable"

    def test_thresholds_ordered(self):
        with pytest.raises(ValueError):
            PropConfig(glo=1.0, gup=1.0)
        with pytest.raises(ValueError):
            PropConfig(glo=2.0, gup=1.0)

    def test_unknown_probability_function(self):
        with pytest.raises(ValueError, match="probability_function"):
            PropConfig(probability_function="cubic")

    def test_unknown_init_method(self):
        with pytest.raises(ValueError, match="init_method"):
            PropConfig(init_method="magic")

    def test_non_negative_counters(self):
        with pytest.raises(ValueError):
            PropConfig(refinement_iterations=-1)
        with pytest.raises(ValueError):
            PropConfig(top_update_count=-1)
        with pytest.raises(ValueError):
            PropConfig(max_passes=0)


class TestOverrides:
    def test_with_overrides(self):
        cfg = PropConfig().with_overrides(pinit=0.8, refinement_iterations=3)
        assert cfg.pinit == 0.8
        assert cfg.refinement_iterations == 3
        assert cfg.pmax == 0.95  # untouched

    def test_overrides_revalidate(self):
        with pytest.raises(ValueError):
            PropConfig().with_overrides(pmin=0.0)

    def test_describe_is_flat(self):
        d = PropConfig().describe()
        assert d["pinit"] == 0.95
        assert set(d) >= {"pmax", "pmin", "gup", "glo", "init_method"}

    def test_frozen(self):
        with pytest.raises(Exception):
            PropConfig().pinit = 0.5  # type: ignore[misc]
