"""Tests for the clustering + PROP two-phase flow (paper Sec. 5)."""

import pytest

from repro.core import PropConfig, TwoPhasePropPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.multirun import run_many
from repro.partition import balance_ratio, cut_cost, random_balanced_sides


class TestValidation:
    def test_cluster_size(self):
        with pytest.raises(ValueError):
            TwoPhasePropPartitioner(cluster_size=0)

    def test_coarse_runs(self):
        with pytest.raises(ValueError):
            TwoPhasePropPartitioner(coarse_runs=0)

    def test_name(self):
        assert TwoPhasePropPartitioner().name == "PROP-CL"


class TestQuality:
    def test_beats_random(self, medium_circuit):
        floor = cut_cost(
            medium_circuit, random_balanced_sides(medium_circuit, 0)
        )
        result = TwoPhasePropPartitioner().partition(medium_circuit, seed=0)
        assert result.cut < floor * 0.6
        result.verify(medium_circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        result = TwoPhasePropPartitioner().partition(graph, seed=0)
        assert result.cut <= crossing + 2

    def test_balance_respected(self, medium_circuit):
        result = TwoPhasePropPartitioner().partition(medium_circuit, seed=1)
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            2.0 / medium_circuit.num_nodes
        )

    def test_competitive_with_plain_prop(self):
        """Sec. 5's claim: the clustering phase should help, and at minimum
        must not hurt much.  Compared per-seed over a few seeds."""
        from repro.core import PropPartitioner

        graph = hierarchical_circuit(400, 420, 1520, seed=9)
        plain = run_many(PropPartitioner(), graph, runs=3).best_cut
        two_phase = run_many(TwoPhasePropPartitioner(), graph, runs=3).best_cut
        assert two_phase <= plain * 1.15

    def test_explicit_initial_sides_skip_clustering(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 4)
        result = TwoPhasePropPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut <= cut_cost(medium_circuit, initial)
        assert result.algorithm == "PROP-CL"

    def test_deterministic_given_seed(self, medium_circuit):
        a = TwoPhasePropPartitioner().partition(medium_circuit, seed=6)
        b = TwoPhasePropPartitioner().partition(medium_circuit, seed=6)
        assert a.sides == b.sides

    def test_custom_config_threaded(self, medium_circuit):
        cfg = PropConfig(refinement_iterations=1)
        result = TwoPhasePropPartitioner(config=cfg).partition(
            medium_circuit, seed=0
        )
        result.verify(medium_circuit)
