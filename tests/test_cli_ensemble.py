"""CLI coverage for ``prop-partition ensemble fit|solve``."""

import json

import pytest

from repro.cli import main
from repro.hypergraph import hierarchical_circuit
from repro.hypergraph import io_ as nio


@pytest.fixture
def netlist_file(tmp_path):
    graph = hierarchical_circuit(80, 88, 320, seed=1)
    path = tmp_path / "circuit.hgr"
    nio.write_hgr(graph, path)
    return str(path)


class TestEnsembleSolve:
    def test_solve_generated_circuit(self, capsys):
        rc = main([
            "ensemble", "solve", "--generate", "t6", "--scale", "0.05",
            "--budget", "12", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best cut" in out
        assert "budgeted runs" in out
        assert "stop:" in out

    def test_solve_netlist_file(self, netlist_file, capsys):
        rc = main([
            "ensemble", "solve", netlist_file, "--budget", "8",
            "-a", "fm",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FM" in out

    def test_solve_target_stops_immediately(self, capsys):
        rc = main([
            "ensemble", "solve", "--generate", "t6", "--scale", "0.05",
            "--budget", "10", "--target", "1e9",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stop: target_reached" in out
        assert "after 1 of 10" in out

    def test_solve_zero_threshold_spends_full_budget(self, capsys):
        rc = main([
            "ensemble", "solve", "--generate", "t6", "--scale", "0.05",
            "--budget", "5", "--threshold", "0", "--min-runs", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "after 5 of 5 budgeted runs (0 saved)" in out
        assert "stop: budget_exhausted" in out

    def test_solve_requires_an_instance(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["ensemble", "solve"])
        assert exc.value.code == 2

    def test_solve_deterministic_across_invocations(self, capsys):
        argv = [
            "ensemble", "solve", "--generate", "t6", "--scale", "0.05",
            "--budget", "12", "--seed", "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second


class TestEnsembleFitAndModel:
    def test_fit_writes_model_and_solve_consumes_it(self, tmp_path, capsys):
        model_path = str(tmp_path / "portfolio.json")
        rc = main([
            "ensemble", "fit", "-o", model_path, "--runs", "2",
            "--algorithms", "prop", "fm",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wrote" in out

        with open(model_path) as fh:
            payload = json.load(fh)
        circuits = {obs["circuit"] for obs in payload["observations"]}
        algorithms = {obs["algorithm"] for obs in payload["observations"]}
        assert algorithms == {"prop", "fm"}
        assert len(circuits) >= 2

        rc = main([
            "ensemble", "solve", "--generate", "t6", "--scale", "0.05",
            "--budget", "8", "--model", model_path,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "portfolio selected:" in out
        assert "best cut" in out
