"""Tests for the multi-FPGA partitioning flow."""

import pytest

from repro.fpga import FpgaDevice, device_io_counts, partition_onto_fpgas
from repro.hypergraph import hierarchical_circuit


@pytest.fixture
def circuit():
    return hierarchical_circuit(160, 170, 620, seed=4)


class TestFpgaDevice:
    def test_validation(self):
        with pytest.raises(ValueError):
            FpgaDevice(capacity=0, io_limit=10)
        with pytest.raises(ValueError):
            FpgaDevice(capacity=10, io_limit=-1)


class TestDeviceIoCounts:
    def test_tiny(self, tiny_graph):
        # parts {0,1,2} vs {3,4,5}: net {2,3,5} crosses -> 1 io each
        ios = device_io_counts(tiny_graph, [0, 0, 0, 1, 1, 1], 2)
        assert ios == [1, 1]

    def test_three_way(self, tiny_graph):
        ios = device_io_counts(tiny_graph, [0, 0, 1, 1, 2, 2], 3)
        # net {1,2} spans 0,1; net {3,4} spans 1,2; net {4,5} inside 2?
        # nodes 4,5 both part 2 -> internal; net {2,3,5} spans 1,1,2 -> {1,2}
        assert ios == [1, 3, 2]


class TestPartitionOntoFpgas:
    def test_generous_devices_feasible(self, circuit):
        devices = [FpgaDevice(capacity=60, io_limit=10_000)] * 4
        plan = partition_onto_fpgas(circuit, devices, seed=0)
        assert plan.feasible
        assert sum(plan.utilization) == circuit.total_node_weight
        assert plan.cut > 0

    def test_capacity_exceeded_detected(self, circuit):
        """Aggregate capacity barely above demand with hard per-device
        limits: repair may or may not fully succeed but the report must be
        truthful either way."""
        devices = [FpgaDevice(capacity=41, io_limit=10_000)] * 4
        plan = partition_onto_fpgas(circuit, devices, seed=0)
        for d in range(4):
            if plan.utilization[d] > 41:
                assert d in plan.capacity_violations()
            else:
                assert d not in plan.capacity_violations()

    def test_io_violations_reported(self, circuit):
        devices = [FpgaDevice(capacity=200, io_limit=1)] * 4
        plan = partition_onto_fpgas(circuit, devices, seed=0)
        # one I/O per device is absurd; the plan must admit infeasibility
        assert not plan.feasible
        assert plan.io_violations()

    def test_aggregate_capacity_checked(self, circuit):
        devices = [FpgaDevice(capacity=10, io_limit=100)] * 2
        with pytest.raises(ValueError, match="aggregate"):
            partition_onto_fpgas(circuit, devices)

    def test_needs_two_devices(self, circuit):
        with pytest.raises(ValueError, match="at least 2"):
            partition_onto_fpgas(
                circuit, [FpgaDevice(capacity=1000, io_limit=100)]
            )

    def test_io_counts_match_recount(self, circuit):
        devices = [FpgaDevice(capacity=60, io_limit=10_000)] * 4
        plan = partition_onto_fpgas(circuit, devices, seed=1)
        assert plan.io_counts == device_io_counts(
            circuit, plan.assignment, 4
        )

    def test_all_nodes_assigned(self, circuit):
        devices = [FpgaDevice(capacity=90, io_limit=10_000)] * 2
        plan = partition_onto_fpgas(circuit, devices, seed=2)
        assert len(plan.assignment) == circuit.num_nodes
        assert set(plan.assignment) <= {0, 1}
