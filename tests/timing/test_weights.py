"""Tests for timing-driven net weighting."""

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.timing import (
    critical_net_weights,
    slack_based_weights,
    synthetic_critical_nets,
    timing_report,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(140, 150, 540, seed=6)


class TestWeighting:
    def test_critical_net_weights(self, circuit):
        weighted = critical_net_weights(circuit, [0, 5], critical_weight=7.0)
        assert weighted.net_cost(0) == 7.0
        assert weighted.net_cost(5) == 7.0
        assert weighted.net_cost(1) == 1.0
        assert weighted.nets == circuit.nets

    def test_critical_validation(self, circuit):
        with pytest.raises(ValueError):
            critical_net_weights(circuit, [0], critical_weight=0.0)
        with pytest.raises(ValueError):
            critical_net_weights(circuit, [99999])

    def test_slack_based(self, circuit):
        slacks = [1.0] * circuit.num_nets
        slacks[3] = -2.0
        weighted = slack_based_weights(circuit, slacks, alpha=2.0)
        assert weighted.net_cost(3) == pytest.approx(5.0)
        assert weighted.net_cost(0) == 1.0

    def test_slack_validation(self, circuit):
        with pytest.raises(ValueError):
            slack_based_weights(circuit, [0.0])
        with pytest.raises(ValueError):
            slack_based_weights(circuit, [0.0] * circuit.num_nets, alpha=-1)

    def test_synthetic_critical_nets(self, circuit):
        crit = synthetic_critical_nets(circuit, fraction=0.1, seed=1)
        assert len(crit) == round(circuit.num_nets * 0.1)
        assert crit == sorted(set(crit))
        assert synthetic_critical_nets(circuit, 0.1, seed=1) == crit

    def test_synthetic_fraction_validated(self, circuit):
        with pytest.raises(ValueError):
            synthetic_critical_nets(circuit, 0.0)


class TestTimingReport:
    def test_report_fields(self, circuit):
        crit = synthetic_critical_nets(circuit, 0.1, seed=2)
        weighted = critical_net_weights(circuit, crit, 10.0)
        result = PropPartitioner().partition(weighted, seed=0)
        report = timing_report(weighted, result.sides, crit)
        assert report.weighted_cut == pytest.approx(result.cut)
        assert 0 <= report.critical_cut <= report.critical_total
        assert report.critical_total == len(crit)
        assert 0.0 <= report.critical_cut_fraction <= 1.0

    def test_infers_critical_from_costs(self, circuit):
        weighted = critical_net_weights(circuit, [0, 1], 5.0)
        report = timing_report(weighted, [0] * circuit.num_nodes)
        assert report.critical_total == 2
        assert report.critical_cut == 0

    def test_weighting_protects_critical_nets(self, circuit):
        """The paper's motivation: up-weighted nets get cut less often.
        Compare critical cut fraction with and without weighting, best of
        a few seeds."""
        crit = synthetic_critical_nets(circuit, 0.15, seed=3)
        weighted = critical_net_weights(circuit, crit, 10.0)

        def critical_cut(graph, seeds):
            best = None
            for s in seeds:
                r = PropPartitioner().partition(graph, seed=s)
                rep = timing_report(weighted, r.sides, crit)
                if best is None or rep.critical_cut < best:
                    best = rep.critical_cut
            return best

        unaware = critical_cut(circuit, range(3))
        aware = critical_cut(weighted, range(3))
        assert aware <= unaware

    def test_fm_tree_on_weighted(self, circuit):
        """FM must fall back to the tree container for weighted nets and
        still optimize the weighted objective (paper Sec. 4)."""
        crit = synthetic_critical_nets(circuit, 0.1, seed=4)
        weighted = critical_net_weights(circuit, crit, 10.0)
        result = FMPartitioner("tree").partition(weighted, seed=0)
        result.verify(weighted)
