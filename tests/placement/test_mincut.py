"""Tests for the recursive min-cut placer."""

import pytest

from repro.baselines import FMPartitioner, RandomPartitioner
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.placement import (
    Placement,
    Region,
    mincut_placement,
    random_placement,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(120, 130, 470, seed=2)


class TestRegion:
    def test_vertical_split(self):
        left, right = Region(0, 0, 1, 1).split(vertical=True)
        assert left.x1 == right.x0 == 0.5
        assert left.height == right.height == 1.0

    def test_horizontal_split(self):
        bottom, top = Region(0, 0, 1, 1).split(vertical=False)
        assert bottom.y1 == top.y0 == 0.5

    def test_dimensions(self):
        r = Region(0.25, 0.0, 1.0, 0.5)
        assert r.width == 0.75
        assert r.height == 0.5


class TestHpwl:
    def test_two_pin_net(self):
        graph = Hypergraph([[0, 1]])
        p = Placement(graph, x=[0.0, 0.5], y=[0.0, 0.25])
        assert p.hpwl() == pytest.approx(0.75)
        assert p.net_hpwl(0) == pytest.approx(0.75)

    def test_single_pin_net_free(self):
        graph = Hypergraph([[0]])
        p = Placement(graph, x=[0.3], y=[0.3])
        assert p.hpwl() == 0.0

    def test_net_cost_scales(self):
        graph = Hypergraph([[0, 1]], net_costs=[4.0])
        p = Placement(graph, x=[0.0, 1.0], y=[0.0, 0.0])
        assert p.hpwl() == pytest.approx(4.0)

    def test_bounding_box_of_multi_pin_net(self):
        graph = Hypergraph([[0, 1, 2]])
        p = Placement(graph, x=[0.0, 0.5, 1.0], y=[0.0, 0.9, 0.1])
        assert p.net_hpwl(0) == pytest.approx(1.0 + 0.9)


class TestMincutPlacement:
    def test_all_nodes_in_unit_square(self, circuit):
        placement = mincut_placement(circuit, seed=1)
        placement.check_in_bounds()

    def test_validation(self, circuit):
        with pytest.raises(ValueError):
            mincut_placement(circuit, leaf_cells=0)
        with pytest.raises(ValueError):
            mincut_placement(circuit, balance_tolerance=0.0)

    def test_beats_random_placement(self):
        """The whole point of min-cut placement: connected nodes end up
        near each other, so HPWL drops well below random.  Uses a larger
        circuit where the cluster hierarchy is deep enough to matter."""
        circuit = hierarchical_circuit(360, 380, 1380, seed=3)
        placed = mincut_placement(circuit, seed=1)
        rand = random_placement(circuit, seed=1)
        assert placed.hpwl() < rand.hpwl() * 0.65

    def test_better_partitioner_shorter_wires(self, circuit):
        """Placement quality inherits partitioner quality: a random
        'partitioner' inside the same flow gives much longer wires."""
        good = mincut_placement(circuit, seed=1)
        bad = mincut_placement(
            circuit, partitioner=RandomPartitioner(), seed=1
        )
        assert good.hpwl() < bad.hpwl()

    def test_fm_as_inner_engine(self, circuit):
        placement = mincut_placement(
            circuit, partitioner=FMPartitioner("bucket"), seed=1
        )
        placement.check_in_bounds()

    def test_deterministic(self, circuit):
        a = mincut_placement(circuit, seed=4)
        b = mincut_placement(circuit, seed=4)
        assert a.x == b.x and a.y == b.y

    def test_nodes_spread_not_stacked(self, circuit):
        """Leaf spreading must not pile every node on one point."""
        placement = mincut_placement(circuit, seed=1)
        positions = set(zip(placement.x, placement.y))
        assert len(positions) > circuit.num_nodes * 0.5

    def test_tiny_graph(self):
        graph = Hypergraph([[0, 1], [1, 2]], num_nodes=3)
        placement = mincut_placement(graph, leaf_cells=4)
        placement.check_in_bounds()

    def test_disconnected_pocket_handled(self):
        """Nodes with no internal nets still get placed."""
        graph = Hypergraph([[0, 1]], num_nodes=40)
        placement = mincut_placement(graph, seed=0)
        placement.check_in_bounds()


class TestTerminalPropagation:
    def test_in_bounds(self, circuit):
        placement = mincut_placement(
            circuit, seed=1, terminal_propagation=True
        )
        placement.check_in_bounds()

    def test_improves_wirelength(self):
        """Dunlop–Kernighan terminal propagation must beat the blind
        recursive placer on a clustered circuit."""
        circuit = hierarchical_circuit(360, 380, 1380, seed=3)
        plain = mincut_placement(circuit, seed=1)
        aware = mincut_placement(
            circuit, seed=1, terminal_propagation=True
        )
        assert aware.hpwl() < plain.hpwl()

    def test_deterministic(self, circuit):
        a = mincut_placement(circuit, seed=2, terminal_propagation=True)
        b = mincut_placement(circuit, seed=2, terminal_propagation=True)
        assert a.x == b.x and a.y == b.y

    def test_fm_tree_engine(self, circuit):
        # anchored subproblems have weighted nodes; FM-tree handles them
        placement = mincut_placement(
            circuit,
            partitioner=FMPartitioner("tree"),
            seed=1,
            terminal_propagation=True,
        )
        placement.check_in_bounds()

    def test_disconnected_pocket(self):
        graph = Hypergraph([[0, 1]], num_nodes=40)
        placement = mincut_placement(
            graph, seed=0, terminal_propagation=True
        )
        placement.check_in_bounds()


class TestRandomPlacement:
    def test_in_bounds_and_deterministic(self, circuit):
        a = random_placement(circuit, seed=9)
        b = random_placement(circuit, seed=9)
        a.check_in_bounds()
        assert a.x == b.x
