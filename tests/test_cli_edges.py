"""Edge-case tests for the CLI beyond the happy paths in test_cli.py."""

import pytest

from repro.cli import _make_balance, _make_partitioner, main
from repro.hypergraph import hierarchical_circuit
from repro.hypergraph import io_ as nio


@pytest.fixture
def netlist_file(tmp_path):
    graph = hierarchical_circuit(70, 76, 270, seed=2)
    path = tmp_path / "c.hgr"
    nio.write_hgr(graph, path)
    return path


class TestPartitionerFactory:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("prop", "PROP"),
            ("PROP", "PROP"),          # case-insensitive
            ("fm", "FM-bucket"),
            ("fm-bucket", "FM-bucket"),
            ("fm-tree", "FM-tree"),
            ("la-4", "LA-4"),
            ("kl", "KL"),
            ("sa", "SA"),
            ("eig1", "EIG1"),
            ("melo", "MELO"),
            ("window", "WINDOW"),
            ("paraboli", "PARABOLI"),
            ("random", "RANDOM"),
            ("ml-prop", "ML-PROP"),
            ("multilevel", "ML-PROP"),
            ("prop-cl", "PROP-CL"),
            ("two-phase", "PROP-CL"),
        ],
    )
    def test_names_resolve(self, name, expected):
        assert _make_partitioner(name).name == expected

    def test_unknown_name(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _make_partitioner("quantum-annealer")


class TestBalanceParsing:
    def test_named_specs(self, netlist_file):
        graph = nio.read(netlist_file)
        b5050 = _make_balance(graph, "50-50")
        b4555 = _make_balance(graph, "45-55")
        assert b5050.hi - b5050.lo <= 2.5
        assert b4555.lo == pytest.approx(0.45 * graph.num_nodes)

    def test_custom_spec(self, netlist_file):
        graph = nio.read(netlist_file)
        b = _make_balance(graph, "40-60")
        assert b.lo == pytest.approx(0.4 * graph.num_nodes)

    def test_bad_spec(self, netlist_file):
        import argparse

        graph = nio.read(netlist_file)
        with pytest.raises(argparse.ArgumentTypeError):
            _make_balance(graph, "almost-even")

    def test_bad_spec_via_main(self, netlist_file):
        with pytest.raises(Exception):
            main([str(netlist_file), "--balance", "huh"])


class TestFpgaOptions:
    def test_explicit_capacity(self, netlist_file, capsys):
        assert main(
            [str(netlist_file), "--fpga", "2", "-a", "fm",
             "--fpga-capacity", "60", "--fpga-io", "999"]
        ) == 0
        out = capsys.readouterr().out
        assert "logic" in out and "/60" in out

    def test_infeasible_reported_not_crashed(self, netlist_file, capsys):
        assert main(
            [str(netlist_file), "--fpga", "2", "-a", "fm", "--fpga-io", "1"]
        ) == 0
        assert "feasible: False" in capsys.readouterr().out


class TestGenerateOptions:
    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["--generate", "not-a-circuit"])

    def test_scale_flows_through(self, capsys):
        assert main(["--generate", "balu", "--scale", "0.1", "-a", "random"]) == 0
        out = capsys.readouterr().out
        assert "80 nodes" in out  # 801 * 0.1 -> 80

    def test_netlist_and_generate_generate_wins(self, netlist_file, capsys):
        assert main(
            [str(netlist_file), "--generate", "t6", "--scale", "0.05",
             "-a", "random"]
        ) == 0
        assert "generated:t6" in capsys.readouterr().out
