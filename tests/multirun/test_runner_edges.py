"""Additional multirun harness tests: balance threading, determinism."""

import pytest

from repro.baselines import FMPartitioner, RandomPartitioner
from repro.core import PropPartitioner
from repro.multirun import run_many
from repro.partition import BalanceConstraint, balance_ratio


class TestBalanceThreading:
    def test_balance_reaches_every_run(self, medium_circuit):
        balance = BalanceConstraint.from_fractions(medium_circuit, 0.4, 0.6)
        outcome = run_many(
            FMPartitioner("bucket"), medium_circuit, runs=4, balance=balance
        )
        assert outcome.best is not None
        # the winning run (and by construction all runs) obeyed the bounds
        assert balance_ratio(medium_circuit, outcome.best.sides) <= 0.6 + 1e-9

    def test_default_balance_when_none(self, medium_circuit):
        outcome = run_many(PropPartitioner(), medium_circuit, runs=2)
        assert balance_ratio(medium_circuit, outcome.best.sides) <= 0.5 + (
            2.0 / medium_circuit.num_nodes
        )


class TestDeterminismAcrossHarness:
    def test_same_base_seed_same_outcome(self, medium_circuit):
        a = run_many(PropPartitioner(), medium_circuit, runs=3, base_seed=5)
        b = run_many(PropPartitioner(), medium_circuit, runs=3, base_seed=5)
        assert a.cuts == b.cuts
        assert a.best.sides == b.best.sides

    def test_different_base_seed_different_runs(self, medium_circuit):
        a = run_many(
            RandomPartitioner(), medium_circuit, runs=3, base_seed=0
        )
        b = run_many(
            RandomPartitioner(), medium_circuit, runs=3, base_seed=100
        )
        assert a.cuts != b.cuts

    def test_best_is_argmin_of_cuts(self, medium_circuit):
        outcome = run_many(
            FMPartitioner("bucket"), medium_circuit, runs=5, base_seed=2
        )
        assert outcome.best_cut == min(outcome.cuts)
        # and the recorded winner actually reproduces that cut
        replay = FMPartitioner("bucket").partition(
            medium_circuit, seed=outcome.best.seed
        )
        assert replay.cut == outcome.best_cut


class TestDeterministicAlgorithmsInHarness:
    def test_extra_runs_short_circuit_with_warning(self, medium_circuit):
        from repro.baselines import Eig1Partitioner

        with pytest.warns(UserWarning, match="deterministic"):
            outcome = run_many(Eig1Partitioner(), medium_circuit, runs=3)
        # one run, not three silent repeats of the identical answer
        assert len(outcome.cuts) == 1
        assert outcome.runs == 1

    def test_all_deterministic_baselines_advertise_it(self):
        from repro.baselines import (
            Eig1Partitioner,
            MeloPartitioner,
            ParaboliPartitioner,
        )

        for cls in (Eig1Partitioner, MeloPartitioner, ParaboliPartitioner):
            assert cls.deterministic is True

    def test_single_run_emits_no_warning(self, medium_circuit, recwarn):
        from repro.baselines import Eig1Partitioner

        outcome = run_many(Eig1Partitioner(), medium_circuit, runs=1)
        assert len(outcome.cuts) == 1
        assert not [
            w for w in recwarn if "deterministic" in str(w.message)
        ]
