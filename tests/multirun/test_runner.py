"""Tests for the multi-start protocol."""

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropPartitioner
from repro.multirun import PAPER_RUN_COUNTS, run_many


class TestRunMany:
    def test_best_of_n_never_worse_than_single(self, medium_circuit):
        single = FMPartitioner("bucket").partition(medium_circuit, seed=0)
        multi = run_many(FMPartitioner("bucket"), medium_circuit, runs=5)
        assert multi.best_cut <= single.cut

    def test_cuts_recorded_per_run(self, medium_circuit):
        outcome = run_many(FMPartitioner("bucket"), medium_circuit, runs=4)
        assert len(outcome.cuts) == 4
        assert outcome.best_cut == min(outcome.cuts)
        assert outcome.worst_cut == max(outcome.cuts)
        assert outcome.mean_cut == pytest.approx(sum(outcome.cuts) / 4)

    def test_sequential_seeds_replayable(self, medium_circuit):
        outcome = run_many(
            PropPartitioner(), medium_circuit, runs=3, base_seed=100
        )
        # replay the winning run in isolation
        replay = PropPartitioner().partition(
            medium_circuit, seed=outcome.best.seed
        )
        assert replay.cut == outcome.best_cut

    def test_runs_validated(self, medium_circuit):
        with pytest.raises(ValueError):
            run_many(FMPartitioner("bucket"), medium_circuit, runs=0)

    def test_timing_captured(self, medium_circuit):
        outcome = run_many(FMPartitioner("bucket"), medium_circuit, runs=2)
        assert outcome.total_seconds > 0
        assert len(outcome.run_seconds) == 2
        assert all(s > 0 for s in outcome.run_seconds)
        # per-run seconds time only the partitioning calls, so they sum
        # to at most the harness wall clock (no overhead skew).
        assert sum(outcome.run_seconds) <= outcome.total_seconds
        assert outcome.seconds_per_run == pytest.approx(
            sum(outcome.run_seconds) / 2
        )

    def test_seeds_recorded_per_run(self, medium_circuit):
        outcome = run_many(
            FMPartitioner("bucket"), medium_circuit, runs=3, base_seed=20
        )
        assert outcome.seeds == [20, 21, 22]

    def test_replay_reproduces_individual_runs(self, medium_circuit):
        outcome = run_many(
            FMPartitioner("bucket"), medium_circuit, runs=3, base_seed=9
        )
        for i in range(3):
            assert outcome.replay(i).cut == outcome.cuts[i]

    def test_replay_bad_index(self, medium_circuit):
        outcome = run_many(FMPartitioner("bucket"), medium_circuit, runs=2)
        with pytest.raises(IndexError):
            outcome.replay(5)

    def test_replay_requires_source_refs(self):
        from repro.multirun import MultiRunResult

        bare = MultiRunResult(algorithm="X", circuit="c", runs=1)
        with pytest.raises(ValueError):
            bare.replay(0)

    def test_empty_result_properties_raise(self):
        from repro.multirun import MultiRunResult

        empty = MultiRunResult(algorithm="X", circuit="c", runs=0)
        with pytest.raises(ValueError):
            empty.best_cut
        with pytest.raises(ValueError):
            empty.mean_cut
        with pytest.raises(ValueError):
            empty.worst_cut
        with pytest.raises(ValueError):
            empty.seconds_per_run

    def test_circuit_name_recorded(self, medium_circuit):
        outcome = run_many(
            FMPartitioner("bucket"),
            medium_circuit,
            runs=1,
            circuit_name="medium",
        )
        assert outcome.circuit == "medium"
        assert outcome.algorithm == "FM-bucket"


class TestSecondsPerRunFallback:
    def test_fallback_divides_by_completed_attempts(self, tiny_graph):
        """Regression: ``total_seconds`` includes time spent in failed,
        error-collected runs, so the no-``run_seconds`` fallback must
        divide by all completed attempts, not successes alone."""
        from repro.engine import Engine, EngineConfig
        from repro.testing import FlakyPartitioner

        engine = Engine(
            EngineConfig(workers=0, use_cache=False, on_error="collect")
        )
        outcome = run_many(
            FlakyPartitioner(failing_seeds=(1, 3)),
            tiny_graph,
            runs=4,
            engine=engine,
        )
        assert len(outcome.cuts) == 2
        assert len(outcome.errors) == 2
        assert outcome.completed_attempts == 4
        # Simulate a deserialized record that predates per-run timing.
        outcome.run_seconds = []
        outcome.total_seconds = 8.0
        assert outcome.seconds_per_run == pytest.approx(2.0)

    def test_fallback_without_errors_unchanged(self):
        from repro.multirun import MultiRunResult

        legacy = MultiRunResult(algorithm="X", circuit="c", runs=2)
        legacy.cuts = [3.0, 4.0]
        legacy.total_seconds = 6.0
        assert legacy.seconds_per_run == pytest.approx(3.0)


class TestPaperProtocol:
    def test_run_counts_match_section4(self):
        """FM20/40/100, LA-2 (20 or 40), LA-3 (20), PROP (20)."""
        assert PAPER_RUN_COUNTS["FM100"] == 100
        assert PAPER_RUN_COUNTS["FM40"] == 40
        assert PAPER_RUN_COUNTS["FM20"] == 20
        assert PAPER_RUN_COUNTS["LA-2"] == 20
        assert PAPER_RUN_COUNTS["LA-2x40"] == 40
        assert PAPER_RUN_COUNTS["LA-3"] == 20
        assert PAPER_RUN_COUNTS["PROP"] == 20
