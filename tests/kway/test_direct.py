"""Tests for the direct k-way FM partitioner."""

import pytest

from repro.hypergraph import hierarchical_circuit, planted_bisection
from repro.kway import (
    KWayFMPartitioner,
    kway_cut,
    pairwise_refine,
    recursive_bisection,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(180, 195, 700, seed=9)


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            KWayFMPartitioner(k=1)
        with pytest.raises(ValueError):
            KWayFMPartitioner(k=3, balance_tolerance=0.0)
        with pytest.raises(ValueError):
            KWayFMPartitioner(k=3, max_passes=0)

    def test_k_exceeds_nodes(self):
        from repro.hypergraph import Hypergraph

        tiny = Hypergraph([[0, 1]], num_nodes=2)
        with pytest.raises(ValueError, match="exceeds"):
            KWayFMPartitioner(k=5).partition(tiny)

    def test_name(self):
        assert KWayFMPartitioner(4).name == "KFM-4"


class TestQuality:
    def test_improves_round_robin(self, circuit):
        """Round-robin assignment is terrible; one direct k-FM run must
        recover most of the cut."""
        bad = [v % 4 for v in range(circuit.num_nodes)]
        bad_cut = kway_cut(circuit, bad)
        result = KWayFMPartitioner(4).partition(
            circuit, initial_assignment=bad
        )
        assert result.cut < bad_cut * 0.8
        assert result.cut == kway_cut(circuit, result.assignment)

    def test_k2_matches_planted(self):
        graph, _, crossing = planted_bisection(40, 100, 4, seed=3)
        best = min(
            KWayFMPartitioner(2).partition(graph, seed=s).cut
            for s in range(3)
        )
        assert best <= crossing + 3

    def test_competitive_with_recursive(self, circuit):
        """Direct k-FM must land in the same quality band as recursive
        bisection + pairwise refinement at k=4."""
        direct = min(
            KWayFMPartitioner(4).partition(circuit, seed=s).cut
            for s in range(3)
        )
        recursive = recursive_bisection(circuit, 4, seed=0)
        refined, _ = pairwise_refine(
            circuit, recursive.assignment, 4, seed=0
        )
        refined_cut = kway_cut(circuit, refined)
        assert direct <= refined_cut * 1.35

    def test_balance(self, circuit):
        result = KWayFMPartitioner(4, balance_tolerance=0.15).partition(
            circuit, seed=0
        )
        mean = circuit.num_nodes / 4
        for w in result.part_weights:
            assert mean * 0.7 <= w <= mean * 1.3

    def test_all_parts_used(self, circuit):
        result = KWayFMPartitioner(5).partition(circuit, seed=1)
        assert set(result.assignment) == set(range(5))

    def test_deterministic(self, circuit):
        a = KWayFMPartitioner(3).partition(circuit, seed=2)
        b = KWayFMPartitioner(3).partition(circuit, seed=2)
        assert a.assignment == b.assignment

    def test_never_worsens_initial(self, circuit):
        for seed in range(3):
            initial = KWayFMPartitioner(4)._random_assignment(circuit, seed)
            before = kway_cut(circuit, initial)
            result = KWayFMPartitioner(4).partition(
                circuit, initial_assignment=initial
            )
            assert result.cut <= before


class TestStateInternals:
    def test_move_gain_matches_recount(self, circuit):
        from repro.kway.direct import _KWayState

        state = _KWayState(
            circuit, [v % 3 for v in range(circuit.num_nodes)], 3
        )
        for node in range(0, circuit.num_nodes, 13):
            for target in range(3):
                if target == state.assignment[node]:
                    continue
                predicted = state.move_gain(node, target)
                before = kway_cut(circuit, state.assignment)
                trial = list(state.assignment)
                trial[node] = target
                after = kway_cut(circuit, trial)
                assert predicted == pytest.approx(before - after)

    def test_incremental_cut_tracking(self, circuit):
        from repro.kway.direct import _KWayState

        state = _KWayState(
            circuit, [v % 3 for v in range(circuit.num_nodes)], 3
        )
        state.move(0, (state.assignment[0] + 1) % 3)
        state.move(7, (state.assignment[7] + 2) % 3)
        assert state.cut == pytest.approx(kway_cut(circuit, state.assignment))
