"""Tests for pairwise k-way refinement."""

import pytest

from repro.baselines import FMPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.kway import (
    kway_cut,
    pair_cut_costs,
    pairwise_refine,
    recursive_bisection,
    refine_kway_result,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(240, 255, 920, seed=8)


class TestPairCutCosts:
    def test_tiny(self, tiny_graph):
        costs = pair_cut_costs(tiny_graph, [0, 0, 1, 1, 2, 2])
        # nets: {1,2} spans (0,1); {3,4} spans (1,2); {2,3,5} spans (1,2)
        assert costs == {(0, 1): 1.0, (1, 2): 2.0}

    def test_uncut_graph(self, tiny_graph):
        assert pair_cut_costs(tiny_graph, [0] * 6) == {}

    def test_three_part_net_charged_to_all_pairs(self):
        from repro.hypergraph import Hypergraph

        hg = Hypergraph([[0, 1, 2]])
        costs = pair_cut_costs(hg, [0, 1, 2])
        assert costs == {(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0}


class TestPairwiseRefine:
    def test_never_worsens(self, circuit):
        base = recursive_bisection(circuit, 4, seed=0)
        refined, report = pairwise_refine(
            circuit, base.assignment, 4, seed=1
        )
        assert report.final_cut <= report.initial_cut
        assert kway_cut(circuit, refined) == report.final_cut

    def test_improves_bad_assignment(self, circuit):
        """A round-robin assignment is terrible; refinement must recover a
        large fraction of the gap to recursive bisection."""
        bad = [v % 4 for v in range(circuit.num_nodes)]
        bad_cut = kway_cut(circuit, bad)
        refined, report = pairwise_refine(circuit, bad, 4, seed=0)
        assert report.final_cut < bad_cut * 0.8
        assert report.pair_improvements > 0

    def test_input_not_mutated(self, circuit):
        base = recursive_bisection(circuit, 3, seed=0)
        snapshot = list(base.assignment)
        pairwise_refine(circuit, base.assignment, 3, seed=0)
        assert base.assignment == snapshot

    def test_part_count_preserved(self, circuit):
        base = recursive_bisection(circuit, 4, seed=0)
        refined, _ = pairwise_refine(circuit, base.assignment, 4, seed=0)
        assert set(refined) <= set(range(4))

    def test_balance_does_not_collapse(self, circuit):
        base = recursive_bisection(circuit, 4, seed=0)
        refined, _ = pairwise_refine(
            circuit, base.assignment, 4, balance_tolerance=0.1, seed=0
        )
        weights = [refined.count(part) for part in range(4)]
        mean = sum(weights) / 4
        assert min(weights) > mean * 0.5

    def test_validation(self, circuit):
        with pytest.raises(ValueError):
            pairwise_refine(circuit, [0] * circuit.num_nodes, 1)
        with pytest.raises(ValueError):
            pairwise_refine(circuit, [0, 1], 2)  # wrong length
        with pytest.raises(ValueError):
            pairwise_refine(circuit, [5] * circuit.num_nodes, 2)
        with pytest.raises(ValueError):
            pairwise_refine(
                circuit, [0] * circuit.num_nodes, 2, max_rounds=0
            )

    def test_fm_as_engine(self, circuit):
        base = recursive_bisection(
            circuit, 4, partitioner=FMPartitioner("bucket"), seed=0
        )
        refined, report = pairwise_refine(
            circuit, base.assignment, 4,
            partitioner=FMPartitioner("bucket"), seed=0,
        )
        assert report.final_cut <= report.initial_cut


class TestRefineKWayResult:
    def test_wrapper(self, circuit):
        base = recursive_bisection(circuit, 4, seed=0)
        refined, report = refine_kway_result(circuit, base, seed=1)
        assert refined.k == 4
        assert refined.cut <= base.cut
        assert refined.cut == report.final_cut
        assert sum(refined.part_weights) == pytest.approx(
            circuit.total_node_weight
        )
        assert report.improvement >= 0
