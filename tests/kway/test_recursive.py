"""Tests for recursive k-way partitioning."""

import pytest

from repro.baselines import FMPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.kway import kway_cut, recursive_bisection


class TestKWayCut:
    def test_counts_spanning_nets(self, tiny_graph):
        # parts: {0,1} {2,3} {4,5}: nets {1,2}, {3,4}, {2,3,5} span
        assert kway_cut(tiny_graph, [0, 0, 1, 1, 2, 2]) == 3.0

    def test_single_part_zero(self, tiny_graph):
        assert kway_cut(tiny_graph, [0] * 6) == 0.0


class TestRecursiveBisection:
    def test_k_equals_2_matches_bipartition(self, medium_circuit):
        result = recursive_bisection(medium_circuit, 2, seed=0)
        assert result.k == 2
        assert set(result.assignment) == {0, 1}
        assert result.cut == kway_cut(medium_circuit, result.assignment)

    def test_k4_parts_and_balance(self, medium_circuit):
        result = recursive_bisection(medium_circuit, 4, seed=0)
        assert set(result.assignment) == {0, 1, 2, 3}
        assert result.balance_spread() < 0.5
        n = medium_circuit.num_nodes
        for w in result.part_weights:
            assert n / 4 * 0.6 <= w <= n / 4 * 1.4

    def test_k3_non_power_of_two(self, medium_circuit):
        result = recursive_bisection(medium_circuit, 3, seed=1)
        assert set(result.assignment) == {0, 1, 2}
        assert result.balance_spread() < 0.6

    def test_k1_trivial(self, medium_circuit):
        result = recursive_bisection(medium_circuit, 1, seed=0)
        assert result.cut == 0.0
        assert set(result.assignment) == {0}

    def test_k_validated(self, medium_circuit):
        with pytest.raises(ValueError):
            recursive_bisection(medium_circuit, 0)
        with pytest.raises(ValueError):
            recursive_bisection(medium_circuit, medium_circuit.num_nodes + 1)

    def test_custom_partitioner(self, medium_circuit):
        result = recursive_bisection(
            medium_circuit, 4, partitioner=FMPartitioner("bucket"), seed=0
        )
        assert set(result.assignment) == {0, 1, 2, 3}

    def test_more_parts_cut_more_nets(self, medium_circuit):
        """Monotonicity sanity: k=8 cut >= k=2 cut on the same circuit."""
        c2 = recursive_bisection(medium_circuit, 2, seed=0).cut
        c8 = recursive_bisection(medium_circuit, 8, seed=0).cut
        assert c8 >= c2

    def test_runs_per_split_improves_or_ties(self):
        graph = hierarchical_circuit(120, 130, 470, seed=2)
        single = recursive_bisection(graph, 4, seed=3, runs_per_split=1)
        multi = recursive_bisection(graph, 4, seed=3, runs_per_split=3)
        assert multi.cut <= single.cut * 1.2  # usually better, never awful

    def test_part_nodes_partition_everything(self, medium_circuit):
        result = recursive_bisection(medium_circuit, 4, seed=0)
        seen = []
        for part in range(4):
            seen.extend(result.part_nodes(part))
        assert sorted(seen) == list(range(medium_circuit.num_nodes))
