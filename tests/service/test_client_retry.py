"""ServiceClient 429 handling: Retry-After + deterministic backoff.

Drives a real saturated server (queue depth 1, one gated worker) so
the 429s here are produced by the actual admission path, not mocks.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.engine import backoff_delay
from repro.service import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)

pytestmark = pytest.mark.slow


def payload(index: int = 0, **overrides):
    spec = {
        "generate": {
            "kind": "many_small", "size_range": [8, 14],
            "seed": 9, "index": index,
        },
        "algorithm": "fm",
        "runs": 1,
        "seed": 3000 + index,
    }
    spec.update(overrides)
    return spec


def gate_execution(monkeypatch, gate: threading.Event):
    def _execute(self, job):
        gate.wait(timeout=30)
        return [{
            "seed": job.spec.effective_seed(), "index": 0, "seconds": 0.0,
            "source": "computed", "cached": False, "cut": 1.0, "passes": 1,
        }], False

    monkeypatch.setattr(PartitionService, "_execute", _execute)


def saturated_server(tmp_path):
    return ServiceServer(PartitionService(ServiceConfig(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        job_workers=1,
        max_queue_depth=1,
        integrity_check=False,
        quarantine_after=0,
    )))


async def saturate(client, service):
    """Fill the single worker + the single queue slot."""
    await client.submit(payload(index=0))
    # Wait until the worker picked job 0 up, freeing the depth slot...
    for _ in range(1000):
        if service.admission.queued == 0:
            break
        await asyncio.sleep(0.01)
    await client.submit(payload(index=1))  # ...and refill it.


def test_429_carries_retry_after_and_is_not_retried_by_default(tmp_path, monkeypatch):
    gate = threading.Event()
    gate_execution(monkeypatch, gate)

    async def main():
        server = saturated_server(tmp_path)
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            await saturate(client, server.service)
            with pytest.raises(ServiceError) as excinfo:
                await client.submit(payload(index=2))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            body = excinfo.value.payload["error"]
            assert body["reason"] == "queue_depth"
            assert body["retry_after"] == excinfo.value.retry_after
        finally:
            gate.set()
            await server.stop()
    asyncio.run(main())


def test_submit_retries_ride_out_saturation(tmp_path, monkeypatch):
    """A retrying submit blocks through the 429s and lands once the
    backlog drains — no lost request, no manual polling."""
    gate = threading.Event()
    gate_execution(monkeypatch, gate)

    async def main():
        server = saturated_server(tmp_path)
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            await saturate(client, server.service)

            async def release_soon():
                await asyncio.sleep(0.3)
                gate.set()

            releaser = asyncio.create_task(release_soon())
            accepted = await client.submit(
                payload(index=2), retries=8, max_backoff=0.2
            )
            await releaser
            assert accepted["state"] == "queued"
            result = await client.wait(accepted["job_id"])
            assert result["state"] == "done"
            # The server really did shed before accepting.
            stats = await client.stats()
            assert stats["guard"]["counters"]["shed_queue_depth"] >= 1
        finally:
            gate.set()
            await server.stop()
    asyncio.run(main())


def test_retries_exhausted_reraises_the_429(tmp_path, monkeypatch):
    gate = threading.Event()
    gate_execution(monkeypatch, gate)

    async def main():
        server = saturated_server(tmp_path)
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            await saturate(client, server.service)
            with pytest.raises(ServiceError) as excinfo:
                await client.submit(
                    payload(index=2), retries=1, max_backoff=0.05
                )
            assert excinfo.value.status == 429
        finally:
            gate.set()
            await server.stop()
    asyncio.run(main())


def test_schema_errors_are_never_retried(tmp_path, monkeypatch):
    """Only 429 is retryable; a 400 with retries set must fail fast."""
    async def main():
        server = saturated_server(tmp_path)
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            before = asyncio.get_running_loop().time()
            with pytest.raises(ServiceError) as excinfo:
                await client.submit({"algorithm": "fm"}, retries=5)
            elapsed = asyncio.get_running_loop().time() - before
            assert excinfo.value.status == 400
            assert elapsed < 1.0  # no backoff sleeps happened
        finally:
            await server.stop()
    asyncio.run(main())


def test_backoff_delay_is_deterministic_and_bounded():
    delays = [backoff_delay(a, key="spec-x", maximum=2.0) for a in range(8)]
    again = [backoff_delay(a, key="spec-x", maximum=2.0) for a in range(8)]
    assert delays == again  # same key + attempt -> same delay
    assert all(0.0 < d <= 2.0 for d in delays)
    # A different key jitters differently: retry storms decorrelate.
    other = [backoff_delay(a, key="spec-y", maximum=2.0) for a in range(8)]
    assert other != delays
