"""PartitionService lifecycle: submit, execute, cancel, recover.

Everything here drives the transport-free core directly — no sockets —
which is what keeps the full submit → execute → result → recover cycle
fast enough for the tier-1 suite.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import Engine, EngineConfig
from repro.service import (
    JobNotFound,
    PartitionService,
    SchemaError,
    ServiceConfig,
    ServiceStopping,
)
from repro.service.schemas import build_units, parse_job_spec

pytestmark = pytest.mark.slow


def payload(index: int = 0, runs: int = 2, **overrides):
    spec = {
        "generate": {
            "kind": "many_small", "size_range": [8, 14],
            "seed": 5, "index": index,
        },
        "algorithm": "fm",
        "runs": runs,
        "seed": 1000 + index,
    }
    spec.update(overrides)
    return spec


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        job_workers=2,
        integrity_check=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def wait_terminal(service, job_id, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        job = service.get_job(job_id)
        if job.terminal:
            return job
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"job {job_id} still {job.state}")
        await asyncio.sleep(0.01)


def test_submit_executes_to_done(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            job = await service.submit(payload())
            assert job.job_id.startswith("j000000-")
            done = await wait_terminal(service, job.job_id)
            assert done.state == "done"
            assert len(done.results) == 2
            assert all(r["cut"] is not None for r in done.results)
            result = done.result_payload()
            assert result["best_cut"] == min(result["cuts"])
        finally:
            await service.stop()
    asyncio.run(main())


def test_cuts_match_serial_engine_reference(tmp_path):
    """The determinism contract: service execution == direct engine run."""
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            job = await service.submit(payload(runs=3))
            done = await wait_terminal(service, job.job_id)
            return [r["cut"] for r in done.results]
        finally:
            await service.stop()
    service_cuts = asyncio.run(main())

    spec = parse_job_spec(payload(runs=3))
    engine = Engine(EngineConfig(workers=0, use_cache=False))
    reference = engine.run(build_units(spec).units)
    assert service_cuts == [r.result.cut for r in reference]


def test_bad_payload_rejected_before_any_state(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            with pytest.raises(SchemaError):
                await service.submit({"algorithm": "fm"})  # no graph
            with pytest.raises(SchemaError):
                await service.submit(payload(algorithm="bogus"))
            with pytest.raises(SchemaError):
                await service.submit({"hgr": "not hgr at all"})
            assert not service.jobs
        finally:
            await service.stop()
    asyncio.run(main())


def test_cancel_queued_job(tmp_path):
    async def main():
        # One worker, stalled by a long job: the victim stays queued
        # long enough for cancel to withdraw it before execution.
        config = service_config(tmp_path, job_workers=1)
        service = PartitionService(config)
        await service.start()
        try:
            blocker = await service.submit(payload(index=0, runs=50))
            victim = await service.submit(payload(index=1, runs=50))
            cancelled = await service.cancel(victim.job_id)
            assert cancelled.state in ("queued", "cancelled")
            done = await wait_terminal(service, victim.job_id)
            assert done.state == "cancelled"
            await service.cancel(blocker.job_id)
            await wait_terminal(service, blocker.job_id)
        finally:
            await service.stop()
    asyncio.run(main())


def test_cancel_running_job_preserves_partial_journal(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path, job_workers=1))
        await service.start()
        try:
            job = await service.submit(payload(runs=200))
            # Wait for it to actually start, then cancel mid-flight.
            while service.get_job(job.job_id).state == "queued":
                await asyncio.sleep(0.005)
            await service.cancel(job.job_id)
            done = await wait_terminal(service, job.job_id)
            assert done.state == "cancelled"
            return job.job_id
        finally:
            await service.stop()
    asyncio.run(main())


def test_cancel_unknown_job_raises(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            with pytest.raises(JobNotFound):
                await service.cancel("nope")
            with pytest.raises(JobNotFound):
                service.get_job("nope")
        finally:
            await service.stop()
    asyncio.run(main())


def test_sse_events_flow_through_bus(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            job = await service.submit(payload(runs=2))
            events = []
            async for frame_type, body in _iter_bus(service, job.job_id):
                events.append((frame_type, body))
            return events
        finally:
            await service.stop()

    async def _iter_bus(service, job_id):
        queue = service.bus.subscribe(job_id)
        while True:
            item = await asyncio.wait_for(queue.get(), timeout=30)
            if item is None:
                return
            yield item

    events = asyncio.run(main())
    kinds = {e for e, _ in events}
    assert "state" in kinds
    assert "progress" in kinds
    assert "trace" in kinds  # CallbackRecorder -> bus bridge
    final_states = [b["state"] for e, b in events if e == "state"]
    assert final_states[-1] == "done"
    # Engine telemetry really crossed the thread boundary.
    trace_events = [b["event"] for e, b in events if e == "trace"]
    assert "run_start" in trace_events and "run_end" in trace_events


def test_restart_recovers_and_finishes_jobs(tmp_path):
    """The crash-recovery loop, in-process: stop a service mid-queue,
    start a fresh one on the same cache dir, everything completes."""
    cache = str(tmp_path / "cache")

    async def first():
        service = PartitionService(ServiceConfig(
            cache_dir=cache, job_workers=1, integrity_check=False,
        ))
        await service.start()
        ids = []
        for i in range(4):
            job = await service.submit(payload(index=i, runs=2))
            ids.append(job.job_id)
        await wait_terminal(service, ids[0])
        await service.stop()  # jobs 1-3 likely still queued/running
        return ids

    async def second(ids):
        service = PartitionService(ServiceConfig(
            cache_dir=cache, job_workers=2, integrity_check=False,
        ))
        await service.start()
        try:
            assert service.recovered_jobs == 4
            states = {}
            for job_id in ids:
                job = await wait_terminal(service, job_id)
                states[job_id] = job.state
            return states
        finally:
            await service.stop()

    ids = asyncio.run(first())
    states = asyncio.run(second(ids))
    assert all(state == "done" for state in states.values())


def test_recovered_done_job_serves_results_from_run_journal(tmp_path):
    cache = str(tmp_path / "cache")

    async def first():
        service = PartitionService(ServiceConfig(
            cache_dir=cache, job_workers=1, integrity_check=False,
        ))
        await service.start()
        job = await service.submit(payload(runs=3))
        done = await wait_terminal(service, job.job_id)
        cuts = [r["cut"] for r in done.results]
        await service.stop()
        return job.job_id, cuts

    async def second(job_id, cuts):
        service = PartitionService(ServiceConfig(
            cache_dir=cache, job_workers=1, integrity_check=False,
        ))
        await service.start()
        try:
            job = service.get_job(job_id)
            assert job.state == "done"
            assert job.results is None  # not yet rehydrated
            assert service.ensure_results(job)
            assert [r["cut"] for r in job.results] == cuts
            assert all(r["source"] == "journal" for r in job.results)
        finally:
            await service.stop()

    job_id, cuts = asyncio.run(first())
    asyncio.run(second(job_id, cuts))


def test_failed_execution_settles_job_as_failed(tmp_path, monkeypatch):
    """A permanent injected fault fails the unit; the job reports it."""
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:1")
    async def main():
        service = PartitionService(service_config(tmp_path, use_cache=False))
        await service.start()
        try:
            job = await service.submit(payload(runs=1))
            done = await wait_terminal(service, job.job_id)
            assert done.state == "failed"
            assert "PermanentFaultError" in done.error
        finally:
            await service.stop()
    asyncio.run(main())


def test_failed_job_with_mixed_units_keeps_worker_alive(tmp_path, monkeypatch):
    """Regression: error rows carry ``cut=None``.  A failed multi-run
    job must aggregate only successful cuts in its payloads, and
    settling it must never raise out of the worker task — that used to
    TypeError in ``min()`` and permanently shrink the worker pool."""
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:0.5")

    async def main():
        service = PartitionService(
            service_config(tmp_path, use_cache=False, job_workers=1)
        )
        await service.start()
        try:
            # seed 1000 + permanent:0.5 under plan seed 1: units fail
            # deterministically as [err, ok, ok, err] — a genuine mix.
            job = await service.submit(payload(runs=4))
            done = await wait_terminal(service, job.job_id)
            assert done.state == "failed"
            oks = [r for r in done.results if r.get("cut") is not None]
            errs = [r for r in done.results if r.get("error")]
            assert oks and errs
            status = done.status_payload()
            assert status["best_cut"] == min(r["cut"] for r in oks)
            result = done.result_payload()
            assert result["best_cut"] == min(r["cut"] for r in oks)
            assert result["cuts"] == [r["cut"] for r in oks]
            assert "PermanentFaultError" in result["error"]
            # The lone worker survived settling: a clean job still runs.
            monkeypatch.delenv("REPRO_FAULTS")
            clean = await service.submit(payload(index=1, runs=2))
            finished = await wait_terminal(service, clean.job_id)
            assert finished.state == "done"
        finally:
            await service.stop()
    asyncio.run(main())


def test_all_failed_job_payloads_omit_cuts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:1")

    async def main():
        service = PartitionService(service_config(tmp_path, use_cache=False))
        await service.start()
        try:
            job = await service.submit(payload(runs=2))
            done = await wait_terminal(service, job.job_id)
            assert done.state == "failed"
            assert done.status_payload()["best_cut"] is None
            result = done.result_payload()
            assert "best_cut" not in result and "cuts" not in result
            assert len(result["results"]) == 2
        finally:
            await service.stop()
    asyncio.run(main())


def test_submit_rejected_once_stopping(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        job = await service.submit(payload())
        await wait_terminal(service, job.job_id)
        await service.stop()
        with pytest.raises(ServiceStopping):
            await service.submit(payload(index=1))
    asyncio.run(main())


def test_terminal_job_history_is_bounded(tmp_path):
    async def main():
        service = PartitionService(
            service_config(tmp_path, max_job_history=2)
        )
        await service.start()
        try:
            ids = []
            for i in range(4):
                job = await service.submit(payload(index=i, runs=1))
                await wait_terminal(service, job.job_id)
                ids.append(job.job_id)
            assert list(service.jobs) == ids[-2:]
            for old in ids[:2]:
                with pytest.raises(JobNotFound):
                    service.get_job(old)
                # Bus replay state is forgotten with the job.
                assert old not in service.bus._last
                assert old not in service.bus._terminal
        finally:
            await service.stop()
    asyncio.run(main())


def test_stats_shape(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            job = await service.submit(payload())
            await wait_terminal(service, job.job_id)
            return await service.stats()
        finally:
            await service.stop()
    stats = asyncio.run(main())
    assert stats["jobs"]["done"] == 1
    assert stats["total_jobs"] == 1
    assert stats["queue"]["depth"] == 0
    assert stats["journal"]["appended"] >= 3  # job + queued/running/done
    assert stats["workers"]["job_workers"] == 2


def test_list_jobs_filters(tmp_path):
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            a = await service.submit(payload(index=0, tenant="acme"))
            b = await service.submit(payload(index=1, tenant="zeta"))
            await wait_terminal(service, a.job_id)
            await wait_terminal(service, b.job_id)
            by_tenant = service.list_jobs(tenant="acme")
            by_state = service.list_jobs(state="done")
            return [j.job_id for j in by_tenant], len(by_state)
        finally:
            await service.stop()
    tenant_ids, done_count = asyncio.run(main())
    assert len(tenant_ids) == 1
    assert done_count == 2
