"""HTTP API end-to-end: real sockets on an ephemeral port.

Each test boots a :class:`ServiceServer` on port 0 and drives it with
:class:`ServiceClient` (and raw sockets where the wire bytes matter).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)

pytestmark = pytest.mark.slow


def payload(index: int = 0, runs: int = 2, **overrides):
    spec = {
        "generate": {
            "kind": "many_small", "size_range": [8, 14],
            "seed": 9, "index": index,
        },
        "algorithm": "fm",
        "runs": runs,
        "seed": 2000 + index,
    }
    spec.update(overrides)
    return spec


def with_server(tmp_path, body, **config_overrides):
    """Run ``body(client, server)`` against a live server on port 0."""
    async def main():
        defaults = dict(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            job_workers=2,
            integrity_check=False,
        )
        defaults.update(config_overrides)
        server = ServiceServer(PartitionService(ServiceConfig(**defaults)))
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            return await body(client, server)
        finally:
            await server.stop()
    return asyncio.run(main())


def test_healthz_reports_version(tmp_path):
    from repro import __version__

    async def body(client, server):
        return await client.health()
    health = with_server(tmp_path, body)
    assert health == {"status": "ok", "version": __version__}


def test_submit_poll_result_roundtrip(tmp_path):
    async def body(client, server):
        accepted = await client.submit(payload())
        assert accepted["state"] == "queued"
        assert accepted["run_id"] == f"job-{accepted['job_id']}"
        result = await client.wait(accepted["job_id"])
        status = await client.job(accepted["job_id"], include_spec=True)
        return accepted, result, status
    accepted, result, status = with_server(tmp_path, body)
    assert result["state"] == "done"
    assert len(result["results"]) == 2
    assert result["best_cut"] == min(result["cuts"])
    assert status["spec"]["runs"] == 2
    assert status["spec"]["algorithm"] == "fm"


def test_result_conflicts_while_not_terminal(tmp_path):
    async def body(client, server):
        # No workers pull jobs if we stall the lone worker first.
        blocker = await client.submit(payload(index=0, runs=500))
        queued = await client.submit(payload(index=1, runs=1))
        try:
            await client.result(queued["job_id"])
        except ServiceError as exc:
            status = exc.status
        else:
            status = None
        await client.cancel(blocker["job_id"])
        await client.cancel(queued["job_id"])
        return status
    assert with_server(tmp_path, body, job_workers=1) == 409


def test_cancel_is_idempotent_over_http(tmp_path):
    async def body(client, server):
        job = await client.submit(payload(runs=300))
        first = await client.cancel(job["job_id"])
        second = await client.cancel(job["job_id"])
        final = await client.wait(job["job_id"])
        return first, second, final
    first, second, final = with_server(tmp_path, body, job_workers=1)
    assert final["state"] == "cancelled"
    assert second["state"] in ("queued", "running", "cancelled")


def test_schema_error_maps_to_400_with_field(tmp_path):
    async def body(client, server):
        errors = {}
        for name, bad in {
            "runs": payload(runs=0),
            "tenant": payload(tenant="no spaces!"),
            "algorithm": payload(algorithm="simulated-bogosort"),
        }.items():
            try:
                await client.submit(bad)
            except ServiceError as exc:
                errors[name] = (exc.status, exc.payload["error"].get("field"))
        return errors
    errors = with_server(tmp_path, body)
    assert errors == {
        "runs": (400, "runs"),
        "tenant": (400, "tenant"),
        "algorithm": (400, "algorithm"),
    }


def test_invalid_json_body_is_400(tmp_path):
    async def body(client, server):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.bound_port
        )
        raw = b"{not json"
        writer.write(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: " + str(len(raw)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + raw
        )
        await writer.drain()
        response = await reader.read(-1)
        writer.close()
        return response
    response = with_server(tmp_path, body)
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"not valid JSON" in response


def test_unknown_job_and_route_are_404(tmp_path):
    async def body(client, server):
        statuses = {}
        for name, call in {
            "job": client.job("j999999-cafecafecafe"),
            "result": client.result("j999999-cafecafecafe"),
            "route": client._request("GET", "/v1/nope"),
        }.items():
            try:
                await call
            except ServiceError as exc:
                statuses[name] = exc.status
        return statuses
    statuses = with_server(tmp_path, body)
    assert statuses == {"job": 404, "result": 404, "route": 404}


def test_wrong_method_is_405(tmp_path):
    async def body(client, server):
        try:
            await client._request("DELETE", "/v1/jobs")
        except ServiceError as exc:
            return exc.status
    assert with_server(tmp_path, body) == 405


def test_oversized_body_is_rejected(tmp_path):
    async def body(client, server):
        try:
            await client._request(
                "POST", "/v1/jobs", {"hgr": "x" * 4096}
            )
        except ServiceError as exc:
            return exc.status
    # max_body_bytes tiny: the request dies at framing, before JSON.
    assert with_server(tmp_path, body, max_body_bytes=1024) == 400


def test_list_jobs_filtering_over_http(tmp_path):
    async def body(client, server):
        a = await client.submit(payload(index=0, tenant="acme"))
        b = await client.submit(payload(index=1, tenant="zeta"))
        await client.wait(a["job_id"])
        await client.wait(b["job_id"])
        listing = await client.jobs()
        acme = await client.jobs(tenant="acme")
        done = await client.jobs(state="done")
        return listing, acme, done
    listing, acme, done = with_server(tmp_path, body)
    assert listing["count"] == 2
    assert acme["count"] == 1 and acme["jobs"][0]["tenant"] == "acme"
    assert done["count"] == 2


def test_sse_stream_over_http(tmp_path):
    async def body(client, server):
        job = await client.submit(payload(runs=2))
        events = []
        async for name, data in client.events(job["job_id"]):
            events.append((name, data))
            if name == "state" and data["state"] in (
                "done", "failed", "cancelled", "deadline"
            ):
                break
        return events
    events = with_server(tmp_path, body)
    names = {name for name, _ in events}
    assert "state" in names
    final = [d for n, d in events if n == "state"][-1]
    assert final["state"] == "done"
    # Progress frames carry the engine's counters end-to-end.
    progress = [d for n, d in events if n == "progress"]
    if progress:  # may race to done before any progress frame lands
        assert progress[-1]["total"] == 2


def test_sse_unknown_job_is_404(tmp_path):
    async def body(client, server):
        try:
            async for _ in client.events("j424242-missingcafe"):
                pass
        except ServiceError as exc:
            return exc.status
    assert with_server(tmp_path, body) == 404


def test_sse_late_join_on_done_job_replays_and_closes(tmp_path):
    async def body(client, server):
        job = await client.submit(payload(runs=1))
        await client.wait(job["job_id"])
        events = []
        async for name, data in client.events(job["job_id"]):
            events.append((name, data))
        return events  # stream must close itself after replay
    events = with_server(tmp_path, body)
    states = [d["state"] for n, d in events if n == "state"]
    assert states == ["done"]


def test_garbage_request_line_is_400(tmp_path):
    async def body(client, server):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.bound_port
        )
        writer.write(b"COMPLETE NONSENSE\r\n\r\n")
        await writer.drain()
        response = await reader.read(-1)
        writer.close()
        return response
    assert with_server(tmp_path, body).startswith(b"HTTP/1.1 400 ")


def test_stats_over_http(tmp_path):
    async def body(client, server):
        job = await client.submit(payload())
        await client.wait(job["job_id"])
        return await client.stats()
    stats = with_server(tmp_path, body)
    assert stats["jobs"]["done"] == 1
    assert stats["workers"]["job_workers"] == 2

def test_stop_with_open_sse_stream_does_not_hang(tmp_path):
    """Regression: ``wait_closed()`` on 3.12.1+ waits for in-flight
    handlers, so shutdown used to hang while an SSE client watched a
    still-running job.  Stop must end the stream and return."""
    async def main():
        server = ServiceServer(PartitionService(ServiceConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            job_workers=1,
            integrity_check=False,
        )))
        await server.start()
        client = ServiceClient(port=server.bound_port)
        job = await client.submit(payload(runs=500))
        attached = asyncio.Event()

        async def consume():
            async for _name, _data in client.events(job["job_id"]):
                attached.set()

        consumer = asyncio.create_task(consume())
        await asyncio.wait_for(attached.wait(), timeout=30)
        await asyncio.wait_for(server.stop(), timeout=60)
        await asyncio.wait_for(consumer, timeout=10)
    asyncio.run(main())


def test_submit_during_shutdown_is_503(tmp_path):
    async def body(client, server):
        await server.service.queue.close()  # shutdown has begun
        try:
            await client.submit(payload())
        except ServiceError as exc:
            return exc.status, exc.payload["error"]["message"]
    status, message = with_server(tmp_path, body)
    assert status == 503
    assert "shutting down" in message
