"""Subprocess run of the kill-and-restart load smoke (small scale).

The full acceptance run (1000 jobs) lives in ``scripts/load_smoke.py``
and the CI service lane; this keeps a scaled-down version of the same
crash-consistency proof inside the test suite.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

pytestmark = [pytest.mark.slow, pytest.mark.chaos]


def test_load_smoke_survives_sigkill(tmp_path):
    proc = subprocess.run(
        [
            sys.executable, str(REPO / "scripts" / "load_smoke.py"),
            "--jobs", "30", "--check",
            "--cache-dir", str(tmp_path / "cache"),
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"load smoke failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "zero lost work" in proc.stdout
    assert "bit-identical" in proc.stdout
