"""Guard layer through the service: shedding, deadlines, quarantine.

These drive the transport-free :class:`PartitionService` so the tests
stay deterministic: execution is gated on events (no timing races) and
quarantine trips are counted exactly.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.guard import OverloadedError, QuarantinedError
from repro.service import PartitionService, ServiceConfig
from repro.service.jobs import Job, job_id_for
from repro.service.recovery import ServiceJournal, jobs_journal_path
from repro.service.schemas import parse_job_spec

pytestmark = pytest.mark.slow


def payload(index: int = 0, runs: int = 2, **overrides):
    spec = {
        "generate": {
            "kind": "many_small", "size_range": [8, 14],
            "seed": 5, "index": index,
        },
        "algorithm": "fm",
        "runs": runs,
        "seed": 1000 + index,
    }
    spec.update(overrides)
    return spec


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        job_workers=2,
        integrity_check=False,
        quarantine_after=0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def wait_terminal(service, job_id, timeout=30.0):
    """Wait until the terminal state is *published* (the publish happens
    after the journal append, so a stop() right after this cannot race
    the terminal state out of the journal)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        job = service.get_job(job_id)
        published = service.bus._last.get(job_id, {}).get("state", {})
        if job.terminal and published.get("state") == job.state:
            return job
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"job {job_id} still {job.state}")
        await asyncio.sleep(0.01)


async def wait_for(predicate, timeout=10.0, message="condition"):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"{message} never became true")
        await asyncio.sleep(0.01)


def gate_execution(monkeypatch, gate: threading.Event):
    """Replace engine execution with a wait on ``gate`` (deterministic
    long-running jobs without timing assumptions)."""

    def _execute(self, job):
        gate.wait(timeout=30)
        base = job.spec.effective_seed()
        rows = [
            {
                "seed": base + i, "index": i, "seconds": 0.0,
                "source": "computed", "cached": False,
                "cut": 1.0, "passes": 1,
            }
            for i in range(job.spec.runs)
        ]
        return rows, False

    monkeypatch.setattr(PartitionService, "_execute", _execute)


def test_queue_depth_sheds_and_readyz_flips(tmp_path, monkeypatch):
    """/readyz degrades while the queue is at depth, recovers on drain."""
    gate = threading.Event()
    gate_execution(monkeypatch, gate)

    async def main():
        service = PartitionService(
            service_config(tmp_path, max_queue_depth=1, job_workers=1)
        )
        await service.start()
        try:
            assert service.readiness()["ready"] is True
            first = await service.submit(payload(index=0))
            # Wait for the worker to pull it so the depth slot frees.
            await wait_for(lambda: service.admission.queued == 0)
            second = await service.submit(payload(index=1))

            ready = service.readiness()
            assert ready["ready"] is False
            assert ready["checks"]["queue_headroom"] is False
            assert ready["retry_after"] >= 1

            with pytest.raises(OverloadedError) as excinfo:
                await service.submit(payload(index=2))
            assert excinfo.value.reason == "queue_depth"
            assert excinfo.value.retry_after >= 1
            stats = await service.stats()
            assert stats["guard"]["counters"]["shed_queue_depth"] == 1

            gate.set()
            await wait_terminal(service, first.job_id)
            await wait_terminal(service, second.job_id)
            assert service.readiness()["ready"] is True
            # Shed jobs never existed: only the two accepted ran.
            assert stats["total_jobs"] == 2
        finally:
            await service.stop()
    asyncio.run(main())


def test_tenant_inflight_cap(tmp_path, monkeypatch):
    gate = threading.Event()
    gate_execution(monkeypatch, gate)

    async def main():
        service = PartitionService(
            service_config(tmp_path, default_tenant_inflight=1)
        )
        await service.start()
        try:
            job = await service.submit(payload(index=0, tenant="a"))
            with pytest.raises(OverloadedError) as excinfo:
                await service.submit(payload(index=1, tenant="a"))
            assert excinfo.value.reason == "tenant_inflight"
            other = await service.submit(payload(index=2, tenant="b"))
            gate.set()
            await wait_terminal(service, job.job_id)
            await wait_terminal(service, other.job_id)
            # a's slot is back once its job finished.
            await service.submit(payload(index=3, tenant="a"))
        finally:
            await service.stop()
    asyncio.run(main())


def test_memory_shedding_blocks_new_admissions(tmp_path):
    async def main():
        # 1 KiB high water: any real process is above it immediately.
        service = PartitionService(
            service_config(tmp_path, memory_high_water_mb=0.001)
        )
        await service.start()
        try:
            with pytest.raises(OverloadedError) as excinfo:
                await service.submit(payload())
            assert excinfo.value.reason == "memory"
            ready = service.readiness()
            assert ready["ready"] is False
            assert ready["checks"]["memory"] is False
            memory = (await service.stats())["guard"]["memory"]
            assert memory["shedding"] is True
            assert memory["peak_rss_bytes"] > memory["high_water_bytes"]
        finally:
            await service.stop()
    asyncio.run(main())


def test_deadline_settles_as_deadline_state(tmp_path, monkeypatch):
    """Expiry mid-run drains the engine into the ``deadline`` state."""

    def _execute(self, job):
        # Cooperative engine stand-in: run until the cancel token fires.
        for _ in range(3000):
            if job.cancel_token.cancelled:
                return [], True
            threading.Event().wait(0.01)
        raise AssertionError("cancel token never fired")

    monkeypatch.setattr(PartitionService, "_execute", _execute)

    async def main():
        service = PartitionService(service_config(tmp_path, job_workers=1))
        await service.start()
        try:
            job = await service.submit(
                payload(runs=2, deadline_seconds=0.05)
            )
            done = await wait_terminal(service, job.job_id)
            assert done.state == "deadline"
            assert done.deadline_expired is True
            assert "deadline of 0.05s exceeded" in done.error
            assert "0/2 units completed" in done.error
            stats = await service.stats()
            assert stats["guard"]["counters"]["deadline_expired"] == 1
            assert stats["jobs"]["deadline"] == 1
            return done.status_payload()
        finally:
            await service.stop()
    payload_before = asyncio.run(main())

    # The terminal state recovers bit-identically — twice, to prove the
    # replay itself is deterministic.
    async def recovered_payload():
        service = PartitionService(service_config(tmp_path, job_workers=1))
        await service.start()
        try:
            job = service.get_job(payload_before["job_id"])
            assert job.state == "deadline"
            return job.status_payload()
        finally:
            await service.stop()
    first = asyncio.run(recovered_payload())
    second = asyncio.run(recovered_payload())
    # submitted_at is the replay's wall clock; everything journalled
    # must replay bit-identically.
    first.pop("submitted_at")
    second.pop("submitted_at")
    assert first == second
    assert first["state"] == "deadline"
    assert first["deadline_seconds"] == 0.05


def test_default_job_deadline_from_config(tmp_path, monkeypatch):
    def _execute(self, job):
        for _ in range(3000):
            if job.cancel_token.cancelled:
                return [], True
            threading.Event().wait(0.01)
        raise AssertionError("cancel token never fired")

    monkeypatch.setattr(PartitionService, "_execute", _execute)

    async def main():
        service = PartitionService(
            service_config(tmp_path, default_job_deadline=0.05)
        )
        await service.start()
        try:
            job = await service.submit(payload())  # no spec deadline
            assert job.deadline_seconds == 0.05
            done = await wait_terminal(service, job.job_id)
            assert done.state == "deadline"
        finally:
            await service.stop()
    asyncio.run(main())


def test_completed_job_is_never_reclassified_as_deadline(tmp_path):
    """A generous deadline on a fast job stays ``done``."""
    async def main():
        service = PartitionService(service_config(tmp_path))
        await service.start()
        try:
            job = await service.submit(
                payload(runs=1, deadline_seconds=3600.0)
            )
            done = await wait_terminal(service, job.job_id)
            assert done.state == "done"
            assert done.deadline_expired is False
        finally:
            await service.stop()
    asyncio.run(main())


def test_quarantine_trips_at_exactly_quarantine_after(tmp_path, monkeypatch):
    """Two consecutive failures trip (quarantine_after=2); a success in
    between resets the count; the third submission 409s up front."""
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:1")

    async def run_one(service, index=0):
        job = await service.submit(payload(index=index, runs=1))
        return await wait_terminal(service, job.job_id)

    async def main():
        service = PartitionService(service_config(
            tmp_path, use_cache=False, quarantine_after=2, job_workers=1,
        ))
        await service.start()
        try:
            fingerprint = parse_job_spec(payload(runs=1)).fingerprint()
            assert (await run_one(service)).state == "failed"
            assert service.quarantine.strikes(fingerprint) == 1

            # A success for the same fingerprint resets the count.
            monkeypatch.delenv("REPRO_FAULTS")
            assert (await run_one(service)).state == "done"
            assert service.quarantine.strikes(fingerprint) == 0

            monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:1")
            assert (await run_one(service)).state == "failed"
            assert service.quarantine.is_quarantined(fingerprint) is None
            assert (await run_one(service)).state == "failed"
            entry = service.quarantine.is_quarantined(fingerprint)
            assert entry is not None and entry["strikes"] == 2

            with pytest.raises(QuarantinedError) as excinfo:
                await service.submit(payload(runs=1))
            assert excinfo.value.fingerprint == fingerprint
            stats = await service.stats()
            assert stats["guard"]["counters"]["quarantine_trips"] == 1
            assert stats["guard"]["quarantine"]["quarantined"] == 1

            bundle = service.quarantine.load_bundle(fingerprint)
            assert bundle["diagnostics"]["spec"]["runs"] == 1
            assert "PermanentFaultError" in bundle["diagnostics"]["error"]
        finally:
            await service.stop()
    asyncio.run(main())


def test_crash_recovery_strike_can_quarantine_on_replay(tmp_path):
    """A job journalled ``running`` at crash time strikes its
    fingerprint on the next start; at quarantine_after=1 that trips the
    breaker and the job settles ``failed`` instead of re-running."""
    cache_dir = str(tmp_path / "cache")
    spec = parse_job_spec(payload(runs=1))
    job = Job(job_id=job_id_for(0, spec), spec=spec)
    journal = ServiceJournal(jobs_journal_path(cache_dir))
    journal.append_job(job, 0)
    journal.append_state(job.job_id, "queued")
    journal.append_state(job.job_id, "running")  # ...then SIGKILL
    journal.close()

    async def main():
        service = PartitionService(ServiceConfig(
            cache_dir=cache_dir, integrity_check=False, quarantine_after=1,
        ))
        await service.start()
        try:
            recovered = await wait_terminal(service, job.job_id)
            assert recovered.state == "failed"
            assert "quarantined" in recovered.error
            entry = service.quarantine.is_quarantined(spec.fingerprint())
            assert entry is not None
            assert entry["last_reason"] == "crash_recovery"
        finally:
            await service.stop()
    asyncio.run(main())


def test_quarantine_zero_disables_the_breaker(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,permanent:1")

    async def main():
        service = PartitionService(service_config(
            tmp_path, use_cache=False, quarantine_after=0, job_workers=1,
        ))
        await service.start()
        try:
            for index in range(3):
                job = await service.submit(payload(runs=1))
                done = await wait_terminal(service, job.job_id)
                assert done.state == "failed"
            fingerprint = parse_job_spec(payload(runs=1)).fingerprint()
            assert service.quarantine.strikes(fingerprint) == 0
        finally:
            await service.stop()
    asyncio.run(main())
