"""Submission hardening over HTTP: bad netlists, bad bodies, bad limits.

Regression coverage for the admission-path promise that every malformed
submission 400s at the door with a labelled origin — never a 500, never
a queued job that fails minutes later.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)

pytestmark = pytest.mark.slow


def with_server(tmp_path, body, **config_overrides):
    async def main():
        defaults = dict(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            job_workers=1,
            integrity_check=False,
        )
        defaults.update(config_overrides)
        server = ServiceServer(PartitionService(ServiceConfig(**defaults)))
        await server.start()
        client = ServiceClient(port=server.bound_port)
        try:
            return await body(client, server)
        finally:
            await server.stop()
    return asyncio.run(main())


async def raw_post(port: int, body: bytes) -> tuple:
    """POST raw bytes to /v1/jobs; returns (status, decoded payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            (
                "POST /v1/jobs HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode() + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), 15)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload.decode(errors="replace") or "null")


def hgr_payload(hgr: str) -> dict:
    return {"hgr": hgr, "algorithm": "fm", "runs": 1, "seed": 1}


def test_malformed_hgr_is_400_with_origin_label(tmp_path):
    async def body(client, server):
        with pytest.raises(ServiceError) as excinfo:
            # Header promises 2 nets; the second net line is garbage.
            await client.submit(hgr_payload("2 4\n1 2\nnot a net\n"))
        return excinfo.value
    error = with_server(tmp_path, body)
    assert error.status == 400
    message = error.payload["error"]["message"]
    assert "bad hgr payload" in message
    assert "<inline hgr>" in message  # the parser names the origin
    assert error.payload["error"]["field"] == "hgr"


def test_truncated_hgr_is_400_not_queued(tmp_path):
    async def body(client, server):
        with pytest.raises(ServiceError) as excinfo:
            await client.submit(hgr_payload("5 9\n1 2\n"))  # 4 nets short
        stats = await client.stats()
        return excinfo.value, stats
    error, stats = with_server(tmp_path, body)
    assert error.status == 400
    assert stats["total_jobs"] == 0  # rejected at the door


def test_oversized_header_counts_rejected_before_parsing(tmp_path):
    """A tiny body declaring a billion nodes must be refused from the
    header alone (the inline-parse path would otherwise try to build
    it)."""
    async def body(client, server):
        results = []
        for hgr in ("1 999999999\n1 2\n", "999999999 4\n1 2\n"):
            with pytest.raises(ServiceError) as excinfo:
                await client.submit(hgr_payload(hgr))
            results.append(excinfo.value)
        return results
    nodes_error, nets_error = with_server(tmp_path, body)
    assert nodes_error.status == 400
    assert "999999999 nodes" in nodes_error.payload["error"]["message"]
    assert "max" in nodes_error.payload["error"]["message"]
    assert nets_error.status == 400
    assert "999999999 nets" in nets_error.payload["error"]["message"]


def test_non_utf8_body_is_400_not_500(tmp_path):
    async def body(client, server):
        return await raw_post(
            server.bound_port, b'\xff\xfe{"algorithm": "fm"}'
        )
    status, payload = with_server(tmp_path, body)
    assert status == 400
    assert "not valid JSON" in payload["error"]["message"]


def test_truncated_json_body_is_400(tmp_path):
    async def body(client, server):
        return await raw_post(server.bound_port, b'{"hgr": "2 4')
    status, payload = with_server(tmp_path, body)
    assert status == 400


def test_bad_deadline_seconds_is_400_with_field(tmp_path):
    async def body(client, server):
        errors = []
        for bad in (0, -1, "soon", 1e9):
            spec = {
                "generate": {
                    "kind": "many_small", "size_range": [8, 14],
                    "seed": 1, "index": 0,
                },
                "deadline_seconds": bad,
            }
            with pytest.raises(ServiceError) as excinfo:
                await client.submit(spec)
            errors.append(excinfo.value)
        return errors
    errors = with_server(tmp_path, body)
    for error in errors:
        assert error.status == 400
        assert error.payload["error"]["field"] == "deadline_seconds"


def test_valid_hgr_with_comments_and_blank_lines_accepted(tmp_path):
    """The header precheck must skip ``%`` comments and blanks, not
    reject netlists that use them."""
    hgr = "% a comment\n\n2 4\n1 2\n3 4\n"
    async def body(client, server):
        accepted = await client.submit(hgr_payload(hgr))
        return await client.wait(accepted["job_id"])
    result = with_server(tmp_path, body)
    assert result["state"] == "done"
