"""EventBus semantics and SSE wire framing."""

from __future__ import annotations

import asyncio
import json

from repro.service.sse import (
    HEARTBEAT_FRAME,
    SUBSCRIBER_BUFFER,
    EventBus,
    format_sse,
)


def test_format_sse_frames():
    frame = format_sse("state", {"state": "done", "job_id": "j1"})
    assert frame.startswith(b"event: state\n")
    assert frame.endswith(b"\n\n")
    data_line = frame.decode().splitlines()[1]
    assert data_line.startswith("data: ")
    assert json.loads(data_line[len("data: "):]) == {
        "state": "done", "job_id": "j1",
    }


def test_subscriber_receives_live_events():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        bus.publish("j1", "progress", {"done": 1})
        bus.publish("j1", "state", {"state": "running"})
        return [await queue.get(), await queue.get()]
    items = asyncio.run(main())
    assert items[0] == ("progress", {"done": 1})
    assert items[1] == ("state", {"state": "running"})


def test_late_joiner_gets_latest_of_each_type_then_terminal():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        bus.publish("j1", "state", {"state": "running"})
        bus.publish("j1", "progress", {"done": 1})
        bus.publish("j1", "progress", {"done": 2})
        bus.publish("j1", "state", {"state": "done"})
        queue = bus.subscribe("j1")
        items = []
        while True:
            item = await asyncio.wait_for(queue.get(), timeout=5)
            if item is None:
                break
            items.append(item)
        return items
    items = asyncio.run(main())
    # Latest state + latest progress only, then the stream closes.
    assert ("state", {"state": "done"}) in items
    assert ("progress", {"done": 2}) in items
    assert ("progress", {"done": 1}) not in items


def test_terminal_state_closes_live_subscribers():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        bus.publish("j1", "state", {"state": "cancelled"})
        first = await queue.get()
        sentinel = await queue.get()
        return first, sentinel
    first, sentinel = asyncio.run(main())
    assert first == ("state", {"state": "cancelled"})
    assert sentinel is None


def test_slow_consumer_drops_oldest():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        for i in range(SUBSCRIBER_BUFFER + 50):
            bus.publish("j1", "progress", {"done": i})
        # Oldest events fell off; the newest survived.
        items = []
        while not queue.empty():
            items.append(queue.get_nowait())
        return items
    items = asyncio.run(main())
    assert len(items) == SUBSCRIBER_BUFFER
    assert items[-1] == ("progress", {"done": SUBSCRIBER_BUFFER + 49})
    assert items[0][1]["done"] == 50


def test_publish_threadsafe_crosses_threads():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        await asyncio.to_thread(
            bus.publish_threadsafe, "j1", "trace", {"event": "run_start"}
        )
        return await asyncio.wait_for(queue.get(), timeout=5)
    assert asyncio.run(main()) == ("trace", {"event": "run_start"})


def test_stream_yields_frames_and_heartbeats():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        frames = []

        async def consume():
            async for frame in bus.stream("j1", heartbeat=0.05):
                frames.append(frame)

        task = asyncio.create_task(consume())
        await asyncio.sleep(0.12)  # force at least one heartbeat
        bus.publish("j1", "state", {"state": "done"})
        await asyncio.wait_for(task, timeout=5)
        return frames
    frames = asyncio.run(main())
    assert HEARTBEAT_FRAME in frames
    assert any(b"event: state" in f for f in frames)


def test_unsubscribe_and_forget():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        bus.unsubscribe("j1", queue)
        bus.publish("j1", "progress", {"done": 1})
        bus.forget("j1")
        fresh = bus.subscribe("j1")
        return queue.qsize(), fresh.qsize()
    old_size, fresh_size = asyncio.run(main())
    assert old_size == 0  # unsubscribed before publishing
    assert fresh_size == 0  # forget dropped the replay state

def test_close_ends_open_streams_and_new_subscribers():
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        open_queue = bus.subscribe("j-running")  # job never goes terminal
        bus.publish("j-running", "state", {"state": "running"})
        assert await open_queue.get() == ("state", {"state": "running"})
        bus.close()
        # Existing subscriber is released with the close sentinel...
        assert await asyncio.wait_for(open_queue.get(), timeout=5) is None
        # ...and a late subscriber still gets replay, then the sentinel.
        late = bus.subscribe("j-running")
        assert await late.get() == ("state", {"state": "running"})
        assert await asyncio.wait_for(late.get(), timeout=5) is None
    asyncio.run(main())


def test_overflow_marker_surfaces_dropped_events():
    """A consumer that stalls past SUBSCRIBER_BUFFER sees an explicit
    ``overflow`` event carrying the loss count — never silent gaps."""
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        frames = []

        async def consume():
            async for frame in bus.stream("j1", heartbeat=60.0):
                frames.append(frame)

        consumer = asyncio.create_task(consume())
        await asyncio.sleep(0)  # let the consumer subscribe...
        # ...then flood without ever yielding to it: a never-draining
        # reader at publish time.
        for i in range(SUBSCRIBER_BUFFER + 50):
            bus.publish("j1", "progress", {"done": i})
        bus.publish("j1", "state", {"state": "done"})
        await asyncio.wait_for(consumer, timeout=10)
        return frames
    frames = asyncio.run(main())
    text = b"".join(frames).decode()
    assert "event: overflow" in text
    overflow_line = next(
        line for i, line in enumerate(text.splitlines())
        if text.splitlines()[i - 1] == "event: overflow"
    )
    marker = json.loads(overflow_line[len("data: "):])
    # 51 publishes beyond the buffer, one slot reclaimed for the
    # sentinel's terminal event: 52 drops, all accounted for.
    assert marker["dropped"] == marker["total_dropped"]
    assert marker["dropped"] >= 50
    # The marker precedes the surviving events; the stream still ends
    # with the terminal state.
    assert text.index("event: overflow") < text.index('"state":"done"')


def test_overflow_marker_counts_multiple_stalls():
    """Markers report deltas: a second stall yields a second marker
    with the incremental count and a running total."""
    async def main():
        bus = EventBus(asyncio.get_running_loop())
        queue = bus.subscribe("j1")
        for i in range(SUBSCRIBER_BUFFER + 10):
            bus.publish("j1", "progress", {"done": i})
        assert queue.dropped == 10
        # Drain a little, stall again.
        for _ in range(20):
            queue.get_nowait()
        for i in range(30):
            bus.publish("j1", "progress", {"done": 1000 + i})
        assert queue.dropped == 20
        return queue.dropped
    assert asyncio.run(main()) == 20
