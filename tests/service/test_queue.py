"""FairQueue: priority tiers, weighted fairness, cancellation, close."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import FairQueue, QueueClosed
from repro.service.jobs import Job
from repro.service.schemas import parse_job_spec


def make_job(job_id: str, tenant: str = "t", priority: int = 0) -> Job:
    spec = parse_job_spec({
        "generate": {"kind": "random", "nodes": 8, "nets": 10, "seed": 0},
        "tenant": tenant,
        "priority": priority,
    })
    return Job(job_id=job_id, spec=spec)


def drain(queue: FairQueue, count: int):
    async def inner():
        return [(await queue.get()).job_id for _ in range(count)]
    return inner()


def test_fifo_with_equal_tenants():
    async def main():
        queue = FairQueue()
        for i in range(5):
            await queue.put(make_job(f"j{i}"))
        return await drain(queue, 5)
    assert asyncio.run(main()) == [f"j{i}" for i in range(5)]


def test_priority_tiers_beat_fairness():
    async def main():
        queue = FairQueue()
        await queue.put(make_job("low", priority=0))
        await queue.put(make_job("high", priority=10))
        await queue.put(make_job("mid", priority=5))
        return await drain(queue, 3)
    assert asyncio.run(main()) == ["high", "mid", "low"]


def test_weighted_fairness_interleaves_the_flood():
    """A bulk submitter cannot starve a light tenant: after the flood,
    the light tenant's single job is dequeued within the first few."""
    async def main():
        queue = FairQueue()
        for i in range(20):
            await queue.put(make_job(f"bulk{i}", tenant="bulk"))
        await queue.put(make_job("light0", tenant="light"))
        return await drain(queue, 21)
    order = asyncio.run(main())
    # Start-time fairness: light enters at the current virtual time,
    # which equals bulk's *first* finish tag, so it lands near the front
    # rather than behind 20 queued bulk jobs.
    assert order.index("light0") <= 2


def test_higher_weight_gets_proportionally_more_service():
    async def main():
        queue = FairQueue({"heavy": 3.0, "light": 1.0})
        for i in range(12):
            await queue.put(make_job(f"h{i}", tenant="heavy"))
            await queue.put(make_job(f"l{i}", tenant="light"))
        return await drain(queue, 8)
    first_eight = asyncio.run(main())
    heavy = sum(1 for j in first_eight if j.startswith("h"))
    assert heavy >= 5  # ~3:1 service ratio in the prefix


def test_remove_withdraws_queued_job():
    async def main():
        queue = FairQueue()
        await queue.put(make_job("a"))
        await queue.put(make_job("b"))
        removed = await queue.remove("a")
        missing = await queue.remove("zzz")
        rest = await drain(queue, 1)
        return removed.job_id, missing, rest, len(queue)
    removed_id, missing, rest, depth = asyncio.run(main())
    assert removed_id == "a"
    assert missing is None
    assert rest == ["b"]
    assert depth == 0


def test_get_blocks_until_put():
    async def main():
        queue = FairQueue()

        async def producer():
            await asyncio.sleep(0.01)
            await queue.put(make_job("late"))

        task = asyncio.create_task(producer())
        job = await asyncio.wait_for(queue.get(), timeout=5)
        await task
        return job.job_id
    assert asyncio.run(main()) == "late"


def test_close_wakes_waiters_and_rejects_puts():
    async def main():
        queue = FairQueue()
        waiter = asyncio.create_task(queue.get())
        await asyncio.sleep(0)  # let the waiter block
        await queue.close()
        with pytest.raises(QueueClosed):
            await asyncio.wait_for(waiter, timeout=5)
        with pytest.raises(QueueClosed):
            await queue.put(make_job("x"))
    asyncio.run(main())


def test_duplicate_put_rejected():
    async def main():
        queue = FairQueue()
        await queue.put(make_job("dup"))
        with pytest.raises(ValueError):
            await queue.put(make_job("dup"))
    asyncio.run(main())


def test_bad_weight_and_cost_rejected():
    with pytest.raises(ValueError):
        FairQueue({"t": 0.0})

    async def main():
        queue = FairQueue()
        with pytest.raises(ValueError):
            await queue.put(make_job("x"), cost=0)
    asyncio.run(main())


def test_snapshot_reports_depth_and_tenants():
    async def main():
        queue = FairQueue({"vip": 2.0})
        await queue.put(make_job("a", tenant="vip"))
        await queue.put(make_job("b", tenant="std"))
        return await queue.snapshot()
    snap = asyncio.run(main())
    assert snap["depth"] == 2
    assert snap["per_tenant"] == {"vip": 1, "std": 1}
    assert snap["weights"]["vip"] == 2.0
    assert snap["weights"]["std"] == 1.0


def test_max_depth_bounds_puts():
    from repro.service import QueueFull

    async def main():
        queue = FairQueue(max_depth=1)
        await queue.put(make_job("j1"))
        with pytest.raises(QueueFull):
            await queue.put(make_job("j2"))
        # Recovery re-admission bypasses the bound explicitly.
        await queue.put(make_job("j2"), force=True)
        assert (await queue.snapshot())["max_depth"] == 1
        # Draining frees headroom.
        await queue.get()
        await queue.get()
        await queue.put(make_job("j3"))
    asyncio.run(main())


def test_zero_max_depth_is_unbounded():
    async def main():
        queue = FairQueue()
        for n in range(500):
            await queue.put(make_job(f"j{n}"))
        assert (await queue.snapshot())["depth"] == 500
    asyncio.run(main())


def test_negative_max_depth_rejected():
    with pytest.raises(ValueError):
        FairQueue(max_depth=-1)
