"""Job spec validation, canonicalization and unit building."""

from __future__ import annotations

import pytest

from repro.engine import seed_stream
from repro.hypergraph import io_ as netlist_io
from repro.hypergraph import small_instance
from repro.service.schemas import (
    JobSpec,
    SchemaError,
    build_graph,
    build_units,
    parse_job_spec,
)


def generate_payload(**overrides):
    payload = {
        "generate": {
            "kind": "many_small", "size_range": [8, 16],
            "seed": 3, "index": 2,
        },
        "algorithm": "fm",
        "runs": 2,
        "seed": 5,
    }
    payload.update(overrides)
    return payload


class TestParsing:
    def test_minimal_generate_spec(self):
        spec = parse_job_spec({"generate": {"kind": "random"}})
        assert spec.algorithm == "fm"
        assert spec.runs == 1
        assert spec.tenant == "default"

    def test_inline_hgr_spec(self):
        spec = parse_job_spec({"hgr": "2 3\n1 2\n2 3\n"})
        graph = build_graph(spec)
        assert graph.num_nodes == 3
        assert graph.num_nets == 2

    def test_payload_round_trips(self):
        spec = parse_job_spec(generate_payload(tenant="acme", priority=3))
        assert parse_job_spec(spec.payload()) == spec

    def test_hgr_payload_round_trips(self):
        spec = parse_job_spec({"hgr": "1 2\n1 2\n", "runs": 4})
        assert parse_job_spec(spec.payload()) == spec

    @pytest.mark.parametrize("payload,field", [
        ("not a dict", ""),
        ({}, "hgr"),                                     # neither graph key
        ({"hgr": "x", "generate": {"kind": "random"}}, "hgr"),  # both
        ({"hgr": ""}, "hgr"),
        ({"generate": {"kind": "nope"}}, "generate"),
        ({"generate": {"kind": "benchmark", "name": "zzz"}}, "generate"),
        ({"generate": {"kind": "many_small", "size_range": [2, 4]}},
         "generate"),
        ({"generate": {"kind": "random"}, "algorithm": "bogus"},
         "algorithm"),
        ({"generate": {"kind": "random"}, "runs": 0}, "runs"),
        ({"generate": {"kind": "random"}, "seed": "five"}, "seed"),
        ({"generate": {"kind": "random"}, "balance": "banana"}, "balance"),
        ({"generate": {"kind": "random"}, "balance": "70-80"}, "balance"),
        ({"generate": {"kind": "random"}, "tenant": "bad tenant!"},
         "tenant"),
        ({"generate": {"kind": "random"}, "unknown_key": 1}, "unknown_key"),
    ])
    def test_rejections_name_the_field(self, payload, field):
        with pytest.raises(SchemaError) as excinfo:
            parse_job_spec(payload)
        assert excinfo.value.field == field

    def test_bad_hgr_text_rejected_at_build(self):
        spec = parse_job_spec({"hgr": "totally not hgr"})
        with pytest.raises(SchemaError) as excinfo:
            build_graph(spec)
        assert excinfo.value.field == "hgr"

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError):
            parse_job_spec(generate_payload(runs=True))


class TestDeterminism:
    def test_effective_seed_explicit(self):
        assert parse_job_spec(generate_payload(seed=42)).effective_seed() == 42

    def test_effective_seed_derived_is_stable(self):
        payload = generate_payload()
        del payload["seed"]
        a = parse_job_spec(payload).effective_seed()
        b = parse_job_spec(dict(payload)).effective_seed()
        assert a == b

    def test_derived_seed_ignores_seed_field_only(self):
        # fingerprint blanks the seed, so explicit-seed variants of the
        # same job share a fingerprint but not an effective seed.
        with_seed = parse_job_spec(generate_payload(seed=9))
        without = parse_job_spec(
            {k: v for k, v in generate_payload().items() if k != "seed"}
        )
        assert with_seed.fingerprint() == without.fingerprint()
        assert with_seed.effective_seed() != without.effective_seed()

    def test_different_content_different_fingerprint(self):
        a = parse_job_spec(generate_payload())
        b = parse_job_spec(generate_payload(runs=3))
        assert a.fingerprint() != b.fingerprint()


class TestBuildUnits:
    def test_seeds_follow_seed_stream(self):
        spec = parse_job_spec(generate_payload(runs=4, seed=100))
        material = build_units(spec)
        assert [u.seed for u in material.units] == seed_stream(100, 4)

    def test_graph_matches_direct_generator_call(self):
        spec = parse_job_spec(generate_payload())
        material = build_units(spec)
        direct = small_instance((8, 16), 3, 2)
        assert material.graph.nets == direct.nets
        assert material.graph.num_nodes == direct.num_nodes

    def test_inline_hgr_units(self, tmp_path):
        direct = small_instance((8, 16), 1, 0)
        path = tmp_path / "g.hgr"
        netlist_io.write_hgr(direct, path)
        spec = parse_job_spec({"hgr": path.read_text(), "runs": 2})
        material = build_units(spec)
        assert material.graph.nets == direct.nets
        assert len(material.units) == 2

    def test_units_share_balance_and_partitioner(self):
        spec = parse_job_spec(generate_payload(runs=3))
        material = build_units(spec)
        assert len({id(u.partitioner) for u in material.units}) == 1
        assert len({id(u.balance) for u in material.units}) == 1


def test_jobspec_is_frozen():
    spec = parse_job_spec(generate_payload())
    with pytest.raises(AttributeError):
        spec.runs = 99  # type: ignore[misc]


def test_jobspec_direct_construction_defaults():
    spec = JobSpec(graph={"generate": {"kind": "random", "nodes": 16,
                                       "nets": 20, "seed": 0}})
    assert spec.balance == "50-50"
    assert spec.effective_seed() == int(spec.fingerprint()[:8], 16)


class TestDeadlineSeconds:
    def test_parsed_and_preserved(self):
        spec = parse_job_spec(generate_payload(deadline_seconds=2.5))
        assert spec.deadline_seconds == 2.5
        assert spec.payload()["deadline_seconds"] == 2.5

    def test_integer_coerced_to_float(self):
        spec = parse_job_spec(generate_payload(deadline_seconds=30))
        assert spec.deadline_seconds == 30.0

    def test_absent_deadline_is_omitted_from_payload(self):
        """No ``deadline_seconds: null`` key: specs submitted before the
        field existed keep their exact fingerprints and derived seeds."""
        spec = parse_job_spec(generate_payload())
        assert spec.deadline_seconds is None
        assert "deadline_seconds" not in spec.payload()

    def test_deadline_changes_the_fingerprint(self):
        plain = parse_job_spec(generate_payload())
        bounded = parse_job_spec(generate_payload(deadline_seconds=5.0))
        assert plain.fingerprint() != bounded.fingerprint()

    @pytest.mark.parametrize(
        "bad", [0, -1, 1e9, "soon", True, float("nan")]
    )
    def test_bad_deadlines_rejected(self, bad):
        with pytest.raises(SchemaError) as excinfo:
            parse_job_spec(generate_payload(deadline_seconds=bad))
        assert excinfo.value.field == "deadline_seconds"


class TestHgrHeaderCaps:
    def hgr_payload(self, hgr):
        return {"hgr": hgr, "algorithm": "fm", "runs": 1, "seed": 1}

    def test_oversized_node_count_rejected_from_header(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_job_spec(self.hgr_payload("1 999999999\n1 2\n"))
        assert excinfo.value.field == "hgr"
        assert "999999999 nodes" in str(excinfo.value)

    def test_oversized_net_count_rejected_from_header(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_job_spec(self.hgr_payload("999999999 4\n1 2\n"))
        assert excinfo.value.field == "hgr"
        assert "999999999 nets" in str(excinfo.value)

    def test_reasonable_header_passes_the_precheck(self):
        spec = parse_job_spec(self.hgr_payload("2 4\n1 2\n3 4\n"))
        assert build_graph(spec).num_nodes == 4

    def test_comments_and_blanks_skipped_before_header(self):
        spec = parse_job_spec(
            self.hgr_payload("% comment\n\n2 4\n1 2\n3 4\n")
        )
        assert build_graph(spec).num_nodes == 4

    def test_malformed_header_deferred_to_the_real_parser(self):
        """The precheck only rejects what it can prove is oversized;
        everything else stays the parser's job (full error context)."""
        with pytest.raises(SchemaError) as excinfo:
            build_graph(parse_job_spec(self.hgr_payload("junk header\n")))
        assert "bad hgr payload" in str(excinfo.value)
