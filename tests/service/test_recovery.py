"""Jobs journal durability and restart replay."""

from __future__ import annotations

import json

from repro.engine.records import checksum_ok, seal
from repro.service.jobs import Job, job_id_for
from repro.service.recovery import (
    ServiceJournal,
    jobs_journal_path,
    recover,
)
from repro.service.schemas import parse_job_spec


def make_job(seq: int, runs: int = 1) -> Job:
    spec = parse_job_spec({
        "generate": {"kind": "random", "nodes": 8, "nets": 10, "seed": seq},
        "runs": runs,
    })
    return Job(job_id=job_id_for(seq, spec), spec=spec)


def write_history(cache_dir, transitions):
    """Journal jobs 0..n-1, each with the given state transitions."""
    journal = ServiceJournal(jobs_journal_path(cache_dir))
    jobs = []
    for seq, states in enumerate(transitions):
        job = make_job(seq)
        journal.append_job(job, seq)
        for state in states:
            journal.append_state(job.job_id, state)
        jobs.append(job)
    journal.close()
    return jobs


def test_lines_are_sealed(tmp_path):
    write_history(tmp_path, [["queued"]])
    lines = jobs_journal_path(tmp_path).read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert checksum_ok(json.loads(line))


def test_replay_restores_states(tmp_path):
    jobs = write_history(tmp_path, [
        ["queued", "running", "done"],
        ["queued", "running"],
        ["queued"],
        ["queued", "running", "failed"],
        ["queued", "cancelled"],
    ])
    state = recover(tmp_path)
    finished = {j.job_id: j.state for j in state.finished}
    pending = [j.job_id for j in state.pending]
    assert finished == {
        jobs[0].job_id: "done",
        jobs[3].job_id: "failed",
        jobs[4].job_id: "cancelled",
    }
    # Interrupted (running) and never-started jobs both come back
    # queued, in original submission order, flagged as recovered.
    assert pending == [jobs[1].job_id, jobs[2].job_id]
    assert all(j.recovered for j in state.pending)
    assert all(j.state == "queued" for j in state.pending)
    assert state.max_seq == 4


def test_replay_is_idempotent_under_duplicates(tmp_path):
    """Re-appending the same job and state records changes nothing —
    the at-least-once journalling discipline must be safe to replay."""
    journal = ServiceJournal(jobs_journal_path(tmp_path))
    job = make_job(0)
    for _ in range(3):
        journal.append_job(job, 0)
        journal.append_state(job.job_id, "queued")
        journal.append_state(job.job_id, "running")
    journal.append_state(job.job_id, "done")
    journal.append_state(job.job_id, "done")
    journal.close()

    state = recover(tmp_path)
    assert len(state.finished) == 1
    assert state.finished[0].state == "done"
    assert not state.pending
    assert state.max_seq == 0


def test_torn_final_line_is_dropped(tmp_path):
    write_history(tmp_path, [["queued", "running", "done"], ["queued"]])
    path = jobs_journal_path(tmp_path)
    # Simulate a crash mid-append: a torn, unchecksummed fragment.
    with open(path, "a") as fh:
        fh.write('{"kind": "state", "job_id": "j0000')
    state = recover(tmp_path)
    assert state.total == 2  # both jobs intact, fragment ignored


def test_checksum_failing_line_is_dropped(tmp_path):
    jobs = write_history(tmp_path, [["queued", "running", "done"]])
    path = jobs_journal_path(tmp_path)
    # A record with a *valid-looking* but wrong checksum: a bit flip.
    bogus = seal({"kind": "state", "job_id": jobs[0].job_id,
                  "state": "failed"})
    bogus["state"] = "done"  # content no longer matches the seal
    with open(path, "a") as fh:
        fh.write(json.dumps(bogus) + "\n")
    state = recover(tmp_path)
    assert state.finished[0].state == "done"


def test_unknown_records_are_counted_not_fatal(tmp_path):
    write_history(tmp_path, [["queued", "running", "done"]])
    path = jobs_journal_path(tmp_path)
    with open(path, "a") as fh:
        fh.write(json.dumps(seal({"kind": "mystery"})) + "\n")
        fh.write(json.dumps(seal({
            "kind": "state", "job_id": "no-such-job", "state": "done",
        })) + "\n")
    state = recover(tmp_path)
    assert state.total == 1
    assert state.skipped == 2


def test_recover_missing_journal_is_empty(tmp_path):
    state = recover(tmp_path)
    assert state.total == 0
    assert state.max_seq == -1


def test_replayed_ids_match_submission_ids(tmp_path):
    """Deterministic ids: replay regenerates what submission created."""
    job = make_job(7)
    assert job.job_id == job_id_for(7, job.spec)
    assert job.job_id.startswith("j000007-")


def test_journal_write_failure_is_counted_not_raised(tmp_path):
    journal = ServiceJournal(jobs_journal_path(tmp_path))
    job = make_job(0)
    journal.append_job(job, 0)
    # Sabotage the handle: further appends must not raise.
    journal._fh.close()
    journal.append_state(job.job_id, "running")
    assert journal.errors >= 1
    journal._fh = None  # reopen path
    journal.append_state(job.job_id, "done")
    journal.close()
    state = recover(tmp_path)
    assert state.finished and state.finished[0].state == "done"
