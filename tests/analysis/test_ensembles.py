"""Tests for ensemble solving: tail fits, restart policies, determinism."""

import math
import random

import pytest

from repro.analysis import (
    EmpiricalCDF,
    RestartPolicy,
    empirical_cdf,
    ensemble_solve,
    fit_weibull_tail,
    probability_of_improvement,
)
from repro.core import PropPartitioner
from repro.multirun import run_many
from repro.testing.golden import CIRCUITS, build_circuit


def _weibull_sample(n, location, scale, shape, seed=7):
    """Deterministic synthetic draws from a 3-parameter Weibull."""
    rng = random.Random(seed)
    return [
        location + scale * (-math.log(1.0 - rng.random())) ** (1.0 / shape)
        for _ in range(n)
    ]


class TestEmpiricalCDF:
    def test_basic(self):
        cdf = empirical_cdf([3, 1, 2, 2])
        assert cdf(0) == 0.0
        assert cdf(1) == 0.25
        assert cdf(2) == 0.75
        assert cdf(3) == 1.0
        assert cdf(100) == 1.0

    def test_quantile(self):
        cdf = empirical_cdf([10, 20, 30, 40])
        assert cdf.quantile(0.0) == 10
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(0.5) == 20
        assert cdf.quantile(1.0) == 40
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_resolution(self):
        assert empirical_cdf([10, 12, 17]).resolution == 2
        assert empirical_cdf([5, 5, 5]).resolution == 1.0  # no gaps

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(values=())


class TestWeibullTailFit:
    def test_recovers_synthetic_parameters(self):
        sample = _weibull_sample(40, location=100, scale=20, shape=1.5)
        fit = fit_weibull_tail(sample)
        assert fit is not None
        # Grid-based location estimation: generous but meaningful bounds.
        assert 95 <= fit.location <= min(sample)
        assert 0.8 <= fit.shape <= 2.5
        assert fit.r_squared > 0.9
        assert fit.sample_size == 40

    def test_cdf_zero_below_location(self):
        fit = fit_weibull_tail(_weibull_sample(30, 50, 10, 1.2))
        assert fit.cdf(fit.location) == 0.0
        assert fit.cdf(fit.location - 5) == 0.0
        assert 0.0 < fit.cdf(fit.location + 5) < 1.0

    def test_confidence_band_brackets(self):
        sample = _weibull_sample(30, 100, 20, 1.5)
        fit = fit_weibull_tail(sample)
        lo, hi = fit.confidence_band(min(sample))
        assert lo == fit.location
        assert lo <= hi <= min(sample)

    def test_degenerate_inputs_return_none(self):
        assert fit_weibull_tail([]) is None
        assert fit_weibull_tail([1, 2]) is None          # too few
        assert fit_weibull_tail([5] * 10) is None        # no spread
        assert fit_weibull_tail([1, 2, 3, 4]) is None    # below minimum

    def test_deterministic(self):
        sample = _weibull_sample(25, 80, 15, 2.0)
        assert fit_weibull_tail(sample) == fit_weibull_tail(sample)


class TestProbabilityOfImprovement:
    def test_empty_population_certain(self):
        assert probability_of_improvement([]) == 1.0

    def test_bounded_by_rank_statistic(self):
        sample = _weibull_sample(20, 100, 20, 1.5)
        p = probability_of_improvement(sample)
        assert 0.0 <= p <= 1.0 / (len(sample) + 1)

    def test_all_ties_doubly_unlikely(self):
        # No tail fit possible; the fallback squares the rank bound.
        cuts = [30.0] * 9
        assert probability_of_improvement(cuts) == pytest.approx(
            (1 / 10) * (1 / 10)
        )

    def test_concentration_shrinks_probability(self):
        # A population concentrated at its best should report a smaller
        # improvement probability than a dispersed one of the same size.
        concentrated = [30.0, 30.0, 30.0, 31.0, 30.0, 30.0, 31.0, 30.0]
        dispersed = [30.0, 45.0, 38.0, 52.0, 33.0, 47.0, 41.0, 36.0]
        assert probability_of_improvement(concentrated) < (
            probability_of_improvement(dispersed)
        )


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(budget=0)
        with pytest.raises(ValueError):
            RestartPolicy(budget=5, min_runs=0)
        with pytest.raises(ValueError):
            RestartPolicy(budget=5, max_seconds=0)

    def test_empty_prefix_continues(self):
        decision = RestartPolicy(budget=10).decide([])
        assert not decision.stop
        assert decision.p_beat == 1.0

    def test_target_reached_wins(self):
        policy = RestartPolicy(budget=10, target=25.0)
        decision = policy.decide([30.0, 24.0])
        assert decision.stop and decision.reason == "target_reached"

    def test_budget_exhausted(self):
        policy = RestartPolicy(budget=3)
        decision = policy.decide([30.0, 28.0, 29.0])
        assert decision.stop and decision.reason == "budget_exhausted"

    def test_time_exhausted(self):
        policy = RestartPolicy(budget=100, max_seconds=5.0)
        decision = policy.decide([30.0, 28.0], elapsed_seconds=6.0)
        assert decision.stop and decision.reason == "time_exhausted"

    def test_min_runs_floor(self):
        policy = RestartPolicy(budget=100, threshold=1e9, min_runs=4)
        # Threshold absurdly high: would converge instantly — but the
        # floor keeps it running below min_runs.
        decision = policy.decide([30.0, 30.0, 30.0])
        assert not decision.stop and decision.reason == "continue"

    def test_converged(self):
        policy = RestartPolicy(budget=20, threshold=0.5, min_runs=4)
        decision = policy.decide([30.0] * 8)
        assert decision.stop and decision.reason == "converged"
        assert decision.expected_better_runs < 0.5

    def test_zero_threshold_reproduces_fixed_budget(self):
        policy = RestartPolicy(budget=6, threshold=0.0, min_runs=1)
        for n in range(1, 6):
            assert not policy.decide([30.0] * n).stop
        assert policy.decide([30.0] * 6).reason == "budget_exhausted"

    def test_decisions_are_pure(self):
        policy = RestartPolicy(budget=20)
        cuts = _weibull_sample(8, 30, 5, 1.5)
        assert policy.decide(cuts) == policy.decide(cuts)


class TestEnsembleSolve:
    @pytest.fixture(scope="class")
    def circuit(self):
        return build_circuit(CIRCUITS["hier150"])

    def test_repeat_invocations_identical(self, circuit):
        policy = RestartPolicy(budget=12, threshold=0.5, min_runs=4)
        a = ensemble_solve(PropPartitioner(), circuit, policy, base_seed=0)
        b = ensemble_solve(PropPartitioner(), circuit, policy, base_seed=0)
        assert a.outcome.cuts == b.outcome.cuts
        assert a.best_cut == b.best_cut
        assert a.stop_reason == b.stop_reason
        assert a.runs_used == b.runs_used
        assert a.decision == b.decision

    def test_engine_matches_sequential(self, circuit):
        from repro.engine import Engine, EngineConfig

        policy = RestartPolicy(budget=12, threshold=0.5, min_runs=4)
        seq = ensemble_solve(PropPartitioner(), circuit, policy, base_seed=0)
        for workers in (0, 2):
            engine = Engine(EngineConfig(workers=workers, use_cache=False))
            eng = ensemble_solve(
                PropPartitioner(), circuit, policy, base_seed=0,
                engine=engine,
            )
            assert eng.outcome.cuts == seq.outcome.cuts
            assert eng.best_cut == seq.best_cut
            assert eng.stop_reason == seq.stop_reason
            assert eng.runs_used == seq.runs_used

    def test_early_stop_is_not_an_interrupt(self, circuit):
        from repro.engine import Engine, EngineConfig

        engine = Engine(EngineConfig(workers=0, use_cache=False))
        policy = RestartPolicy(budget=12, threshold=0.5, min_runs=4)
        result = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0, engine=engine
        )
        assert result.runs_saved > 0
        assert engine.stopped_early
        assert not engine.interrupted
        assert not result.outcome.interrupted

    def test_resume_reproduces_stop_decision(self, circuit, tmp_path):
        from repro.engine import Engine, EngineConfig

        policy = RestartPolicy(budget=12, threshold=0.5, min_runs=4)
        config = EngineConfig(
            workers=0, cache_dir=str(tmp_path), use_cache=False
        )
        first = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0,
            engine=Engine(config), run_id="ens-resume",
        )
        resumed_engine = Engine(config)
        second = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0,
            engine=resumed_engine, run_id="ens-resume", resume=True,
        )
        assert second.outcome.cuts == first.outcome.cuts
        assert second.best_cut == first.best_cut
        assert second.stop_reason == first.stop_reason
        assert second.runs_used == first.runs_used
        # Every fold-relevant run came from the journal, none recomputed.
        assert resumed_engine.stats.journal_hits >= first.runs_used
        assert resumed_engine.stats.executed == 0

    def test_policy_saves_runs_on_corpus(self):
        """Acceptance: on >= 2 corpus instances the policy reaches the
        known best-of-20 cut using measurably fewer runs."""
        budget = 20
        policy = RestartPolicy(budget=budget, threshold=0.5, min_runs=4)
        saved_somewhere = 0
        for name in ("hier150", "t6@0.05"):
            graph = build_circuit(CIRCUITS[name])
            full = run_many(
                PropPartitioner(), graph, runs=budget, base_seed=0
            )
            result = ensemble_solve(
                PropPartitioner(), graph, policy, base_seed=0
            )
            assert result.best_cut == full.best_cut, name
            assert result.runs_used < budget, name
            assert result.runs_saved > 0, name
            saved_somewhere += 1
        assert saved_somewhere == 2

    def test_telemetry_counters(self, circuit):
        from repro.telemetry import MemoryRecorder

        recorder = MemoryRecorder()
        policy = RestartPolicy(budget=12, threshold=0.5, min_runs=4)
        result = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0,
            recorder=recorder,
        )
        totals = recorder.counter_totals
        assert totals["ensemble_runs_used"] == result.runs_used
        assert totals["ensemble_runs_saved"] == result.runs_saved
        assert totals[f"ensemble_stop_{result.stop_reason}"] == 1

    def test_budget_exhausted_when_stopping_disabled(self, circuit):
        policy = RestartPolicy(budget=5, threshold=0.0, min_runs=1)
        result = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0
        )
        assert result.runs_used == 5
        assert result.runs_saved == 0
        assert result.stop_reason == "budget_exhausted"

    def test_target_short_circuits(self, circuit):
        # Any cut reaches a huge target on run 1 (min_runs floor ignored
        # for target hits).
        policy = RestartPolicy(budget=10, target=1e9, min_runs=4)
        result = ensemble_solve(
            PropPartitioner(), circuit, policy, base_seed=0
        )
        assert result.stop_reason == "target_reached"
        assert result.runs_used == 1


class TestRunManyPolicyPath:
    def test_sequential_policy_stops_and_records_reason(self):
        from repro.testing import EchoPartitioner

        graph = build_circuit(CIRCUITS["rand101"])
        policy = RestartPolicy(budget=10, target=2.0, min_runs=1)
        # EchoPartitioner: cut == seed, so target 2.0 is hit on seed<=2.
        outcome = run_many(
            EchoPartitioner(), graph, runs=10, base_seed=0, policy=policy
        )
        assert outcome.stop_reason == "target_reached"
        assert outcome.cuts == [0.0]

    def test_engine_policy_discards_stragglers(self):
        from repro.engine import Engine, EngineConfig
        from repro.testing import EchoPartitioner

        graph = build_circuit(CIRCUITS["rand101"])
        policy = RestartPolicy(budget=10, target=3.0, min_runs=1)
        engine = Engine(EngineConfig(workers=2, use_cache=False))
        outcome = run_many(
            EchoPartitioner(), graph, runs=10, base_seed=0,
            engine=engine, policy=policy,
        )
        # Deterministic fold: exactly the seed-order prefix up to the
        # first target hit, regardless of pool completion order.
        assert outcome.cuts == [0.0]
        assert outcome.stop_reason == "target_reached"

    def test_errors_fold_without_policy_decision(self):
        from repro.engine import Engine, EngineConfig
        from repro.testing import FlakyPartitioner

        graph = build_circuit(CIRCUITS["rand101"])
        policy = RestartPolicy(budget=6, target=2.0, min_runs=1)
        engine = Engine(
            EngineConfig(workers=0, use_cache=False, on_error="collect")
        )
        outcome = run_many(
            FlakyPartitioner(failing_seeds=(0, 1)), graph, runs=6,
            base_seed=0, engine=engine, policy=policy,
        )
        # Seeds 0,1 fail (collected, no stop decision for them); seed 2
        # echoes cut 2.0 and hits the target.
        assert len(outcome.errors) == 2
        assert outcome.cuts == [2.0]
        assert outcome.stop_reason == "target_reached"
