"""Degenerate-input behavior across the analysis layer.

Pins the edge cases the ISSUE-9 fix sweep touched: all-tie paired
comparisons, single-value histograms, zero-count histogram bins, and
the explicit rejection paths of the power-law fit.
"""

import pytest

from repro.analysis import ascii_histogram, fit_power_law, head_to_head


class TestHeadToHeadTies:
    def test_all_ties_is_maximally_indecisive(self):
        result = head_to_head([10.0, 20.0, 30.0], [10.0, 20.0, 30.0])
        assert result.wins == 0
        assert result.losses == 0
        assert result.ties == 3
        # No decisive pairs: the sign test cannot reject anything.
        assert result.sign_test_p == 1.0
        assert not result.decisive
        # Wilcoxon is undefined on zero non-tie differences.
        assert result.wilcoxon_p is None
        assert result.mean_improvement_percent == 0.0

    def test_few_decisive_pairs_skip_wilcoxon(self):
        # 4 non-tie differences: below the 5-diff floor for Wilcoxon.
        a = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        b = [11.0, 19.0, 31.0, 39.0, 50.0, 60.0]
        result = head_to_head(a, b)
        assert result.wins == 2 and result.losses == 2
        assert result.wilcoxon_p is None
        assert result.sign_test_p == 1.0

    def test_all_zero_cuts_do_not_divide_by_zero(self):
        result = head_to_head([0.0, 0.0], [0.0, 0.0])
        assert result.mean_improvement_percent == 0.0
        assert result.sign_test_p == 1.0


class TestAsciiHistogramDegenerate:
    def test_equal_min_max_single_bar(self):
        out = ascii_histogram([42.0] * 7)
        assert out.count("\n") == 0
        assert "all equal" in out
        assert "7 runs" in out
        assert "#" in out

    def test_zero_count_bins_render_empty(self):
        # Two far-apart clusters leave interior bins empty; those lines
        # must render without bars or counts instead of crashing.
        cuts = [1.0, 1.0, 1.0, 100.0]
        out = ascii_histogram(cuts, bins=4, width=10)
        lines = out.splitlines()
        assert len(lines) == 4
        empty = [ln for ln in lines if "#" not in ln]
        assert len(empty) == 2
        for ln in empty:
            assert ln.rstrip().endswith("|")

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0, 2.0], bins=0)
        with pytest.raises(ValueError):
            ascii_histogram([1.0, 2.0], width=0)


class TestFitPowerLawDegenerate:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 2 points"):
            fit_power_law([10.0], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            fit_power_law([1.0, 2.0], [1.0])

    def test_non_positive_data(self):
        with pytest.raises(ValueError, match="positive data"):
            fit_power_law([0.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="positive data"):
            fit_power_law([1.0, 2.0], [-1.0, 2.0])

    def test_identical_xs_degenerate_regression(self):
        with pytest.raises(ValueError, match="two distinct x values"):
            fit_power_law([5.0, 5.0, 5.0], [1.0, 2.0, 3.0])

    def test_exact_law_recovered(self):
        # Sanity guard alongside the rejections: y = 2 x^1.5 exactly.
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [2.0 * x ** 1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
