"""Tests for gain-prediction diagnostics."""

import pytest

from repro.analysis import (
    MoveSample,
    analyze_prediction,
    collect_move_samples,
    gain_prediction_report,
)
from repro.hypergraph import hierarchical_circuit


@pytest.fixture(scope="module")
def circuit():
    return hierarchical_circuit(120, 130, 470, seed=5)


class TestCollection:
    def test_samples_collected(self, circuit):
        samples = collect_move_samples(circuit, seed=0)
        assert len(samples) >= circuit.num_nodes  # >= one full pass
        first = samples[0]
        assert first.pass_index == 0
        assert 0 <= first.node < circuit.num_nodes

    def test_deterministic(self, circuit):
        a = collect_move_samples(circuit, seed=3)
        b = collect_move_samples(circuit, seed=3)
        assert a == b

    def test_pass_indices_monotone(self, circuit):
        samples = collect_move_samples(circuit, seed=0)
        indices = [s.pass_index for s in samples]
        assert indices == sorted(indices)

    def test_observer_does_not_change_result(self, circuit):
        """Instrumentation must be observation-only."""
        from repro.core import PropPartitioner

        plain = PropPartitioner().partition(circuit, seed=4)
        samples = collect_move_samples(circuit, seed=4)
        realized = sum(
            s.immediate_gain
            for s in samples
        )
        # total tentative-gain bookkeeping is self-consistent with a
        # normal run on the same seed (same tentative move count)
        assert len(samples) == plain.stats["tentative_moves"]


class TestAnalysis:
    def test_report_fields(self, circuit):
        report = gain_prediction_report(circuit, seed=0)
        assert report.num_moves > 0
        assert 0.0 <= report.negative_immediate_fraction <= 1.0
        if report.spearman_rho is not None:
            assert -1.0 <= report.spearman_rho <= 1.0

    def test_selection_gain_predicts_immediate(self, circuit):
        """Probabilistic and immediate gains must correlate positively —
        they estimate related quantities — without being identical (the
        whole point is they differ on the lookahead component)."""
        report = gain_prediction_report(circuit, seed=0)
        assert report.spearman_rho is not None
        assert report.spearman_rho > 0.3

    def test_negative_immediate_moves_exist(self, circuit):
        """Sec. 3: PROP deliberately makes moves whose immediate gain is
        negative, expecting future payoff."""
        report = gain_prediction_report(circuit, seed=0)
        assert report.negative_immediate_fraction > 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            analyze_prediction([])

    def test_degenerate_samples(self):
        samples = [MoveSample(0, 0, 1.0, 1.0)] * 3
        report = analyze_prediction(samples)
        assert report.spearman_rho is None  # too few / constant
        assert report.negative_immediate_fraction == 0.0

    def test_spearman_attribute_exercised(self):
        """Regression: the rho path must use an attribute that exists on
        the declared scipy floor (>= 1.7: ``.correlation``, not the
        1.9-only ``.statistic``) — and produce the right value."""
        # 8 first-pass samples, perfectly rank-correlated.
        samples = [
            MoveSample(0, i, float(i), float(2 * i)) for i in range(8)
        ]
        report = analyze_prediction(samples)
        assert report.spearman_rho == pytest.approx(1.0)
        # And anti-correlated for good measure.
        inverted = [
            MoveSample(0, i, float(i), float(-i)) for i in range(8)
        ]
        assert analyze_prediction(inverted).spearman_rho == pytest.approx(
            -1.0
        )


class TestPortfolio:
    """Per-instance algorithm selection (the k-NN portfolio model)."""

    @staticmethod
    def _observation(circuit, algorithm, cut, nodes=100):
        from repro.analysis import InstanceFeatures, PortfolioObservation

        features = InstanceFeatures(
            nodes=nodes,
            nets=nodes,
            pins=3 * nodes,
            mean_net_size=3.0,
            mean_degree=3.0,
            degree_variance=1.0,
        )
        return PortfolioObservation(
            circuit=circuit,
            algorithm=algorithm,
            features=features,
            normalized_cut=cut,
        )

    def _model(self):
        from repro.analysis import PortfolioModel

        obs = [
            self._observation("small", "fm", 0.30, nodes=50),
            self._observation("small", "prop", 0.20, nodes=50),
            self._observation("big", "fm", 0.10, nodes=5000),
            self._observation("big", "prop", 0.25, nodes=5000),
        ]
        return PortfolioModel(observations=obs, k=1)

    def test_instance_features(self, circuit):
        from repro.analysis import instance_features

        features = instance_features(circuit)
        assert features.nodes == circuit.num_nodes
        assert features.nets == circuit.num_nets
        assert features.pins == circuit.num_pins
        assert features.mean_net_size == pytest.approx(
            circuit.num_pins / circuit.num_nets
        )
        assert len(features.vector()) == 6
        assert instance_features(circuit) == instance_features(circuit)

    def test_nearest_neighbor_drives_selection(self):
        from repro.analysis import instance_features
        from repro.hypergraph import hierarchical_circuit

        model = self._model()
        tiny = hierarchical_circuit(40, 44, 160, seed=2)
        # Log-scaled size features: the geometric midpoint of the 50-
        # and 5000-node training circuits is 500 nodes, so 2000 nodes
        # lands firmly on the "big" side.
        huge = hierarchical_circuit(2000, 2200, 8000, seed=2)
        # Nearest to "small" (prop wins there), nearest to "big" (fm).
        assert model.select(tiny) == "prop"
        assert model.select(huge) == "fm"
        ranked = model.rank(tiny)
        assert [name for name, _ in ranked] == ["prop", "fm"]
        assert ranked[0][1] <= ranked[1][1]

    def test_ties_break_by_name(self):
        from repro.analysis import PortfolioModel

        obs = [
            self._observation("c", "zeta", 0.5),
            self._observation("c", "alpha", 0.5),
        ]
        model = PortfolioModel(observations=obs, k=1)
        from repro.hypergraph import hierarchical_circuit

        graph = hierarchical_circuit(40, 44, 160, seed=2)
        assert model.select(graph) == "alpha"

    def test_json_round_trip_is_byte_stable(self, tmp_path):
        from repro.analysis import PortfolioModel

        model = self._model()
        text = model.to_json()
        clone = PortfolioModel.from_json(text)
        assert clone.to_json() == text
        path = tmp_path / "model.json"
        model.save(str(path))
        assert PortfolioModel.load(str(path)).to_json() == text

    def test_empty_model_rejected(self):
        from repro.analysis import PortfolioModel

        with pytest.raises(ValueError):
            PortfolioModel(observations=[])

    def test_train_portfolio_skips_inapplicable_algorithms(self, monkeypatch):
        import repro.multirun as multirun
        from repro.analysis import train_portfolio
        from repro.hypergraph import hierarchical_circuit

        # An algorithm whose cells blow up at run time (e.g. a spectral
        # ordering with no balanced split point) must become missing
        # cells, not abort the sweep.
        real_run_many = multirun.run_many

        def flaky_run_many(partitioner, *pos, **kw):
            if partitioner.name.startswith("FM"):
                raise ValueError("no balanced split point")
            return real_run_many(partitioner, *pos, **kw)

        monkeypatch.setattr(multirun, "run_many", flaky_run_many)
        circuits = {
            "a": hierarchical_circuit(40, 44, 160, seed=2),
            "b": hierarchical_circuit(60, 66, 240, seed=3),
        }
        model = train_portfolio(circuits, algorithms=("prop", "fm"), runs=2)
        algorithms = {o.algorithm for o in model.observations}
        assert algorithms == {"prop"}
        assert {o.circuit for o in model.observations} == {"a", "b"}

    def test_train_portfolio_unknown_algorithm_raises(self):
        from repro.analysis import train_portfolio
        from repro.hypergraph import hierarchical_circuit

        circuits = {"a": hierarchical_circuit(40, 44, 160, seed=2)}
        with pytest.raises(Exception):
            train_portfolio(circuits, algorithms=("tpyo",), runs=1)

    def test_train_portfolio_deterministic(self):
        from repro.analysis import train_portfolio
        from repro.hypergraph import hierarchical_circuit

        circuits = {"a": hierarchical_circuit(40, 44, 160, seed=2)}
        first = train_portfolio(circuits, algorithms=("prop", "fm"), runs=2)
        second = train_portfolio(circuits, algorithms=("prop", "fm"), runs=2)

        def essence(model):
            # Everything but the wall-clock seconds_per_run field.
            return [
                (o.circuit, o.algorithm, o.features, o.normalized_cut)
                for o in model.observations
            ]

        assert essence(first) == essence(second)
