"""Tests for gain-prediction diagnostics."""

import pytest

from repro.analysis import (
    MoveSample,
    analyze_prediction,
    collect_move_samples,
    gain_prediction_report,
)
from repro.hypergraph import hierarchical_circuit


@pytest.fixture(scope="module")
def circuit():
    return hierarchical_circuit(120, 130, 470, seed=5)


class TestCollection:
    def test_samples_collected(self, circuit):
        samples = collect_move_samples(circuit, seed=0)
        assert len(samples) >= circuit.num_nodes  # >= one full pass
        first = samples[0]
        assert first.pass_index == 0
        assert 0 <= first.node < circuit.num_nodes

    def test_deterministic(self, circuit):
        a = collect_move_samples(circuit, seed=3)
        b = collect_move_samples(circuit, seed=3)
        assert a == b

    def test_pass_indices_monotone(self, circuit):
        samples = collect_move_samples(circuit, seed=0)
        indices = [s.pass_index for s in samples]
        assert indices == sorted(indices)

    def test_observer_does_not_change_result(self, circuit):
        """Instrumentation must be observation-only."""
        from repro.core import PropPartitioner

        plain = PropPartitioner().partition(circuit, seed=4)
        samples = collect_move_samples(circuit, seed=4)
        realized = sum(
            s.immediate_gain
            for s in samples
        )
        # total tentative-gain bookkeeping is self-consistent with a
        # normal run on the same seed (same tentative move count)
        assert len(samples) == plain.stats["tentative_moves"]


class TestAnalysis:
    def test_report_fields(self, circuit):
        report = gain_prediction_report(circuit, seed=0)
        assert report.num_moves > 0
        assert 0.0 <= report.negative_immediate_fraction <= 1.0
        if report.spearman_rho is not None:
            assert -1.0 <= report.spearman_rho <= 1.0

    def test_selection_gain_predicts_immediate(self, circuit):
        """Probabilistic and immediate gains must correlate positively —
        they estimate related quantities — without being identical (the
        whole point is they differ on the lookahead component)."""
        report = gain_prediction_report(circuit, seed=0)
        assert report.spearman_rho is not None
        assert report.spearman_rho > 0.3

    def test_negative_immediate_moves_exist(self, circuit):
        """Sec. 3: PROP deliberately makes moves whose immediate gain is
        negative, expecting future payoff."""
        report = gain_prediction_report(circuit, seed=0)
        assert report.negative_immediate_fraction > 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            analyze_prediction([])

    def test_degenerate_samples(self):
        samples = [MoveSample(0, 0, 1.0, 1.0)] * 3
        report = analyze_prediction(samples)
        assert report.spearman_rho is None  # too few / constant
        assert report.negative_immediate_fraction == 0.0
