"""Tests for run-distribution analysis."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ascii_histogram,
    convergence_trace,
    cut_distribution,
    runs_to_reach,
)


class TestCutDistribution:
    def test_basic(self):
        d = cut_distribution([10, 20, 30, 40])
        assert d.count == 4
        assert d.best == 10
        assert d.worst == 40
        assert d.mean == 25
        assert d.median == 25

    def test_sample_stddev(self):
        # Sample estimator (÷ n−1): var([10,20,30,40]) = 500/3.
        d = cut_distribution([10, 20, 30, 40])
        assert d.stddev == pytest.approx(math.sqrt(500 / 3))
        # Two-point population: sample stddev is |a-b| / sqrt(2).
        assert cut_distribution([10, 20]).stddev == pytest.approx(
            10 / math.sqrt(2)
        )

    def test_odd_median(self):
        assert cut_distribution([1, 5, 9]).median == 5

    def test_single(self):
        d = cut_distribution([7])
        assert d.best == d.worst == d.mean == d.median == 7
        assert d.stddev == 0.0
        assert d.spread == 0.0

    def test_spread(self):
        assert cut_distribution([10, 15]).spread == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cut_distribution([])

    @given(st.lists(st.floats(1, 1e6), min_size=1, max_size=50))
    def test_invariants(self, cuts):
        d = cut_distribution(cuts)
        eps = 1e-9 * d.worst  # float summation can drift by ~1 ulp
        assert d.best <= d.median <= d.worst
        assert d.best - eps <= d.mean <= d.worst + eps
        assert d.stddev >= 0


class TestConvergenceTrace:
    def test_monotone_nonincreasing(self):
        trace = convergence_trace([30, 25, 40, 20, 22])
        assert trace == [30, 25, 25, 20, 20]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convergence_trace([])

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_properties(self, cuts):
        trace = convergence_trace(cuts)
        assert len(trace) == len(cuts)
        assert trace[-1] == min(cuts)
        assert all(a >= b for a, b in zip(trace, trace[1:]))


class TestRunsToReach:
    def test_found(self):
        assert runs_to_reach([30, 25, 20, 20], target=25) == 2

    def test_immediately(self):
        assert runs_to_reach([10, 50], target=15) == 1

    def test_never_is_none(self):
        # None (not a falsy 0 one off from the smallest real answer 1):
        # ``if runs_to_reach(...)`` must not conflate "reached on run 1"
        # with "never reached".
        assert runs_to_reach([30, 25], target=5) is None

    def test_reached_is_truthy(self):
        assert runs_to_reach([10], target=10) == 1


class TestAsciiHistogram:
    def test_renders(self):
        text = ascii_histogram([1, 1, 2, 3, 3, 3, 9], bins=4)
        assert "#" in text
        assert len(text.splitlines()) == 4

    def test_all_equal(self):
        text = ascii_histogram([5, 5, 5])
        assert "all equal" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
        with pytest.raises(ValueError):
            ascii_histogram([1, 2], bins=0)

    def test_counts_sum(self):
        cuts = list(range(32))
        text = ascii_histogram(cuts, bins=8)
        total = sum(
            int(line.rsplit(" ", 1)[-1])
            for line in text.splitlines()
            if line.rstrip()[-1].isdigit()
        )
        assert total == 32


class TestIntegrationWithRunner:
    def test_fm_variance_vs_prop(self, medium_circuit):
        """The paper's distributional claim: PROP's runs concentrate near
        its best more than FM's do."""
        from repro.baselines import FMPartitioner
        from repro.core import PropPartitioner
        from repro.multirun import run_many

        fm = run_many(FMPartitioner("bucket"), medium_circuit, runs=8)
        prop = run_many(PropPartitioner(), medium_circuit, runs=8)
        fm_d = cut_distribution(fm.cuts)
        prop_d = cut_distribution(prop.cuts)
        # PROP's mean should sit closer to its best than FM's (allow slack:
        # a single 200-node circuit is a small sample)
        prop_gap = prop_d.mean / prop_d.best
        fm_gap = fm_d.mean / fm_d.best
        assert prop_gap <= fm_gap * 1.3
