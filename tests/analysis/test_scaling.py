"""Tests for the power-law fitting utility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_power_law


class TestFitPowerLaw:
    def test_exact_linear(self):
        fit = fit_power_law([1, 2, 4, 8], [3, 6, 12, 24])
        assert fit.exponent == pytest.approx(1.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_quadratic(self):
        xs = [1, 2, 3, 4, 5]
        fit = fit_power_law(xs, [2 * x * x for x in xs])
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(2.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [1, 4, 16])
        assert fit.predict(8) == pytest.approx(64.0, rel=1e-6)
        with pytest.raises(ValueError):
            fit.predict(0)

    def test_noisy_fit_reasonable(self):
        xs = [100, 200, 400, 800]
        ys = [1.05, 1.9, 4.2, 7.8]  # ~linear with noise
        fit = fit_power_law(xs, ys)
        assert 0.8 < fit.exponent < 1.2
        assert fit.r_squared > 0.97

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 2])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])  # no x spread

    @given(
        exponent=st.floats(0.2, 3.0),
        coefficient=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40)
    def test_recovers_planted_law(self, exponent, coefficient):
        xs = [10.0, 30.0, 100.0, 300.0]
        ys = [coefficient * x ** exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-5)
        assert fit.r_squared == pytest.approx(1.0)
