"""Tests for statistical head-to-head comparison."""

import pytest

from repro.analysis import (
    comparison_matrix,
    format_head_to_head,
    head_to_head,
)


class TestHeadToHead:
    def test_clear_winner(self):
        a = [10, 20, 30, 40, 50, 60, 70, 80]
        b = [15, 25, 35, 45, 55, 65, 75, 85]
        result = head_to_head(a, b)
        assert result.wins == 8
        assert result.losses == 0
        assert result.ties == 0
        assert result.mean_improvement_percent > 0
        assert result.sign_test_p < 0.05
        assert result.decisive

    def test_all_ties(self):
        result = head_to_head([5, 5], [5, 5])
        assert result.ties == 2
        assert result.sign_test_p == 1.0
        assert not result.decisive
        assert result.mean_improvement_percent == 0.0

    def test_mixed_not_decisive(self):
        result = head_to_head([10, 20, 30], [12, 18, 30])
        assert result.wins == 1
        assert result.losses == 1
        assert result.ties == 1
        assert not result.decisive

    def test_improvement_uses_paper_metric(self):
        # single pair: (92-83)/92 * 100 = 9.78
        result = head_to_head([83], [92])
        assert result.mean_improvement_percent == pytest.approx(9.78, abs=0.01)

    def test_wilcoxon_reported_with_enough_pairs(self):
        a = [10, 20, 30, 40, 50, 60]
        b = [11, 22, 33, 44, 55, 66]
        result = head_to_head(a, b)
        assert result.wilcoxon_p is not None
        assert 0 <= result.wilcoxon_p <= 1

    def test_wilcoxon_skipped_for_few_pairs(self):
        assert head_to_head([1, 2], [2, 3]).wilcoxon_p is None

    def test_validation(self):
        with pytest.raises(ValueError):
            head_to_head([1], [1, 2])
        with pytest.raises(ValueError):
            head_to_head([], [])

    def test_symmetry(self):
        a = [10, 20, 30, 45]
        b = [12, 18, 33, 40]
        ab = head_to_head(a, b)
        ba = head_to_head(b, a)
        assert ab.wins == ba.losses
        assert ab.sign_test_p == pytest.approx(ba.sign_test_p)
        assert ab.mean_improvement_percent == pytest.approx(
            -ba.mean_improvement_percent
        )


class TestComparisonMatrix:
    def test_all_pairs(self):
        table = {"A": [1, 2, 3], "B": [2, 3, 4], "C": [1, 1, 1]}
        matrix = comparison_matrix(table)
        assert set(matrix) == {"A", "B", "C"}
        assert set(matrix["A"]) == {"B", "C"}
        assert matrix["A"]["B"].wins == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            comparison_matrix({"A": [1], "B": [1, 2]})


class TestFormatting:
    def test_one_liner(self):
        result = head_to_head([10, 20, 30, 40, 50, 60], [12, 25, 33, 44, 52, 61])
        text = format_head_to_head("PROP", "FM", result)
        assert text.startswith("PROP vs FM: 6W/0L/0T")
        assert "sign p=" in text

    def test_integration_with_paper_table(self):
        """PROP's published Table-3 EIG1 comparison is decisively in
        PROP's favor by the sign test."""
        from repro.experiments import PAPER_TABLE3

        prop = [row["PROP"] for row in PAPER_TABLE3.values()]
        eig1 = [row["EIG1"] for row in PAPER_TABLE3.values()]
        result = head_to_head(prop, eig1)
        assert result.wins == 16
        assert result.decisive
        assert result.mean_improvement_percent > 40
