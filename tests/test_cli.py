"""Tests for the prop-partition command-line driver."""

import json

import pytest

from repro.cli import main
from repro.hypergraph import hierarchical_circuit
from repro.hypergraph import io_ as nio


@pytest.fixture
def netlist_file(tmp_path):
    graph = hierarchical_circuit(80, 88, 320, seed=1)
    path = tmp_path / "circuit.hgr"
    nio.write_hgr(graph, path)
    return path


class TestCli:
    def test_partition_file(self, netlist_file, capsys):
        assert main([str(netlist_file), "-a", "prop"]) == 0
        out = capsys.readouterr().out
        assert "PROP" in out
        assert "best cut" in out

    def test_generate(self, capsys):
        assert main(["--generate", "t6", "--scale", "0.06", "-a", "fm"]) == 0
        out = capsys.readouterr().out
        assert "FM-bucket" in out

    def test_multiple_algorithms(self, netlist_file, capsys):
        assert (
            main([str(netlist_file), "-a", "fm", "la-2", "--runs", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "FM-bucket" in out
        assert "LA-2" in out

    def test_balance_4555(self, netlist_file, capsys):
        assert main([str(netlist_file), "--balance", "45-55"]) == 0
        assert "0.450" in capsys.readouterr().out

    def test_custom_balance(self, netlist_file, capsys):
        assert main([str(netlist_file), "--balance", "40-60", "-a", "fm"]) == 0

    def test_output_json(self, netlist_file, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert (
            main([str(netlist_file), "-a", "fm", "-o", str(out_path)]) == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["algorithm"] == "FM-bucket"
        assert len(payload["sides"]) == 80

    def test_no_input_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_errors(self, netlist_file):
        with pytest.raises(Exception):
            main([str(netlist_file), "-a", "quantum"])

    def test_kway_mode(self, capsys):
        assert main(
            ["--generate", "t6", "--scale", "0.08", "--kway", "3", "-a", "fm"]
        ) == 0
        out = capsys.readouterr().out
        assert "k=3" in out
        assert "part weights" in out

    def test_kway_output_json(self, tmp_path, capsys):
        out_path = tmp_path / "kway.json"
        assert main(
            ["--generate", "t6", "--scale", "0.08", "--kway", "3",
             "-a", "fm", "-o", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["mode"] == "kway"
        assert payload["k"] == 3
        assert set(payload["assignment"]) <= {0, 1, 2}

    def test_place_mode(self, tmp_path, capsys):
        out_path = tmp_path / "place.json"
        assert main(
            ["--generate", "t6", "--scale", "0.08", "--place", "-a", "fm",
             "-o", str(out_path)]
        ) == 0
        assert "HPWL" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["mode"] == "place"
        assert len(payload["x"]) == len(payload["y"])

    def test_fpga_mode(self, capsys):
        assert main(
            ["--generate", "t6", "--scale", "0.08", "--fpga", "2",
             "-a", "fm", "--fpga-io", "500"]
        ) == 0
        out = capsys.readouterr().out
        assert "FPGA0" in out
        assert "feasible" in out

    def test_modes_mutually_exclusive(self, netlist_file):
        with pytest.raises(SystemExit):
            main([str(netlist_file), "--kway", "3", "--place"])

    def test_workers_flag_partition(self, netlist_file, tmp_path, capsys):
        assert main([
            str(netlist_file), "-a", "fm", "--runs", "3", "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "engine: 0 worker(s)" in out
        assert "3 executed" in out

    def test_no_cache_flag(self, netlist_file, capsys):
        assert main([
            str(netlist_file), "-a", "fm", "--runs", "2", "--workers", "0",
            "--no-cache",
        ]) == 0
        assert "cache off" in capsys.readouterr().out

    def test_every_algorithm_runs(self, capsys):
        algos = ["prop", "prop-cl", "ml-prop", "fm", "fm-tree", "la-2",
                 "la-3", "kl", "sa", "eig1", "melo", "window", "paraboli",
                 "random"]
        assert main(["--generate", "t6", "--scale", "0.05", "-a"] + algos) == 0
        out = capsys.readouterr().out
        for tag in ("PROP", "EIG1", "MELO", "WINDOW", "PARABOLI", "KL"):
            assert tag in out


class TestBenchSubcommand:
    @pytest.mark.slow
    def test_bench_smoke_multiprocess(self, tmp_path, capsys, monkeypatch):
        """The documented smoke invocation, pool and all."""
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--workers", "2", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "FM-bucket" in out
        assert "PROP" in out
        assert "engine: 2 worker(s)" in out
        assert (tmp_path / ".repro_cache").is_dir()

    def test_bench_inline_no_cache(self, capsys):
        assert main([
            "bench", "--workers", "0", "--runs", "2", "--no-cache",
            "-a", "fm",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 unit(s)" in out
        assert "cache off" in out

    def test_bench_warm_cache_hits(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = ["bench", "--workers", "0", "--runs", "3", "-a", "fm"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "3 executed" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "3 cache hit(s)" in second
        assert "0 executed" in second

    def test_bench_unknown_circuit_errors(self):
        with pytest.raises(SystemExit):
            main(["bench", "--circuits", "nonsense"])
