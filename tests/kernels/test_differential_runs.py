"""End-to-end backend differential suite: same moves, same cuts.

The kernels layer promises that switching ``kernel="python"`` for
``kernel="numpy"`` changes *nothing observable* — not just the final cut
but the entire move sequence, the per-pass best prefixes, and every stat
that isn't a timing.  These tests run the real partitioners twice and
compare everything, over hypothesis-generated instances, the seeded grid,
and the golden corpus (the latter under a full invariant audit, which
also exercises the auditor's product-cache cross-check).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.audit import AuditConfig
from repro.baselines.fm import run_fm
from repro.baselines.la import run_la
from repro.core import PropConfig
from repro.core.engine import run_prop
from repro.hypergraph import make_benchmark
from repro.partition import BalanceConstraint, random_balanced_sides
from repro.testing import GRID_SEEDS, random_instance, weighted_instance
from repro.testing import strategies as st_repro
from repro.testing.golden import CIRCUITS, build_circuit

#: Non-timing stats that must be backend-invariant in a PROP result.
_INVARIANT_STATS = ("underflow_recomputes",)


def _prop_once(graph, sides, balance, kernel, **config_kwargs):
    moves = []
    result = run_prop(
        graph, sides, balance, PropConfig(kernel=kernel, **config_kwargs),
        observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
    )
    return moves, result


def _assert_prop_identical(graph, sides, balance, **config_kwargs):
    mp, rp = _prop_once(graph, sides, balance, "python", **config_kwargs)
    mn, rn = _prop_once(graph, sides, balance, "numpy", **config_kwargs)
    assert mp == mn, "move sequences diverged between backends"
    assert rp.cut == rn.cut
    assert rp.sides == rn.sides
    assert rp.pass_cuts == rn.pass_cuts
    assert rp.passes == rn.passes
    for stat in _INVARIANT_STATS:
        assert rp.stats[stat] == rn.stats[stat]
    assert rp.stats["kernel_numpy"] == 0.0
    assert rn.stats["kernel_numpy"] == 1.0


@st.composite
def _run_cases(draw):
    graph = draw(
        st_repro.hypergraphs(min_nodes=4, max_nodes=14, costed=True)
    )
    sides = draw(st_repro.balanced_sides_for(graph))
    return graph, sides


@settings(max_examples=25, deadline=None)
@given(_run_cases(), st.sampled_from(["recompute", "cached"]))
def test_prop_backends_identical_hypothesis(case, strategy):
    graph, sides = case
    balance = BalanceConstraint.fifty_fifty(graph)
    _assert_prop_identical(
        graph, sides, balance, update_strategy=strategy
    )


@pytest.mark.parametrize("seed", GRID_SEEDS[:6])
@pytest.mark.parametrize("strategy", ["recompute", "cached"])
def test_prop_backends_identical_grid(seed, strategy):
    graph = weighted_instance(seed, max_nodes=24)
    sides = random_balanced_sides(graph, seed)
    balance = BalanceConstraint.fifty_fifty(graph)
    _assert_prop_identical(
        graph, sides, balance, update_strategy=strategy
    )


@pytest.mark.parametrize("probability_function", ["linear", "sigmoid"])
@pytest.mark.parametrize("init_method", ["pinit", "deterministic"])
def test_prop_backends_identical_config_matrix(
    probability_function, init_method
):
    graph = make_benchmark("t5", scale=0.08)
    sides = random_balanced_sides(graph, 3)
    balance = BalanceConstraint.fifty_fifty(graph)
    for strategy in ("recompute", "cached"):
        _assert_prop_identical(
            graph, sides, balance,
            update_strategy=strategy,
            probability_function=probability_function,
            init_method=init_method,
        )


@pytest.mark.parametrize("container", ["bucket", "tree"])
def test_fm_backends_identical(container):
    graph = make_benchmark("t6", scale=0.08)
    sides = random_balanced_sides(graph, 5)
    balance = BalanceConstraint.fifty_fifty(graph)
    results = {}
    for kernel in ("python", "numpy"):
        moves = []
        r = run_fm(
            graph, sides, balance, container=container, kernel=kernel,
            observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
        )
        results[kernel] = (moves, r.cut, r.sides, r.pass_cuts)
    assert results["python"] == results["numpy"]


@pytest.mark.parametrize("k", [1, 2, 3])
def test_la_backends_identical(k):
    graph = make_benchmark("t6", scale=0.08)
    sides = random_balanced_sides(graph, 5)
    balance = BalanceConstraint.fifty_fifty(graph)
    results = {}
    for kernel in ("python", "numpy"):
        moves = []
        r = run_la(
            graph, sides, balance, k=k, kernel=kernel,
            observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
        )
        results[kernel] = (moves, r.cut, r.sides, r.pass_cuts)
    assert results["python"] == results["numpy"]


class TestGoldenCorpusBackends:
    """Both backends reproduce the corpus circuits' cuts — audited.

    Auditing the numpy runs routes every (Nth) move through
    ``check_prop_gains`` *and* ``check_prop_kernel``, so the cached side
    products are recomputed against brute force mid-run.
    """

    @pytest.mark.parametrize("circuit", sorted(CIRCUITS))
    def test_prop_identical_and_audited(self, circuit):
        graph = build_circuit(CIRCUITS[circuit])
        sides = random_balanced_sides(graph, 42)
        balance = BalanceConstraint.fifty_fifty(graph)
        results = {}
        for kernel in ("python", "numpy"):
            moves = []
            r = run_prop(
                graph, sides, balance, PropConfig(kernel=kernel),
                observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
                audit=AuditConfig(every=7),
            )
            assert r.stats["audited"] == 1.0
            assert r.stats["audit_checks"] > 0
            results[kernel] = (moves, r.cut, r.sides)
        assert results["python"] == results["numpy"]

    @pytest.mark.parametrize("circuit", sorted(CIRCUITS))
    def test_cached_strategy_identical_and_audited(self, circuit):
        graph = build_circuit(CIRCUITS[circuit])
        sides = random_balanced_sides(graph, 42)
        balance = BalanceConstraint.fifty_fifty(graph)
        config = dict(update_strategy="cached")
        results = {}
        for kernel in ("python", "numpy"):
            r = run_prop(
                graph, sides, balance,
                PropConfig(kernel=kernel, **config),
                audit=AuditConfig(every=5),
            )
            assert r.stats["audited"] == 1.0
            results[kernel] = (r.cut, r.sides, r.pass_cuts)
        assert results["python"] == results["numpy"]


def test_numpy_stats_expose_kernel_telemetry():
    graph = random_instance(17, max_nodes=30)
    sides = random_balanced_sides(graph, 1)
    balance = BalanceConstraint.fifty_fifty(graph)
    r = run_prop(
        graph, sides, balance,
        PropConfig(kernel="numpy", update_strategy="cached"),
    )
    assert r.stats["kernel_numpy"] == 1.0
    assert r.stats["csr_build_seconds"] >= 0.0
    assert r.stats["product_cache_misses"] >= 0.0
    assert "product_cache_hits" in r.stats


def test_python_stats_omit_csr_fields():
    graph = random_instance(17, max_nodes=30)
    sides = random_balanced_sides(graph, 1)
    balance = BalanceConstraint.fifty_fifty(graph)
    r = run_prop(graph, sides, balance, PropConfig(kernel="python"))
    assert r.stats["kernel_numpy"] == 0.0
    assert "csr_build_seconds" not in r.stats
