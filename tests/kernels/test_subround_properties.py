"""Property suite for sub-round batch selection and batched application.

The sub-round engine rests on three local facts, each checked here
differentially against the scalar :class:`~repro.partition.Partition`
machinery over hypothesis-generated instances:

1. :func:`select_batch` only ever returns net-disjoint batches whose
   one-at-a-time replay stays balance-feasible at every step.
2. :func:`batch_immediate_gains` equals the scalar
   ``Partition.immediate_gain`` evaluated move-by-move during a replay —
   exactly, not approximately, because net-disjointness means no move in
   the batch can perturb another's nets.
3. ``Partition.apply_batch`` leaves the partition in the byte-identical
   state (sides, counts, locks, weights, cut) that a
   ``move_and_lock``-per-node replay produces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.kernels.csr import CsrView
from repro.kernels.subround import (
    batch_immediate_gains,
    select_batch,
    tie_break_keys,
)
from repro.partition import BalanceConstraint, Partition
from repro.testing import strategies as st_repro


@st.composite
def _batch_cases(draw):
    graph = draw(st_repro.hypergraphs(min_nodes=3, max_nodes=16, costed=True))
    sides = draw(st_repro.balanced_sides_for(graph))
    gains = draw(
        st.lists(
            st.floats(-8.0, 8.0, allow_nan=False, width=32),
            min_size=graph.num_nodes, max_size=graph.num_nodes,
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    cap = draw(st.integers(1, graph.num_nodes))
    return graph, sides, gains, seed, cap


def _run_select(graph, sides, gains, seed, cap):
    csr = CsrView(graph)
    part = Partition(graph, list(sides))
    tie = tie_break_keys(graph.num_nodes, seed)
    balance = BalanceConstraint.fifty_fifty(graph)
    claimed = np.zeros(graph.num_nets, dtype=bool)
    gains_arr = np.asarray(gains, dtype=np.float64)
    free_idx = np.arange(graph.num_nodes, dtype=np.intp)
    batch, conflicts, brejects = select_batch(
        gains_arr, free_idx, tie, csr, graph.node_weights,
        part.sides_view(), part.side_weights, balance, claimed, cap,
    )
    return csr, part, balance, batch, conflicts, brejects


@settings(max_examples=80, deadline=None)
@given(_batch_cases())
def test_select_batch_is_net_disjoint(case):
    graph, sides, gains, seed, cap = case
    _, _, _, batch, _, _ = _run_select(graph, sides, gains, seed, cap)
    seen = set()
    for v in batch:
        nets = set(graph.node_nets(v))
        assert not (nets & seen), f"node {v} shares a net with the batch"
        seen |= nets
    assert len(batch) <= cap
    assert len(batch) == len(set(batch)), "batch repeats a node"


@settings(max_examples=80, deadline=None)
@given(_batch_cases())
def test_select_batch_replay_stays_feasible(case):
    """Every prefix of the batch satisfies the balance bounds."""
    graph, sides, gains, seed, cap = case
    _, part, balance, batch, _, _ = _run_select(graph, sides, gains, seed, cap)
    for v in batch:
        w0, w1 = part.side_weights
        assert balance.move_allowed((w0, w1), part.side(v), graph.node_weights[v])
        part.move_and_lock(v)


@settings(max_examples=60, deadline=None)
@given(_batch_cases())
def test_select_batch_is_deterministic(case):
    graph, sides, gains, seed, cap = case
    _, _, _, a, ca, ba = _run_select(graph, sides, gains, seed, cap)
    _, _, _, b, cb, bb = _run_select(graph, sides, gains, seed, cap)
    assert (a, ca, ba) == (b, cb, bb)


@settings(max_examples=80, deadline=None)
@given(_batch_cases())
def test_batch_gains_equal_scalar_replay(case):
    """Pre-batch vectorized gains == scalar immediate_gain during replay.

    Net-disjointness is what licenses computing every gain against the
    *pre-batch* counts: no earlier move in the batch can change a later
    move's nets, so the replayed scalar gain matches bit for bit.
    """
    graph, sides, gains, seed, cap = case
    csr, part, _, batch, _, _ = _run_select(graph, sides, gains, seed, cap)
    counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
    counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
    imm = batch_immediate_gains(batch, csr, part.sides_view(), counts0, counts1)
    for j, v in enumerate(batch):
        scalar = part.immediate_gain(v)
        assert imm[j] == scalar
        realized = part.move_and_lock(v)
        assert realized == scalar


@settings(max_examples=80, deadline=None)
@given(_batch_cases())
def test_apply_batch_matches_move_and_lock_replay(case):
    graph, sides, gains, seed, cap = case
    csr, part, _, batch, _, _ = _run_select(graph, sides, gains, seed, cap)
    counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
    counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
    imm = batch_immediate_gains(
        batch, csr, part.sides_view(), counts0, counts1
    ).tolist()

    batched = Partition(graph, list(sides))
    batched.apply_batch(batch, imm)

    replayed = Partition(graph, list(sides))
    for v in batch:
        replayed.move_and_lock(v)

    assert batched.sides == replayed.sides
    assert batched.cut_cost == replayed.cut_cost
    assert batched.side_weights == replayed.side_weights
    assert batched.counts_view(0) == replayed.counts_view(0)
    assert batched.counts_view(1) == replayed.counts_view(1)
    assert batched.locked_view() == replayed.locked_view()
    assert (
        batched.locked_counts_view(0) == replayed.locked_counts_view(0)
    )
    assert (
        batched.locked_counts_view(1) == replayed.locked_counts_view(1)
    )
    batched.check_invariants()


@settings(max_examples=40, deadline=None)
@given(_batch_cases())
def test_apply_batch_rejects_locked_nodes(case):
    graph, sides, gains, seed, cap = case
    _, part, _, batch, _, _ = _run_select(graph, sides, gains, seed, cap)
    if not batch:
        return
    part.lock(batch[0])
    with pytest.raises(ValueError):
        part.apply_batch(batch, [0.0] * len(batch))


def test_tie_break_keys_are_a_permutation_ingredient():
    """splitmix64 keys are distinct per node and differ across seeds."""
    a = tie_break_keys(512, 42)
    b = tie_break_keys(512, 43)
    assert a.dtype == np.uint64
    assert len(set(a.tolist())) == 512
    assert not np.array_equal(a, b)
    assert np.array_equal(a, tie_break_keys(512, 42))


@st.composite
def _subset_cases(draw):
    graph = draw(st_repro.hypergraphs(min_nodes=3, max_nodes=16, costed=True))
    sides = draw(st_repro.balanced_sides_for(graph))
    probs = draw(st_repro.probability_vectors(graph.num_nodes))
    nets = draw(
        st.lists(
            st.integers(0, graph.num_nets - 1),
            min_size=0, max_size=graph.num_nets, unique=True,
        )
    )
    nodes = draw(
        st.lists(
            st.integers(0, graph.num_nodes - 1),
            min_size=0, max_size=graph.num_nodes, unique=True,
        )
    )
    return graph, sides, probs, sorted(nets), sorted(nodes)


@settings(max_examples=80, deadline=None)
@given(_subset_cases())
def test_subset_kernels_match_full_range_bitwise(case):
    """The incremental-update kernels must reproduce the full-range
    kernels bit for bit on any subset — the exactness the sub-round
    engine's stale-gain argument rests on."""
    from repro.kernels.subround import (
        prop_gains_range,
        prop_gains_subset,
        prop_products_range,
        prop_products_subset,
    )

    graph, sides, probs, nets, nodes = case
    csr = CsrView(graph)
    n, e = graph.num_nodes, graph.num_nets
    p = np.asarray(probs, dtype=np.float64)
    sides_arr = np.asarray(sides, dtype=np.int8)
    locked = np.zeros(n, dtype=bool)

    prod0_f = np.empty(e); prod1_f = np.empty(e); count1_f = np.empty(e)
    prop_products_range(
        0, e, p, sides_arr, csr.pin_node, csr.pin_net,
        csr.net_offset, csr.net_size, prod0_f, prod1_f, count1_f,
    )
    gains_f = np.empty(n)
    under_f = prop_gains_range(
        0, n, p, sides_arr, locked, prod0_f, prod1_f, count1_f,
        csr.net_size, csr.nm_net, csr.nm_owner, csr.nm_cost,
        csr.node_offset, csr.pin_node, csr.net_offset, gains_f,
    )

    prod0_s = np.full(e, np.nan); prod1_s = np.full(e, np.nan)
    count1_s = np.full(e, np.nan)
    prop_products_subset(
        np.asarray(nets, dtype=np.intp), p, sides_arr,
        csr.pin_node, csr.net_offset, prod0_s, prod1_s, count1_s,
    )
    for net in nets:
        assert prod0_s[net] == prod0_f[net]
        assert prod1_s[net] == prod1_f[net]
        assert count1_s[net] == count1_f[net]

    gains_s = np.full(n, np.nan)
    under_s = prop_gains_subset(
        np.asarray(nodes, dtype=np.intp), p, sides_arr, locked,
        prod0_f, prod1_f, count1_f, csr.net_size,
        csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
        csr.pin_node, csr.net_offset, gains_s,
    )
    for v in nodes:
        assert gains_s[v] == gains_f[v]
    if len(nodes) == graph.num_nodes:
        assert under_s == under_f


@settings(max_examples=60, deadline=None)
@given(_subset_cases())
def test_gather_segments_flattens_in_csr_order(case):
    from repro.kernels.subround import gather_segments

    graph, _, _, nets, _ = case
    csr = CsrView(graph)
    j, slot = gather_segments(np.asarray(nets, dtype=np.intp), csr.net_offset)
    expected_j = [
        i
        for net in nets
        for i in range(csr.net_offset[net], csr.net_offset[net + 1])
    ]
    expected_slot = [
        k
        for k, net in enumerate(nets)
        for _ in range(csr.net_offset[net], csr.net_offset[net + 1])
    ]
    assert j.tolist() == expected_j
    assert slot.tolist() == expected_slot
