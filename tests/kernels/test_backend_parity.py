"""Bit-parity of the numpy gain kernels against the scalar reference.

The vectorized backend's contract is *exact* equivalence — every gain,
contribution, and counter equals the scalar value bit for bit, because
the AVL containers break ties on ``(gain, node)`` and a one-ulp drift
changes move order.  So every assertion here is ``==``, never
``pytest.approx``.
"""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.gains import DIV_SAFE_MIN, ProbabilisticGainEngine
from repro.hypergraph import Hypergraph
from repro.kernels import make_gain_engine, resolve_kernel
from repro.kernels.numpy_backend import (
    NumpyGainEngine,
    fm_initial_gains,
    la_initial_vectors,
)
from repro.partition import BalanceConstraint, Partition, random_balanced_sides
from repro.testing import random_instance, weighted_instance
from repro.testing import strategies as st_repro


def _engine_pair(graph, sides, probabilities):
    scalar = ProbabilisticGainEngine(Partition(graph, list(sides)), probabilities)
    vector = NumpyGainEngine(Partition(graph, list(sides)), probabilities)
    return scalar, vector


@st.composite
def _parity_cases(draw):
    graph = draw(st_repro.hypergraphs(min_nodes=2, max_nodes=14, costed=True))
    sides = draw(st_repro.sides_for(graph))
    probs = draw(st_repro.probability_vectors(graph.num_nodes))
    return graph, sides, probs


@settings(max_examples=60, deadline=None)
@given(_parity_cases())
def test_all_gains_bit_identical(case):
    graph, sides, probs = case
    scalar, vector = _engine_pair(graph, sides, probs)
    sg = scalar.all_gains()
    vg = vector.all_gains()
    assert sg == vg
    assert all(type(x) is float for x in vg)
    assert scalar.underflow_recomputes == vector.underflow_recomputes


@settings(max_examples=40, deadline=None)
@given(_parity_cases())
def test_all_contributions_bit_identical(case):
    graph, sides, probs = case
    scalar, vector = _engine_pair(graph, sides, probs)
    assert scalar.all_contributions() == vector.all_contributions()


@settings(max_examples=40, deadline=None)
@given(_parity_cases())
def test_contribution_state_matches_scalar_dicts(case):
    """The numpy flat state holds the same values as the scalar dicts."""
    graph, sides, probs = case
    scalar, vector = _engine_pair(graph, sides, probs)
    dicts = scalar.all_contributions()
    flat = vector.new_contribution_state()
    csr = vector.csr
    for v in range(graph.num_nodes):
        start = csr.node_offset_list[v]
        for i, net_id in enumerate(graph.node_nets(v)):
            assert flat[start + i] == dicts[v][net_id]
            assert type(flat[start + i]) is float


@pytest.mark.parametrize("seed", [1, 5, 9, 33])
def test_net_gain_and_pin_contributions_agree(seed):
    """Backends agree bit-for-bit; the divide trick stays within 1/2 ulp.

    ``net_pin_contributions`` divides a pin's own probability back out of
    the shared side product, which is allowed to differ from the direct
    ``net_gain`` product by one rounding — but both *backends* take the
    identical divide, so their outputs are still exactly equal.
    """
    graph = weighted_instance(seed, max_nodes=16)
    sides = random_balanced_sides(graph, seed)
    import random

    rng = random.Random(seed)
    probs = [rng.uniform(0.01, 0.99) for _ in range(graph.num_nodes)]
    scalar, vector = _engine_pair(graph, sides, probs)
    for net_id in range(graph.num_nets):
        contribs = scalar.net_pin_contributions(net_id)
        for v, c in contribs.items():
            assert c == pytest.approx(
                scalar.net_gain(v, net_id), rel=1e-12, abs=1e-12
            )
    assert scalar.all_gains() == vector.all_gains()


class TestUnderflowGuard:
    """Satellite: pmin-scale probabilities on a high-degree net.

    160 pins at p = 0.01 drive the side product to 1e-320 — a subnormal
    below ``DIV_SAFE_MIN`` where the divide-back-out trick loses the low
    bits.  The guard must switch to the exact recompute branch, count the
    event, and still match ``net_gain`` exactly — on both backends.
    """

    DEGREE = 160
    P = 0.01

    def _build(self):
        n = self.DEGREE + 2
        nets = [list(range(self.DEGREE)), [0, n - 2, n - 1]]
        graph = Hypergraph(nets, num_nodes=n)
        sides = [0] * self.DEGREE + [1, 1]
        probs = [self.P] * n
        return graph, sides, probs

    def test_product_is_subnormal(self):
        prod = 1.0
        for _ in range(self.DEGREE - 1):
            prod *= self.P
        assert 0.0 < prod < DIV_SAFE_MIN  # the regime under test

    def test_recompute_branch_exact_scalar(self):
        graph, sides, probs = self._build()
        engine = ProbabilisticGainEngine(Partition(graph, sides), probs)
        before = engine.underflow_recomputes
        contribs = engine.net_pin_contributions(0)
        assert engine.underflow_recomputes > before
        for v, c in contribs.items():
            assert c == engine.net_gain(v, 0)

    def test_backends_agree_under_underflow(self):
        graph, sides, probs = self._build()
        scalar, vector = _engine_pair(graph, sides, probs)
        assert scalar.all_gains() == vector.all_gains()
        assert scalar.underflow_recomputes == vector.underflow_recomputes
        assert scalar.underflow_recomputes > 0
        assert scalar.all_contributions() == vector.all_contributions()

    def test_zero_probability_not_counted_as_underflow(self):
        """p = 0 products are structural zeros, not underflow events."""
        graph, sides, probs = self._build()
        probs = [0.0] * len(probs)
        scalar, vector = _engine_pair(graph, sides, probs)
        assert scalar.all_gains() == vector.all_gains()
        assert scalar.underflow_recomputes == 0
        assert vector.underflow_recomputes == 0


class TestInitialGainKernels:
    @pytest.mark.parametrize("seed", [2, 11, 40])
    def test_fm_initial_gains_match_immediate_gain(self, seed):
        graph = weighted_instance(seed, max_nodes=18)
        partition = Partition(graph, random_balanced_sides(graph, seed))
        from repro.kernels.csr import CsrView

        gains = fm_initial_gains(CsrView(graph), partition)
        assert gains == [
            partition.immediate_gain(v) for v in range(graph.num_nodes)
        ]
        assert all(type(g) is float for g in gains)

    @pytest.mark.parametrize("seed", [2, 11, 40])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_la_initial_vectors_match_gain_vector(self, seed, k):
        from repro.baselines.la import gain_vector
        from repro.kernels.csr import CsrView

        graph = weighted_instance(seed, max_nodes=18)
        partition = Partition(graph, random_balanced_sides(graph, seed))
        vectors = la_initial_vectors(CsrView(graph), partition, k)
        assert vectors == [
            gain_vector(partition, v, k) for v in range(graph.num_nodes)
        ]

    def test_la_initial_vectors_reject_locked_partitions(self):
        from repro.kernels.csr import CsrView

        graph = random_instance(3)
        partition = Partition(graph, random_balanced_sides(graph, 3))
        partition.lock(0)
        with pytest.raises(ValueError):
            la_initial_vectors(CsrView(graph), partition, 2)


class TestIncrementalCache:
    def test_move_deltas_match_scalar_and_count_misses(self):
        """Under the just-locked contract, deltas are bit-equal and the
        moved node's nets (invalidated by ``on_lock``) all rescan."""
        from repro.telemetry.events import PassCounters

        graph = weighted_instance(7, max_nodes=16)
        sides = random_balanced_sides(graph, 7)
        scalar, vector = _engine_pair(
            graph, sides, [0.5] * graph.num_nodes
        )
        contribs_s = scalar.new_contribution_state()
        contribs_v = vector.new_contribution_state()
        assert vector.product_cache_misses == 0

        moved = 0
        scalar.partition.move_and_lock(moved)
        scalar.on_lock(moved)
        vector.partition.move_and_lock(moved)
        vector.on_lock(moved)
        cs, cv = PassCounters(), PassCounters()
        ds = scalar.contribution_move_deltas(moved, contribs_s, cs)
        dv = vector.contribution_move_deltas(moved, contribs_v, cv)
        assert ds == dv
        assert vector.product_cache_hits == 0
        assert vector.product_cache_misses == len(graph.node_nets(moved))
        assert cs.cache_net_recomputes == cv.cache_net_recomputes
        assert cs.cache_entry_deltas == cv.cache_entry_deltas

    def test_second_delta_pass_hits_cache(self):
        """Re-reading the same nets with no invalidation in between reuses
        the cached products and produces the same (all-zero) deltas."""
        graph = weighted_instance(7, max_nodes=16)
        sides = random_balanced_sides(graph, 7)
        scalar, vector = _engine_pair(
            graph, sides, [0.5] * graph.num_nodes
        )
        contribs_s = scalar.new_contribution_state()
        contribs_v = vector.new_contribution_state()
        moved = 0
        for eng in (scalar, vector):
            eng.partition.move_and_lock(moved)
            eng.on_lock(moved)
        scalar.contribution_move_deltas(moved, contribs_s)
        vector.contribution_move_deltas(moved, contribs_v)

        ds = scalar.contribution_move_deltas(moved, contribs_s)
        dv = vector.contribution_move_deltas(moved, contribs_v)
        assert ds == dv
        assert all(delta == 0.0 for _, delta in dv)
        assert vector.product_cache_hits == len(graph.node_nets(moved))

    def test_set_probability_invalidates_cache(self):
        graph = weighted_instance(7, max_nodes=16)
        sides = random_balanced_sides(graph, 7)
        vector = NumpyGainEngine(
            Partition(graph, list(sides)), [0.5] * graph.num_nodes
        )
        vector.new_contribution_state()
        touched = 0
        vector.set_probability(touched, 0.25)
        valid_nets = {net for net, _, _ in vector.product_cache_snapshot()}
        for net_id in graph.node_nets(touched):
            assert net_id not in valid_nets


class TestResolution:
    def test_explicit_names_pass_through(self):
        assert resolve_kernel("python") == "python"
        assert resolve_kernel("numpy") == "numpy"  # numpy importable here

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("fortran")

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel("auto") == "numpy"
        assert resolve_kernel(None) == "numpy"

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert resolve_kernel("auto") == "python"
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel("auto") == "numpy"

    def test_env_var_does_not_override_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel("python") == "python"

    def test_unknown_env_value_warns_and_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        with pytest.warns(RuntimeWarning):
            assert resolve_kernel("auto") in ("python", "numpy")

    def test_numpy_unavailable_falls_back(self, monkeypatch):
        import repro.kernels as kernels

        monkeypatch.setattr(kernels, "numpy_available", lambda: False)
        with pytest.warns(RuntimeWarning):
            assert kernels.resolve_kernel("numpy") == "python"
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernels.resolve_kernel("auto") == "python"

    def test_make_gain_engine_backends(self):
        graph = random_instance(1)
        partition = Partition(graph, random_balanced_sides(graph, 1))
        assert make_gain_engine(partition, "python").kernel_name == "python"
        assert make_gain_engine(partition, "numpy").kernel_name == "numpy"


class TestFingerprintNeutrality:
    """Backend choice must not change experiment-cache identities."""

    def test_prop_config_fingerprint_ignores_kernel(self):
        from repro.core import PropConfig, PropPartitioner
        from repro.engine.units import partitioner_fingerprint

        fps = {
            partitioner_fingerprint(
                PropPartitioner(PropConfig(kernel=k))
            )
            for k in ("auto", "python", "numpy")
        }
        assert len(fps) == 1

    def test_fm_la_fingerprints_ignore_kernel(self):
        from repro.baselines import FMPartitioner, LAPartitioner
        from repro.engine.units import partitioner_fingerprint

        fm = {
            partitioner_fingerprint(FMPartitioner("bucket", kernel=k))
            for k in ("auto", "python", "numpy")
        }
        la = {
            partitioner_fingerprint(LAPartitioner(2, kernel=k))
            for k in ("auto", "python", "numpy")
        }
        assert len(fm) == 1
        assert len(la) == 1

    def test_kernel_field_still_in_describe(self):
        from repro.core import PropConfig

        assert PropConfig(kernel="python").describe()["kernel"] == "python"


class TestAutoCutoff:
    """The instance-size cutoff behind auto-kernel selection.

    BENCH_kernels.json showed the vectorized backend *losing* on small
    circuits (balu full_pass 0.92x): below a few thousand pins the numpy
    call overhead exceeds the work.  ``resolve_kernel`` therefore takes
    the instance size into account for ``auto`` — and only for ``auto``;
    explicit requests and ``REPRO_KERNEL`` stay honored at any size.
    """

    def test_auto_below_cutoff_prefers_scalar(self, monkeypatch):
        from repro.kernels import AUTO_SCALAR_CUTOFF_PINS

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(
            "auto", num_pins=AUTO_SCALAR_CUTOFF_PINS - 1
        ) == "python"
        assert resolve_kernel(
            "auto", num_pins=AUTO_SCALAR_CUTOFF_PINS
        ) == "numpy"
        # No size information -> preserve the old availability-only rule.
        assert resolve_kernel("auto") == "numpy"

    def test_balu_sits_below_the_cutoff(self, monkeypatch):
        """The motivating case: balu (2697 pins) resolves to scalar."""
        from repro.hypergraph import make_benchmark
        from repro.kernels import AUTO_SCALAR_CUTOFF_PINS

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        balu = make_benchmark("balu")
        assert balu.num_pins < AUTO_SCALAR_CUTOFF_PINS
        assert resolve_kernel("auto", num_pins=balu.num_pins) == "python"

    def test_explicit_numpy_honored_below_cutoff(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel("numpy", num_pins=10) == "numpy"
        assert resolve_kernel("subround", num_pins=10) == "subround"

    def test_env_override_honored_below_cutoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel("auto", num_pins=10) == "numpy"

    def test_env_cannot_select_subround(self, monkeypatch):
        """``REPRO_KERNEL=subround`` must warn and fall through: the
        sub-round engine changes results, so an ambient variable could
        poison cached fingerprints if it were honored here."""
        monkeypatch.setenv("REPRO_KERNEL", "subround")
        with pytest.warns(RuntimeWarning):
            assert resolve_kernel("auto") in ("python", "numpy")

    def test_small_auto_run_uses_scalar_end_to_end(self, monkeypatch):
        from repro.core import PropConfig
        from repro.core.engine import run_prop
        from repro.partition import BalanceConstraint

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        graph = random_instance(3)  # far below the cutoff
        sides = random_balanced_sides(graph, 3)
        balance = BalanceConstraint.fifty_fifty(graph)
        result = run_prop(
            graph, sides, balance, PropConfig(kernel="auto"), seed=3
        )
        assert result.stats["kernel_numpy"] == 0.0


class TestSubroundFingerprint:
    """kernel="subround" changes results, so it must change identities."""

    def test_subround_prop_fingerprint_differs(self):
        from repro.core import PropConfig, PropPartitioner
        from repro.engine.units import partitioner_fingerprint

        base = partitioner_fingerprint(PropPartitioner(PropConfig()))
        sub = partitioner_fingerprint(
            PropPartitioner(PropConfig(kernel="subround"))
        )
        assert base != sub

    def test_subround_worker_count_is_fingerprint_neutral(self):
        """Workers only change *how fast*, never *what* — by the
        invariance matrix — so they must not split the cache."""
        from repro.core import PropConfig, PropPartitioner
        from repro.engine.units import partitioner_fingerprint

        fps = {
            partitioner_fingerprint(
                PropPartitioner(
                    PropConfig(kernel="subround", subround_workers=w)
                )
            )
            for w in (0, 2, 4)
        }
        assert len(fps) == 1

    def test_batch_fraction_is_result_relevant(self):
        from repro.core import PropConfig, PropPartitioner
        from repro.engine.units import partitioner_fingerprint

        a = partitioner_fingerprint(
            PropPartitioner(PropConfig(kernel="subround"))
        )
        b = partitioner_fingerprint(
            PropPartitioner(
                PropConfig(
                    kernel="subround", subround_batch_fraction=0.25
                )
            )
        )
        assert a != b

    def test_subround_fm_fingerprint_differs(self):
        from repro.baselines import FMPartitioner
        from repro.engine.units import partitioner_fingerprint

        base = partitioner_fingerprint(FMPartitioner("bucket"))
        sub = partitioner_fingerprint(
            FMPartitioner("bucket", kernel="subround")
        )
        assert base != sub
