"""Worker-count invariance of the sub-round engine: N workers, one answer.

The sub-round kernel's headline contract is that parallelism is an
implementation detail: running the same instance with 0 (inline), 2, 4,
or ``cpu_count`` shared-memory workers produces the *byte-identical*
move sequence, final sides, cut, and per-pass cut trajectory.  The
design makes this cheap to promise — products and gains are computed
over contiguous ranges whose per-element results do not depend on the
range split, and batch selection happens in the coordinator from the
full gain vector — but the promise only stays true while nobody adds a
reduction whose order depends on the split.  This matrix is the fence.

These tests are deliberately unmarked so they run in the tier-1 lane.
"""

import multiprocessing
import os

import pytest

pytest.importorskip("numpy")

from repro.baselines.fm import run_fm
from repro.core import PropConfig
from repro.core.engine import run_prop
from repro.engine.shm import pool_supported
from repro.partition import BalanceConstraint, random_balanced_sides
from repro.testing.golden import CIRCUITS, CORPUS_SEED, build_circuit

#: Worker counts exercised by the matrix.  0 is the inline (no-pool)
#: engine — the reference every pooled run must reproduce.
WORKER_MATRIX = sorted({0, 1, 2, 4, multiprocessing.cpu_count()})

_CIRCUIT_NAMES = sorted(CIRCUITS)


def _corpus_case(name):
    graph = build_circuit(CIRCUITS[name])
    sides = random_balanced_sides(graph, seed=CORPUS_SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    return graph, sides, balance


def _prop_subround(graph, sides, balance, workers):
    moves = []
    result = run_prop(
        graph, sides, balance,
        PropConfig(kernel="subround", subround_workers=workers),
        seed=CORPUS_SEED,
        observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
    )
    return moves, result


def _fm_subround(graph, sides, balance, workers):
    moves = []
    result = run_fm(
        graph, sides, balance,
        seed=CORPUS_SEED,
        kernel="subround",
        subround_workers=workers,
        observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
    )
    return moves, result


def _assert_same_run(reference, candidate, workers):
    ref_moves, ref_result = reference
    moves, result = candidate
    assert moves == ref_moves, (
        f"move sequence diverged at workers={workers}"
    )
    assert result.cut == ref_result.cut
    assert result.sides == ref_result.sides
    assert result.pass_cuts == ref_result.pass_cuts
    assert result.passes == ref_result.passes
    # Deterministic (non-timing) sub-round telemetry is part of the
    # contract too: the same batches form regardless of worker count.
    for stat in ("subrounds", "subround_batch_max", "underflow_recomputes"):
        if stat in ref_result.stats:  # FM runs carry no underflow stat
            assert result.stats[stat] == ref_result.stats[stat]


def _assert_pool_engaged(result, workers):
    """A pooled run must actually have attached, not silently fallen back."""
    if workers >= 2 and pool_supported():
        assert result.stats["subround_shm_fallbacks"] == 0.0
        assert result.stats["subround_workers"] == float(workers)
    else:
        assert result.stats["subround_workers"] == 0.0


@pytest.mark.parametrize("circuit", _CIRCUIT_NAMES)
def test_prop_worker_count_invariance(circuit):
    graph, sides, balance = _corpus_case(circuit)
    reference = _prop_subround(graph, sides, balance, 0)
    assert reference[1].stats["kernel_subround"] == 1.0
    for workers in WORKER_MATRIX[1:]:
        candidate = _prop_subround(graph, sides, balance, workers)
        _assert_same_run(reference, candidate, workers)
        _assert_pool_engaged(candidate[1], workers)


@pytest.mark.parametrize("circuit", _CIRCUIT_NAMES)
def test_fm_worker_count_invariance(circuit):
    graph, sides, balance = _corpus_case(circuit)
    reference = _fm_subround(graph, sides, balance, 0)
    assert reference[1].stats["kernel_subround"] == 1.0
    for workers in WORKER_MATRIX[1:]:
        candidate = _fm_subround(graph, sides, balance, workers)
        _assert_same_run(reference, candidate, workers)
        _assert_pool_engaged(candidate[1], workers)


def test_prop_subround_is_seed_deterministic():
    """Same seed twice → identical everything; the tie keys are seeded."""
    graph, sides, balance = _corpus_case("hier150")
    a = _prop_subround(graph, sides, balance, 0)
    b = _prop_subround(graph, sides, balance, 0)
    _assert_same_run(a, b, 0)


def test_prop_subround_seed_changes_tie_breaks():
    """Different seeds may legitimately produce different runs, because
    the tie-break keys derive from the seed.  This pin documents that the
    seed is actually *wired through* — if both seeds produced identical
    move sequences on a circuit with ties, the keys would be dead code.
    """
    graph, sides, balance = _corpus_case("hier150")
    moves_a, _ = _prop_subround(graph, sides, balance, 0)
    moves_b = []
    run_prop(
        graph, sides, balance,
        PropConfig(kernel="subround"),
        seed=CORPUS_SEED + 1,
        observer=lambda p, n, sg, ig: moves_b.append((p, n, sg, ig)),
    )
    # Both runs are valid; equality of full traces across different seeds
    # on this instance would be astronomically unlikely unless the seed
    # were ignored.
    assert moves_a != moves_b


def test_pooled_run_leaves_no_shm_segments():
    """/dev/shm must hold no repro-created segments after a pooled run."""
    if not pool_supported():
        pytest.skip("shared-memory pool unsupported in this context")
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        pytest.skip("no /dev/shm on this platform")
    before = set(os.listdir(shm_dir))
    graph, sides, balance = _corpus_case("hier150")
    _, result = _prop_subround(graph, sides, balance, 2)
    assert result.stats["subround_workers"] == 2.0
    leaked = {
        name for name in set(os.listdir(shm_dir)) - before
        if name.startswith("psm_")
    }
    assert leaked == set()
