"""Bitwise equivalence of the incremental FM sub-round gain updates.

The FM engine now recomputes only the pins of nets attached to the
applied batch between sub-rounds (:func:`fm_gains_subset`) instead of a
full Eqn. (1) sweep.  The update is exact — a batch changes pin counts
only on its own nets and sides only on its own nodes — but only while
the subset kernel accumulates per-node terms in the same CSR pin order
as the full-range kernel.  These tests are that fence, at both the
kernel level (subset vs range on arbitrary node sets) and the engine
level (full runs with incremental vs forced-full updates must produce
byte-identical move sequences).
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.fm import run_fm
from repro.kernels.csr import CsrView
from repro.kernels import subround as subround_mod
from repro.kernels.subround import (
    SubroundFMEngine,
    fm_gains_range,
    fm_gains_subset,
)
from repro.partition import (
    BalanceConstraint,
    Partition,
    random_balanced_sides,
)
from repro.testing.golden import CIRCUITS, CORPUS_SEED, build_circuit

_CIRCUIT_NAMES = sorted(CIRCUITS)


def _arrays(name, seed):
    graph = build_circuit(CIRCUITS[name])
    sides = random_balanced_sides(graph, seed=seed)
    part = Partition(graph, sides)
    csr = CsrView(graph)
    sides_arr = np.asarray(part.sides_view(), dtype=np.int8)
    counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
    counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
    return graph, csr, sides_arr, counts0, counts1


@pytest.mark.parametrize("circuit", _CIRCUIT_NAMES)
def test_fm_gains_subset_matches_range(circuit):
    graph, csr, sides, counts0, counts1 = _arrays(circuit, CORPUS_SEED)
    n = csr.num_nodes
    full = np.empty(n, dtype=np.float64)
    fm_gains_range(
        0, n, sides, counts0, counts1,
        csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset, full,
    )
    rng = random.Random(CORPUS_SEED)
    for size in (1, 2, n // 3 or 1, n):
        nodes = np.asarray(
            sorted(rng.sample(range(n), size)), dtype=np.intp
        )
        out = np.full(n, np.nan)
        ret = fm_gains_subset(
            nodes, sides, counts0, counts1,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset, out,
        )
        assert ret == 0
        # Bitwise, not approximate: same terms summed in the same order.
        assert np.array_equal(out[nodes], full[nodes])
        untouched = np.setdiff1d(np.arange(n), nodes)
        assert np.all(np.isnan(out[untouched]))


def test_fm_gains_subset_empty_is_noop():
    _, csr, sides, counts0, counts1 = _arrays("hier150", CORPUS_SEED)
    out = np.full(csr.num_nodes, 7.0)
    ret = fm_gains_subset(
        np.empty(0, dtype=np.intp), sides, counts0, counts1,
        csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset, out,
    )
    assert ret == 0
    assert np.all(out == 7.0)


class _FullRecomputeFMEngine(SubroundFMEngine):
    """Reference engine: the pre-incremental full sweep every sub-round."""

    def _next_gains(self, gains):
        return self._compute_gains().copy()


def _fm_run(graph, sides, balance, engine_cls):
    moves = []
    original = subround_mod.SubroundFMEngine
    subround_mod.SubroundFMEngine = engine_cls
    try:
        result = run_fm(
            graph, sides, balance,
            seed=CORPUS_SEED,
            kernel="subround",
            observer=lambda p, n, sg, ig: moves.append((p, n, sg, ig)),
        )
    finally:
        subround_mod.SubroundFMEngine = original
    return moves, result


@pytest.mark.parametrize("circuit", _CIRCUIT_NAMES)
def test_incremental_engine_matches_full_recompute(circuit):
    graph = build_circuit(CIRCUITS[circuit])
    sides = random_balanced_sides(graph, seed=CORPUS_SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    ref_moves, ref_result = _fm_run(
        graph, sides, balance, _FullRecomputeFMEngine
    )
    inc_moves, inc_result = _fm_run(
        graph, sides, balance, SubroundFMEngine
    )
    assert inc_moves == ref_moves
    assert inc_result.cut == ref_result.cut
    assert inc_result.sides == ref_result.sides
    assert inc_result.pass_cuts == ref_result.pass_cuts
    assert inc_result.stats["subrounds"] == ref_result.stats["subrounds"]
