"""CSR view structure tests: the packed arrays must mirror the graph.

The whole kernels layer leans on one invariant — CSR pin order equals the
graph's iteration order (net-major pins in ``graph.net(e)`` order,
node-major pins in ``graph.node_nets(v)`` order) — because sequential
floating-point products are only reproducible when the factors arrive in
the same order.  These tests pin that invariant structurally.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.hypergraph import make_benchmark
from repro.kernels.csr import CsrView
from repro.testing import random_instance, weighted_instance


@pytest.fixture(params=[0, 7, 101])
def graph(request):
    return weighted_instance(request.param, max_nodes=20)


def test_shapes_and_counts(graph):
    csr = CsrView(graph)
    assert csr.num_nodes == graph.num_nodes
    assert csr.num_nets == graph.num_nets
    assert csr.num_pins == graph.num_pins
    assert len(csr.pin_node) == graph.num_pins
    assert len(csr.nm_net) == graph.num_pins
    assert csr.net_offset[0] == 0 and csr.net_offset[-1] == graph.num_pins
    assert csr.node_offset[0] == 0 and csr.node_offset[-1] == graph.num_pins


def test_net_major_order_matches_graph(graph):
    csr = CsrView(graph)
    for e in range(graph.num_nets):
        lo, hi = int(csr.net_offset[e]), int(csr.net_offset[e + 1])
        assert tuple(int(v) for v in csr.pin_node[lo:hi]) == graph.net(e)
        assert all(int(n) == e for n in csr.pin_net[lo:hi])
        assert csr.net_cost[e] == graph.net_cost(e)


def test_node_major_order_matches_graph(graph):
    csr = CsrView(graph)
    for v in range(graph.num_nodes):
        lo, hi = int(csr.node_offset[v]), int(csr.node_offset[v + 1])
        assert tuple(int(n) for n in csr.nm_net[lo:hi]) == tuple(
            graph.node_nets(v)
        )
        assert all(int(o) == v for o in csr.nm_owner[lo:hi])


def test_netpin_nodepin_mapping_is_a_bijection(graph):
    """Every net-major pin maps to the node-major slot of the same pin."""
    csr = CsrView(graph)
    seen = set()
    for j in range(graph.num_pins):
        i = int(csr.netpin_to_nodepin[j])
        assert i not in seen
        seen.add(i)
        # Same (node, net) pin on both sides of the mapping.
        assert int(csr.pin_node[j]) == int(csr.nm_owner[i])
        assert int(csr.pin_net[j]) == int(csr.nm_net[i])
    assert len(seen) == graph.num_pins


def test_list_twins_match_arrays(graph):
    """The plain-list copies used by the scalar move loop stay in sync."""
    csr = CsrView(graph)
    assert csr.net_offset_list == csr.net_offset.tolist()
    assert csr.node_offset_list == csr.node_offset.tolist()
    assert csr.netpin_to_nodepin_list == csr.netpin_to_nodepin.tolist()


def test_build_seconds_recorded():
    csr = CsrView(random_instance(3))
    assert csr.build_seconds >= 0.0


def test_benchmark_circuit_roundtrip():
    g = make_benchmark("t5", scale=0.05)
    csr = CsrView(g)
    rebuilt = [
        [int(v) for v in csr.pin_node[csr.net_offset[e]: csr.net_offset[e + 1]]]
        for e in range(g.num_nets)
    ]
    assert rebuilt == [list(g.net(e)) for e in range(g.num_nets)]
