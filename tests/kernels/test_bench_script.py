"""Smoke tests for the kernel micro-benchmark and its tracked baseline."""

import json
import os
import subprocess
import sys

import pytest

pytest.importorskip("numpy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "perf_bench.py")
BASELINE = os.path.join(REPO_ROOT, "BENCH_kernels.json")


@pytest.mark.slow
def test_smoke_run_writes_report(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--smoke", "--output", str(out)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert set(report["circuits"]) == {"balu", "s9234", "industry2"}
    for name, entry in report["circuits"].items():
        assert entry["timings"]["python"]["all_gains"] > 0.0
        assert entry["timings"]["numpy"]["all_gains"] > 0.0
        assert entry["speedup"]["all_gains"] > 0.0
    # Smoke mode still runs the full-pass benchmark on the small circuit
    # (which cross-checks that both backends reach the same cut).
    assert "full_pass" in report["circuits"]["balu"]["timings"]["python"]


def test_committed_baseline_is_valid():
    """The tracked baseline exists, parses, and records the headline
    speedup: numpy ``all_gains`` at least 3x the scalar path on the
    large (industry2-sized) instance."""
    with open(BASELINE) as fh:
        report = json.load(fh)
    large = report["circuits"]["industry2"]
    assert large["size"] == "large"
    assert large["num_pins"] == 48404
    assert large["speedup"]["all_gains"] >= 3.0
    assert not report["smoke"], "baseline must come from a full run"
