"""Edge cases shared across the baseline partitioners."""

import pytest

from repro.baselines import (
    AnnealingPartitioner,
    Eig1Partitioner,
    FMPartitioner,
    KLPartitioner,
    LAPartitioner,
    MeloPartitioner,
    ParaboliPartitioner,
    SKPartitioner,
    WindowPartitioner,
)
from repro.hypergraph import Hypergraph, star_circuit

ALL_BASELINES = [
    ("FM-bucket", lambda: FMPartitioner("bucket")),
    ("FM-tree", lambda: FMPartitioner("tree")),
    ("LA-2", lambda: LAPartitioner(2)),
    ("KL", KLPartitioner),
    ("SK", SKPartitioner),
    ("SA", AnnealingPartitioner),
    ("EIG1", Eig1Partitioner),
    ("MELO", MeloPartitioner),
    ("WINDOW", WindowPartitioner),
    ("PARABOLI", ParaboliPartitioner),
]

IDS = [name for name, _ in ALL_BASELINES]


@pytest.fixture
def small_graph():
    """12 nodes, two obvious clusters."""
    nets = (
        [[a, b] for a in range(6) for b in range(a + 1, 6) if b - a <= 2]
        + [[a, b] for a in range(6, 12) for b in range(a + 1, 12) if b - a <= 2]
        + [[0, 6]]
    )
    return Hypergraph(nets, num_nodes=12)


class TestSmallGraphs:
    @pytest.mark.parametrize("name,make", ALL_BASELINES, ids=IDS)
    def test_small_two_cluster_graph(self, small_graph, name, make):
        result = make().partition(small_graph, seed=0)
        result.verify(small_graph)
        # the single bridge net is the obvious optimum
        assert result.cut <= 3.0, name

    @pytest.mark.parametrize("name,make", ALL_BASELINES, ids=IDS)
    def test_star_single_net(self, name, make):
        """A single hyperedge can contribute at most 1 to any cut."""
        graph = star_circuit(9, as_single_net=True)
        result = make().partition(graph, seed=0)
        assert result.cut <= 1.0, name

    @pytest.mark.parametrize("name,make", ALL_BASELINES, ids=IDS)
    def test_isolated_nodes_tolerated(self, name, make):
        graph = Hypergraph([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]],
                           num_nodes=10)
        result = make().partition(graph, seed=1)
        result.verify(graph)
        assert len(result.sides) == 10
