"""Tests for the PARABOLI-style quadratic-placement partitioner."""

import numpy as np
import pytest

from repro.baselines import (
    ParaboliPartitioner,
    pseudo_peripheral_pair,
    quadratic_placement,
)
from repro.hypergraph import Hypergraph, planted_bisection
from repro.partition import balance_ratio, cut_cost, random_balanced_sides


def _chain(n=10):
    return Hypergraph([[i, i + 1] for i in range(n - 1)], num_nodes=n)


class TestPeripheralPair:
    def test_chain_endpoints(self):
        a, b = pseudo_peripheral_pair(_chain(10))
        assert {a, b} == {0, 9}

    def test_distinct(self, medium_circuit):
        a, b = pseudo_peripheral_pair(medium_circuit)
        assert a != b

    def test_too_small(self):
        with pytest.raises(ValueError):
            pseudo_peripheral_pair(Hypergraph([[0]], num_nodes=1))


class TestQuadraticPlacement:
    def test_chain_is_linear_ramp(self):
        """Harmonic extension on a path = linear interpolation."""
        x = quadratic_placement(_chain(5), [0], [4])
        np.testing.assert_allclose(x, [0, 0.25, 0.5, 0.75, 1.0], atol=1e-6)

    def test_anchor_values_fixed(self, medium_circuit):
        x = quadratic_placement(medium_circuit, [0, 1], [2, 3])
        assert x[0] == 0.0 and x[1] == 0.0
        assert x[2] == 1.0 and x[3] == 1.0

    def test_interior_within_hull(self, medium_circuit):
        x = quadratic_placement(medium_circuit, [0], [1])
        assert x.min() >= -1e-6
        assert x.max() <= 1.0 + 1e-6

    def test_conflicting_anchor_rejected(self, medium_circuit):
        with pytest.raises(ValueError, match="both sides"):
            quadratic_placement(medium_circuit, [0], [0])

    def test_needs_interior(self):
        with pytest.raises(ValueError):
            quadratic_placement(Hypergraph([[0, 1]]), [0], [1])


class TestParaboliPartitioner:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParaboliPartitioner(iterations=0)
        with pytest.raises(ValueError):
            ParaboliPartitioner(anchor_fraction=0.9)

    def test_finds_planted_cut(self):
        graph, _, crossing = planted_bisection(40, 110, 3, seed=5)
        result = ParaboliPartitioner().partition(graph)
        assert result.cut <= crossing + 4
        result.verify(graph)

    def test_balance(self, medium_circuit):
        result = ParaboliPartitioner().partition(medium_circuit)
        assert balance_ratio(medium_circuit, result.sides) <= 0.55 + 1e-9

    def test_beats_random(self, medium_circuit):
        random_cut = cut_cost(
            medium_circuit, random_balanced_sides(medium_circuit, 0)
        )
        result = ParaboliPartitioner().partition(medium_circuit)
        assert result.cut < random_cut

    def test_deterministic(self, medium_circuit):
        a = ParaboliPartitioner().partition(medium_circuit)
        b = ParaboliPartitioner().partition(medium_circuit)
        assert a.sides == b.sides

    def test_passes_equals_iterations(self, medium_circuit):
        result = ParaboliPartitioner(iterations=2).partition(medium_circuit)
        assert result.passes == 2
