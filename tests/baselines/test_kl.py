"""Tests for the Kernighan–Lin pair-swap baseline."""

import pytest

from repro.baselines import KLPartitioner
from repro.partition import balance_ratio, cut_cost, random_balanced_sides


class TestKL:
    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = KLPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut < before
        result.verify(medium_circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        best = min(
            KLPartitioner().partition(graph, seed=s).cut for s in range(4)
        )
        assert best <= crossing + 3

    def test_swaps_preserve_balance_exactly(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 1)
        result = KLPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert sum(result.sides) == sum(initial)

    def test_deterministic(self, medium_circuit):
        a = KLPartitioner().partition(medium_circuit, seed=2)
        b = KLPartitioner().partition(medium_circuit, seed=2)
        assert a.sides == b.sides

    def test_candidate_limit_validated(self):
        with pytest.raises(ValueError):
            KLPartitioner(candidate_limit=0)

    def test_never_worsens(self):
        from repro.hypergraph import hierarchical_circuit

        for seed in range(4):
            graph = hierarchical_circuit(60, 66, 230, seed=seed)
            initial = random_balanced_sides(graph, seed)
            result = KLPartitioner().partition(graph, initial_sides=initial)
            assert result.cut <= cut_cost(graph, initial)

    def test_balance_ratio_stays_half(self, medium_circuit):
        result = KLPartitioner().partition(medium_circuit, seed=0)
        assert balance_ratio(medium_circuit, result.sides) == pytest.approx(
            0.5, abs=0.01
        )
