"""Tests for the Krishnamurthy lookahead (LA-k) baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FMPartitioner, LAPartitioner, gain_vector
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import (
    Partition,
    balance_ratio,
    cut_cost,
    random_balanced_sides,
)


class TestGainVector:
    def test_first_element_is_fm_gain(self):
        """LA level 1 must equal the deterministic FM gain (Eqn. 1)."""
        graph = hierarchical_circuit(50, 56, 200, seed=1)
        partition = Partition(graph, random_balanced_sides(graph, 1))
        for v in range(graph.num_nodes):
            vec = gain_vector(partition, v, 3)
            assert vec[0] == pytest.approx(partition.immediate_gain(v))

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_first_element_is_fm_gain_with_locks(self, seed):
        graph = hierarchical_circuit(40, 44, 160, seed=seed % 3)
        partition = Partition(graph, random_balanced_sides(graph, seed))
        # lock a few nodes by moving them (as a pass would)
        for v in range(0, graph.num_nodes, 7):
            partition.move_and_lock(v)
        for v in range(graph.num_nodes):
            if partition.is_locked(v):
                continue
            vec = gain_vector(partition, v, 2)
            assert vec[0] == pytest.approx(partition.immediate_gain(v))

    def test_lookahead_separates_figure1_style_nodes(self):
        """Two nodes with equal FM gain but different 2nd-level prospects
        must order correctly (the Sec. 2 motivation)."""
        # u=0: cut net alone + cut net with 1 partner (level-2 prospect)
        # u=4: cut net alone + cut net with 3 partners (level-4 prospect)
        nets = [
            [0, 8], [0, 1, 8],          # node 0 nets (8 = other side)
            [4, 9], [4, 5, 6, 7, 9],    # node 4 nets (9 = other side)
        ]
        sides = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1]
        graph = Hypergraph(nets, num_nodes=10)
        partition = Partition(graph, sides)
        v0 = gain_vector(partition, 0, 3)
        v4 = gain_vector(partition, 4, 3)
        assert v0[0] == v4[0] == 1  # same FM gain
        assert v0 > v4              # but node 0 is the better move

    def test_internal_net_negative_at_level_one(self):
        graph = Hypergraph([[0, 1]], num_nodes=2)
        partition = Partition(graph, [0, 0])
        assert gain_vector(partition, 0, 2) == (-1.0, 1.0)

    def test_vector_length_is_k(self):
        graph = Hypergraph([[0, 1]], num_nodes=2)
        partition = Partition(graph, [0, 1])
        assert len(gain_vector(partition, 0, 4)) == 4


class TestPartitioner:
    def test_k_validated(self):
        with pytest.raises(ValueError):
            LAPartitioner(0)

    def test_name(self):
        assert LAPartitioner(3).name == "LA-3"

    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = LAPartitioner(2).partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut < before * 0.7
        result.verify(medium_circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        best = min(
            LAPartitioner(2).partition(graph, seed=s).cut for s in range(4)
        )
        assert best <= crossing + 2

    def test_la1_equivalent_quality_to_fm(self, medium_circuit):
        """With k=1 the vector degenerates to the FM gain; quality over a
        few seeds must match FM's closely (tie-breaking may differ)."""
        la_best = min(
            LAPartitioner(1).partition(medium_circuit, seed=s).cut
            for s in range(4)
        )
        fm_best = min(
            FMPartitioner("tree").partition(medium_circuit, seed=s).cut
            for s in range(4)
        )
        assert la_best <= fm_best * 1.25
        assert fm_best <= la_best * 1.25

    def test_balance_respected(self, medium_circuit):
        result = LAPartitioner(3).partition(medium_circuit, seed=2)
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            1.5 / medium_circuit.num_nodes
        )

    def test_deterministic(self, medium_circuit):
        a = LAPartitioner(2).partition(medium_circuit, seed=5)
        b = LAPartitioner(2).partition(medium_circuit, seed=5)
        assert a.sides == b.sides

    def test_weighted_nets(self, medium_circuit):
        weighted = medium_circuit.with_net_costs(
            [1.0 + (i % 2) for i in range(medium_circuit.num_nets)]
        )
        LAPartitioner(2).partition(weighted, seed=1).verify(weighted)
