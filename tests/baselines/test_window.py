"""Tests for the WINDOW-style clustering partitioner."""

import pytest

from repro.baselines import WindowPartitioner, attraction_ordering
from repro.hypergraph import Hypergraph, planted_bisection
from repro.partition import balance_ratio, cut_cost, random_balanced_sides


class TestAttractionOrdering:
    def test_is_permutation(self, medium_circuit):
        order = attraction_ordering(medium_circuit)
        assert sorted(order) == list(range(medium_circuit.num_nodes))

    def test_starts_with_max_degree(self, medium_circuit):
        order = attraction_ordering(medium_circuit)
        max_degree = max(
            medium_circuit.node_degree(v)
            for v in range(medium_circuit.num_nodes)
        )
        assert medium_circuit.node_degree(order[0]) == max_degree

    def test_explicit_start(self, medium_circuit):
        order = attraction_ordering(medium_circuit, start=17)
        assert order[0] == 17

    def test_neighbors_come_early(self):
        """In a chain, the ordering must crawl along the chain, never jump."""
        chain = Hypergraph([[i, i + 1] for i in range(9)], num_nodes=10)
        order = attraction_ordering(chain, start=0)
        # from a chain end, attraction ordering is exactly the chain
        assert order == list(range(10))

    def test_empty_graph(self):
        assert attraction_ordering(Hypergraph([], num_nodes=0)) == []

    def test_deterministic(self, medium_circuit):
        assert attraction_ordering(medium_circuit) == attraction_ordering(
            medium_circuit
        )


class TestWindowPartitioner:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowPartitioner(cluster_size=0)
        with pytest.raises(ValueError):
            WindowPartitioner(coarse_runs=0)
        with pytest.raises(ValueError):
            WindowPartitioner(refine_runs=0)

    def test_quality_on_planted(self, planted):
        graph, _, crossing = planted
        result = WindowPartitioner(refine_runs=5).partition(graph, seed=0)
        assert result.cut <= crossing + 3
        result.verify(graph)

    def test_beats_random(self, medium_circuit):
        random_cut = cut_cost(
            medium_circuit, random_balanced_sides(medium_circuit, 0)
        )
        result = WindowPartitioner(refine_runs=5).partition(
            medium_circuit, seed=0
        )
        assert result.cut < random_cut * 0.6

    def test_balance(self, medium_circuit):
        result = WindowPartitioner(refine_runs=3).partition(
            medium_circuit, seed=1
        )
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            2.0 / medium_circuit.num_nodes
        )

    def test_records_coarse_stats(self, medium_circuit):
        result = WindowPartitioner(
            cluster_size=10, refine_runs=2
        ).partition(medium_circuit, seed=0)
        expected_clusters = -(-medium_circuit.num_nodes // 10)  # ceil
        assert result.stats["coarse_nodes"] == float(expected_clusters)

    def test_deterministic_given_seed(self, medium_circuit):
        a = WindowPartitioner(refine_runs=2).partition(medium_circuit, seed=4)
        b = WindowPartitioner(refine_runs=2).partition(medium_circuit, seed=4)
        assert a.sides == b.sides
