"""Tests for the spectral baselines: Laplacian, EIG1, MELO."""

import numpy as np
import pytest

from repro.baselines import Eig1Partitioner, MeloPartitioner
from repro.baselines.spectral import (
    fiedler_vector,
    laplacian_matrix,
    smallest_eigenvectors,
)
from repro.hypergraph import Hypergraph, planted_bisection
from repro.partition import balance_ratio, cut_cost


class TestLaplacian:
    def test_two_pin_net(self):
        lap = laplacian_matrix(Hypergraph([[0, 1]])).toarray()
        np.testing.assert_allclose(lap, [[1, -1], [-1, 1]])

    def test_three_pin_net_clique_weights(self):
        lap = laplacian_matrix(Hypergraph([[0, 1, 2]])).toarray()
        # each clique edge weighs 0.5; degree = 1.0 per node
        np.testing.assert_allclose(np.diag(lap), [1.0, 1.0, 1.0])
        assert lap[0, 1] == pytest.approx(-0.5)

    def test_rows_sum_to_zero(self, medium_circuit):
        lap = laplacian_matrix(medium_circuit)
        sums = np.asarray(lap.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 0.0, atol=1e-9)

    def test_psd(self):
        graph, _, _ = planted_bisection(15, 30, 3, seed=1)
        lap = laplacian_matrix(graph).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() > -1e-9

    def test_empty_graph(self):
        lap = laplacian_matrix(Hypergraph([], num_nodes=3))
        assert lap.shape == (3, 3)
        assert lap.nnz == 0


class TestEigensolve:
    def test_trivial_eigenpair(self, medium_circuit):
        lap = laplacian_matrix(medium_circuit)
        vals, vecs = smallest_eigenvectors(lap, 2)
        assert vals[0] == pytest.approx(0.0, abs=1e-6)
        # first eigenvector ~ constant on each connected component
        assert vals[0] <= vals[1] + 1e-12

    def test_count_validation(self, medium_circuit):
        lap = laplacian_matrix(medium_circuit)
        with pytest.raises(ValueError):
            smallest_eigenvectors(lap, 0)
        with pytest.raises(ValueError):
            smallest_eigenvectors(lap, medium_circuit.num_nodes)

    def test_fiedler_separates_planted_clusters(self):
        graph, sides, _ = planted_bisection(30, 90, 2, seed=3)
        vec = fiedler_vector(graph)
        side0 = [vec[v] for v in range(len(sides)) if sides[v] == 0]
        side1 = [vec[v] for v in range(len(sides)) if sides[v] == 1]
        # the two planted halves land on opposite ends of the vector
        assert (max(side0) < min(side1)) or (max(side1) < min(side0))


class TestEig1:
    def test_finds_planted_cut(self):
        graph, _, crossing = planted_bisection(40, 110, 3, seed=5)
        result = Eig1Partitioner().partition(graph)
        assert result.cut <= crossing + 3
        result.verify(graph)

    def test_default_balance_4555(self, medium_circuit):
        result = Eig1Partitioner().partition(medium_circuit)
        assert balance_ratio(medium_circuit, result.sides) <= 0.55 + 1e-9

    def test_deterministic(self, medium_circuit):
        a = Eig1Partitioner().partition(medium_circuit)
        b = Eig1Partitioner().partition(medium_circuit, seed=42)
        assert a.sides == b.sides  # seed is bookkeeping only

    def test_name(self):
        assert Eig1Partitioner().name == "EIG1"


class TestMelo:
    def test_finds_planted_cut(self):
        graph, _, crossing = planted_bisection(40, 110, 3, seed=5)
        result = MeloPartitioner().partition(graph)
        assert result.cut <= crossing * 4 + 6
        result.verify(graph)

    def test_balance(self, medium_circuit):
        result = MeloPartitioner().partition(medium_circuit)
        assert balance_ratio(medium_circuit, result.sides) <= 0.55 + 1e-9

    def test_eigenvector_count_validated(self):
        with pytest.raises(ValueError):
            MeloPartitioner(num_eigenvectors=0)

    def test_eigenvector_count_capped_for_small_graphs(self):
        graph = Hypergraph([[0, 1], [1, 2], [2, 3]], num_nodes=4)
        result = MeloPartitioner(num_eigenvectors=10).partition(graph)
        result.verify(graph)

    def test_records_dimension(self, medium_circuit):
        result = MeloPartitioner(num_eigenvectors=3).partition(medium_circuit)
        assert result.stats["eigenvectors"] == 3.0
