"""Tests for the Schweikert–Kernighan pair-swap baseline."""

import pytest

from repro.baselines import KLPartitioner, SKPartitioner
from repro.hypergraph import Hypergraph
from repro.partition import cut_cost, random_balanced_sides


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            SKPartitioner(candidate_limit=0)
        with pytest.raises(ValueError):
            SKPartitioner(max_passes=0)

    def test_name(self):
        assert SKPartitioner().name == "SK"


class TestQuality:
    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = SKPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut < before
        result.verify(medium_circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        best = min(
            SKPartitioner().partition(graph, seed=s).cut for s in range(4)
        )
        assert best <= crossing + 3

    def test_swaps_preserve_balance_exactly(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 1)
        result = SKPartitioner().partition(
            medium_circuit, initial_sides=initial
        )
        assert sum(result.sides) == sum(initial)

    def test_deterministic(self, medium_circuit):
        a = SKPartitioner().partition(medium_circuit, seed=2)
        b = SKPartitioner().partition(medium_circuit, seed=2)
        assert a.sides == b.sides

    def test_never_worsens(self, medium_circuit):
        for seed in range(3):
            initial = random_balanced_sides(medium_circuit, seed)
            result = SKPartitioner().partition(
                medium_circuit, initial_sides=initial
            )
            assert result.cut <= cut_cost(medium_circuit, initial)

    def test_pass_cuts_recorded(self, medium_circuit):
        result = SKPartitioner().partition(medium_circuit, seed=0)
        assert len(result.pass_cuts) == result.passes
        assert result.pass_cuts[-1] == result.cut


class TestNetModelAdvantage:
    def test_hyperedge_counted_once(self):
        """The SK motivation: one 4-pin net crossing the cut costs 1, not
        the 3+ a clique expansion would suggest.  On a netlist built to
        punish clique models, SK's hypergraph gains find the right split.
        """
        # One 4-pin net {0,1,2,3} plus chains anchoring 0,1 left and
        # 2,3 right.  Best bisection keeps the chains whole and cuts only
        # the 4-pin net: cut 1.
        nets = [
            [0, 1, 2, 3],
            [0, 4], [4, 5], [1, 5],
            [2, 6], [6, 7], [3, 7],
        ]
        graph = Hypergraph(nets, num_nodes=8)
        best = min(
            SKPartitioner().partition(graph, seed=s).cut for s in range(6)
        )
        assert best == 1.0

    def test_comparable_to_kl(self, medium_circuit):
        """SK should be at least as good as KL on netlists (it optimizes
        the true objective)."""
        sk_best = min(
            SKPartitioner().partition(medium_circuit, seed=s).cut
            for s in range(3)
        )
        kl_best = min(
            KLPartitioner().partition(medium_circuit, seed=s).cut
            for s in range(3)
        )
        assert sk_best <= kl_best * 1.2
