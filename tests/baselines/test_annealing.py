"""Tests for the simulated-annealing baseline."""

import pytest

from repro.baselines import AnnealingPartitioner
from repro.partition import balance_ratio, cut_cost, random_balanced_sides


class TestValidation:
    def test_temperature_order(self):
        with pytest.raises(ValueError):
            AnnealingPartitioner(t_initial=1.0, t_final=2.0)
        with pytest.raises(ValueError):
            AnnealingPartitioner(t_initial=1.0, t_final=0.0)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            AnnealingPartitioner(alpha=1.0)
        with pytest.raises(ValueError):
            AnnealingPartitioner(alpha=0.0)

    def test_moves_per_temperature(self):
        with pytest.raises(ValueError):
            AnnealingPartitioner(moves_per_temperature=0)


class TestQuality:
    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = AnnealingPartitioner().partition(
            medium_circuit, initial_sides=initial, seed=0
        )
        assert result.cut < before
        result.verify(medium_circuit)

    def test_finds_planted_region(self, planted):
        graph, _, crossing = planted
        result = AnnealingPartitioner().partition(graph, seed=1)
        # SA with the default budget should get within a small factor
        assert result.cut <= crossing * 4 + 8

    def test_balance_respected(self, medium_circuit):
        result = AnnealingPartitioner().partition(medium_circuit, seed=2)
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            2.0 / medium_circuit.num_nodes
        )

    def test_deterministic_given_seed(self, medium_circuit):
        a = AnnealingPartitioner().partition(medium_circuit, seed=5)
        b = AnnealingPartitioner().partition(medium_circuit, seed=5)
        assert a.sides == b.sides

    def test_best_seen_reported_not_final(self, medium_circuit):
        """SA reports the best cut seen, which is never worse than the
        (possibly uphill-perturbed) final state."""
        result = AnnealingPartitioner().partition(medium_circuit, seed=7)
        assert result.cut == cut_cost(medium_circuit, result.sides)

    def test_stats_recorded(self, medium_circuit):
        result = AnnealingPartitioner().partition(medium_circuit, seed=0)
        assert result.stats["accepted_moves"] > 0
        assert result.passes > 1  # temperature steps
