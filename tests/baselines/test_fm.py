"""Tests for the Fidducia–Mattheyses baseline (bucket and tree variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FMPartitioner, run_fm
from repro.baselines.fm import _make_containers, _pick_move, _move_with_gain_updates
from repro.hypergraph import hierarchical_circuit, planted_bisection
from repro.partition import (
    BalanceConstraint,
    Partition,
    balance_ratio,
    cut_cost,
    random_balanced_sides,
)


class TestQuality:
    def test_improves_random_partition(self, medium_circuit):
        initial = random_balanced_sides(medium_circuit, 3)
        before = cut_cost(medium_circuit, initial)
        result = FMPartitioner("bucket").partition(
            medium_circuit, initial_sides=initial
        )
        assert result.cut < before * 0.7

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        best = min(
            FMPartitioner("bucket").partition(graph, seed=s).cut
            for s in range(5)
        )
        assert best <= crossing + 2

    def test_bucket_and_tree_agree(self, medium_circuit):
        """Identical gain maths, identical tie-breaking inputs -> the two
        containers must produce identical-quality results on the same
        seed (cuts equal; sides may differ only through within-gain
        tie order)."""
        b = FMPartitioner("bucket").partition(medium_circuit, seed=7)
        t = FMPartitioner("tree").partition(medium_circuit, seed=7)
        assert b.cut <= cut_cost(medium_circuit, random_balanced_sides(medium_circuit, 7)) * 0.8
        assert abs(b.cut - t.cut) <= max(b.cut, t.cut) * 0.35

    def test_balance_respected(self, medium_circuit):
        result = FMPartitioner("bucket").partition(medium_circuit, seed=2)
        assert balance_ratio(medium_circuit, result.sides) <= 0.5 + (
            1.5 / medium_circuit.num_nodes
        )

    def test_deterministic(self, medium_circuit):
        a = FMPartitioner("bucket").partition(medium_circuit, seed=11)
        b = FMPartitioner("bucket").partition(medium_circuit, seed=11)
        assert a.sides == b.sides


class TestVariants:
    def test_bucket_requires_unit_costs(self, medium_circuit):
        weighted = medium_circuit.with_net_costs(
            [2.0] * medium_circuit.num_nets
        )
        with pytest.raises(ValueError, match="unit net costs"):
            FMPartitioner("bucket").partition(weighted, seed=0)

    def test_tree_handles_weighted_nets(self, medium_circuit):
        weighted = medium_circuit.with_net_costs(
            [1.0 + (i % 4) * 0.5 for i in range(medium_circuit.num_nets)]
        )
        result = FMPartitioner("tree").partition(weighted, seed=0)
        result.verify(weighted)

    def test_unknown_container_rejected(self):
        with pytest.raises(ValueError):
            FMPartitioner("heap")

    def test_algorithm_names(self):
        assert FMPartitioner("bucket").name == "FM-bucket"
        assert FMPartitioner("tree").name == "FM-tree"

    def test_max_passes_cap(self, medium_circuit):
        result = run_fm(
            medium_circuit,
            random_balanced_sides(medium_circuit, 0),
            BalanceConstraint.fifty_fifty(medium_circuit),
            max_passes=1,
        )
        assert result.passes == 1


class TestDeltaGainCorrectness:
    """The heart of FM: after every move, every stored gain must equal a
    from-scratch Eqn.-1 recomputation."""

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_container_gains_match_recompute(self, seed):
        graph = hierarchical_circuit(60, 64, 235, seed=seed % 4)
        partition = Partition(graph, random_balanced_sides(graph, seed))
        balance = BalanceConstraint.fifty_fifty(graph)
        containers = _make_containers(graph, "bucket")
        for v in range(graph.num_nodes):
            containers[partition.side(v)].insert(
                v, int(partition.immediate_gain(v))
            )
        for _ in range(30):
            node = _pick_move(containers, partition, balance)
            if node is None:
                break
            side = partition.side(node)
            containers[side].remove(node)
            _move_with_gain_updates(node, side, partition, containers)
            for v in range(graph.num_nodes):
                if not partition.is_locked(v):
                    stored = containers[partition.side(v)].gain_of(v)
                    assert stored == int(partition.immediate_gain(v)), (
                        f"node {v} stored {stored} != "
                        f"{partition.immediate_gain(v)} after moving {node}"
                    )
        partition.check_invariants()

    def test_realized_gain_returned(self, tiny_graph, tiny_sides):
        partition = Partition(tiny_graph, tiny_sides)
        containers = _make_containers(tiny_graph, "bucket")
        for v in range(6):
            containers[partition.side(v)].insert(
                v, int(partition.immediate_gain(v))
            )
        expected = partition.immediate_gain(2)
        containers[0].remove(2)
        realized = _move_with_gain_updates(2, 0, partition, containers)
        assert realized == expected


class TestPassSemantics:
    def test_cut_never_worsens_over_run(self):
        for seed in range(5):
            graph = hierarchical_circuit(70, 76, 270, seed=seed)
            initial = random_balanced_sides(graph, seed)
            result = FMPartitioner("bucket").partition(
                graph, initial_sides=initial
            )
            assert result.cut <= cut_cost(graph, initial)

    def test_verify_passes(self, medium_circuit):
        FMPartitioner("bucket").partition(medium_circuit, seed=1).verify(
            medium_circuit
        )
