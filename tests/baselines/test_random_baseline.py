"""Tests for the random-partition sanity floor."""

from repro.baselines import (
    FMPartitioner,
    LAPartitioner,
    RandomPartitioner,
)
from repro.core import PropPartitioner


class TestRandomPartitioner:
    def test_balanced(self, medium_circuit):
        result = RandomPartitioner().partition(medium_circuit, seed=0)
        n1 = sum(result.sides)
        assert n1 == medium_circuit.num_nodes // 2
        result.verify(medium_circuit)

    def test_deterministic(self, medium_circuit):
        a = RandomPartitioner().partition(medium_circuit, seed=3)
        b = RandomPartitioner().partition(medium_circuit, seed=3)
        assert a.sides == b.sides

    def test_everyone_beats_random(self, medium_circuit):
        """The sanity check of the whole repo: every real algorithm beats
        a random bisection on a clustered circuit."""
        floor = RandomPartitioner().partition(medium_circuit, seed=0).cut
        for algo in (
            FMPartitioner("bucket"),
            LAPartitioner(2),
            PropPartitioner(),
        ):
            assert algo.partition(medium_circuit, seed=0).cut < floor * 0.7, (
                f"{algo.name} failed to clearly beat random"
            )
