"""Sanity checks on the example scripts.

Full example runs take tens of seconds each; the test suite verifies that
every example compiles, has a main() entry, and documents itself — and
executes the two fastest ones end-to-end.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3, "deliverable requires >= 3 examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_is_documented(path):
    source = path.read_text()
    assert source.lstrip().startswith(("#!", '"""')), "missing docstring"
    assert "def main" in source
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("name", ["netlist_io_tour.py", "quickstart.py"])
def test_fast_examples_run(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()
