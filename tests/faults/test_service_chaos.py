"""Chaos at the service layer: pool crashes under a running service.

The service defaults to inline units (``engine_workers=0``) where
crash/hang faults cannot fire, so this suite explicitly runs jobs over
a process pool (``engine_workers=2``) with a crash plan armed — the
honest pool-crash coverage for partitioning-as-a-service.  The engine's
self-healing (broken pool -> inline fallback) must keep every job's
cuts bit-identical to an undisturbed reference run.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import Engine, EngineConfig
from repro.service import PartitionService, ServiceConfig
from repro.service.schemas import build_units, parse_job_spec

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


PAYLOAD = {
    "generate": {
        "kind": "many_small", "size_range": [8, 14], "seed": 21, "index": 0,
    },
    "algorithm": "fm",
    "runs": 4,
    "seed": 4242,
}


async def _wait_terminal(service, job_id, timeout=120.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        job = service.get_job(job_id)
        if job.terminal:
            return job
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"job {job_id} still {job.state}")
        await asyncio.sleep(0.02)


def _run_job_under_service(tmp_path) -> list:
    async def main():
        service = PartitionService(ServiceConfig(
            cache_dir=str(tmp_path / "cache"),
            use_cache=False,
            engine_workers=2,
            job_workers=1,
            integrity_check=False,
        ))
        await service.start()
        try:
            job = await service.submit(dict(PAYLOAD))
            done = await _wait_terminal(service, job.job_id)
            assert done.state == "done", done.error
            return [r["cut"] for r in done.results]
        finally:
            await service.stop()
    return asyncio.run(main())


def test_pool_crashes_leave_service_results_bit_identical(
    monkeypatch, tmp_path
):
    """Reference first (no faults), then the same job through a service
    whose pool workers crash: cuts must match exactly."""
    spec = parse_job_spec(dict(PAYLOAD))
    engine = Engine(EngineConfig(workers=0, use_cache=False))
    reference = [r.result.cut for r in engine.run(build_units(spec).units)]

    monkeypatch.setenv("REPRO_FAULTS", "crash:1")
    cuts = _run_job_under_service(tmp_path)
    assert cuts == reference


def test_partial_crash_rate_under_service(monkeypatch, tmp_path):
    spec = parse_job_spec(dict(PAYLOAD))
    engine = Engine(EngineConfig(workers=0, use_cache=False))
    reference = [r.result.cut for r in engine.run(build_units(spec).units)]

    monkeypatch.setenv("REPRO_FAULTS", "seed=5,crash:0.5")
    cuts = _run_job_under_service(tmp_path)
    assert cuts == reference


def test_transient_inline_faults_under_service(monkeypatch, tmp_path):
    """Inline-capable kinds (the load smoke's plan) through the service
    core: transient retries and slow IO never change a cut."""
    spec = parse_job_spec(dict(PAYLOAD))
    engine = Engine(EngineConfig(workers=0, use_cache=False))
    reference = [r.result.cut for r in engine.run(build_units(spec).units)]

    monkeypatch.setenv(
        "REPRO_FAULTS", "seed=3,transient:0.3,slow_io:0.3,io_delay=0.002"
    )

    async def main():
        service = PartitionService(ServiceConfig(
            cache_dir=str(tmp_path / "cache"),
            use_cache=False,
            engine_workers=0,
            job_workers=1,
            integrity_check=False,
        ))
        await service.start()
        try:
            job = await service.submit(dict(PAYLOAD))
            done = await _wait_terminal(service, job.job_id)
            assert done.state == "done", done.error
            return [r["cut"] for r in done.results]
        finally:
            await service.stop()

    assert asyncio.run(main()) == reference
