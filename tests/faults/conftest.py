"""Chaos-suite fixtures: fault plans must never leak across tests."""

import pytest

from repro.faults import uninstall


@pytest.fixture(autouse=True)
def _disarm_faults(monkeypatch):
    """Guarantee every test starts and ends with no armed fault plan."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    uninstall()
    yield
    uninstall()
