"""Cache-integrity faults: corruption, truncation, unwritable dir, slow I/O.

The contract under test: the cache is best-effort — no injected storage
fault may change results (damaged records read as misses and recompute)
or abort the run (write failures are counted, not raised).
"""

import pytest

from repro.baselines import FMPartitioner
from repro.engine import Engine, EngineConfig, WorkUnit, seed_stream
from repro.faults import FaultPlan, FaultSpec, injected_faults
from repro.hypergraph import make_benchmark

pytestmark = pytest.mark.chaos

GRAPH = make_benchmark("t6", scale=0.06)


def _units(n=4):
    return [WorkUnit(GRAPH, FMPartitioner("bucket"), seed=s)
            for s in seed_stream(3, n)]


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    # Cache keys mix in the code version; pin it so seeded partial-fault
    # patterns (which hash the record key) survive version bumps.
    kwargs.setdefault("version", "cache-faults-test")
    return Engine(EngineConfig(**kwargs))


@pytest.fixture(scope="module")
def reference_cuts():
    results = Engine(EngineConfig(workers=0, use_cache=False)).run(_units())
    return [r.result.cut for r in results]


@pytest.mark.parametrize("kind", ["corrupt", "truncate"])
def test_damaged_records_recompute_bit_identically(
    tmp_path, reference_cuts, kind
):
    writer = _engine(tmp_path)
    with injected_faults(FaultPlan(specs=(FaultSpec(kind),))):
        writer.run(_units())
    assert writer.cache.stats.writes == 4  # written, then damaged in place

    reader = _engine(tmp_path)
    results = reader.run(_units())
    assert [r.result.cut for r in results] == reference_cuts
    # every damaged record read as a miss, was deleted, and recomputed
    assert reader.stats.cache_hits == 0
    assert reader.stats.executed == 4
    assert reader.cache.stats.errors == 4

    # the recompute rewrote clean records: third run is all cache hits
    third = _engine(tmp_path)
    results = third.run(_units())
    assert [r.result.cut for r in results] == reference_cuts
    assert third.stats.cache_hits == 4


def test_partial_corruption_spares_healthy_records(tmp_path, reference_cuts):
    writer = _engine(tmp_path)
    with injected_faults(FaultPlan(specs=(FaultSpec("corrupt", rate=0.5),),
                                   seed=5)):
        writer.run(_units())
    reader = _engine(tmp_path)
    results = reader.run(_units())
    assert [r.result.cut for r in results] == reference_cuts
    assert 0 < reader.stats.cache_hits < 4
    assert reader.stats.cache_hits + reader.stats.executed == 4


def test_unwritable_cache_never_aborts_the_run(tmp_path, reference_cuts):
    engine = _engine(tmp_path)
    with injected_faults(FaultPlan(specs=(FaultSpec("unwritable"),))):
        results = engine.run(_units())
    assert [r.result.cut for r in results] == reference_cuts
    assert engine.cache.stats.errors == 4
    assert engine.cache.stats.writes == 0
    # nothing persisted: a later run recomputes everything
    again = _engine(tmp_path)
    again.run(_units())
    assert again.stats.cache_hits == 0
    assert again.stats.executed == 4


def test_truly_unwritable_directory(tmp_path, reference_cuts):
    # not injected: cache_dir points at an existing *file*
    blocker = tmp_path / "blocker"
    blocker.write_text("in the way")
    engine = Engine(EngineConfig(workers=0, cache_dir=str(blocker)))
    results = engine.run(_units())
    assert [r.result.cut for r in results] == reference_cuts
    # 4 failed reads (NotADirectoryError) + 4 failed writes
    assert engine.cache.stats.errors == 8
    assert engine.cache.stats.writes == 0


def test_slow_io_delays_but_preserves_results(tmp_path, reference_cuts):
    engine = _engine(tmp_path)
    plan = FaultPlan(specs=(FaultSpec("slow_io"),), io_delay=0.001)
    with injected_faults(plan) as inj:
        results = engine.run(_units())
        assert [r.result.cut for r in results] == reference_cuts
        hits = _engine(tmp_path)
        cached = hits.run(_units())
        assert [r.result.cut for r in cached] == reference_cuts
        assert hits.stats.cache_hits == 4
    assert any(f.startswith("slow_io@read|") for f in inj.fired)
    assert any(f.startswith("slow_io@write|") for f in inj.fired)
