"""Shared-memory pool lifecycle under fault: crash, hang, SIGTERM, resume.

The sub-round pool forks workers that attach one shared segment; the
coordinator promises three things when they misbehave:

* the run still completes, bit-identical, via the inline fallback;
* the segment is always unlinked — ``/dev/shm`` never accumulates
  ``psm_*`` entries, whatever killed the worker;
* journalled runs (``--resume``) replay to the same cuts whether or not
  the original computation degraded to inline mid-run.

Worker-side faults arm through :func:`repro.faults.injected_faults`:
the pool forks its workers, so children inherit the installed injector,
and :meth:`on_subround_worker` only fires inside a child process.
"""

import os
import signal
import time

import pytest

np = pytest.importorskip("numpy")

from repro.core import PropConfig, PropPartitioner
from repro.core.engine import run_prop
from repro.engine import Engine, EngineConfig, WorkUnit, seed_stream
from repro.engine.shm import (
    COMMAND_TIMEOUT_ENV,
    PoolError,
    SubroundPool,
    pool_supported,
)
from repro.faults import FaultPlan, FaultSpec, injected_faults
from repro.hypergraph import make_benchmark
from repro.kernels.csr import CsrView
from repro.partition import (
    BalanceConstraint,
    Partition,
    random_balanced_sides,
)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

GRAPH = make_benchmark("t6", scale=0.05)
SEED = 42


def _shm_listing():
    if not os.path.isdir("/dev/shm"):
        return None
    return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}


@pytest.fixture(autouse=True)
def _require_pool_support():
    if not pool_supported():
        pytest.skip("shared-memory pool unsupported in this context")


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    before = _shm_listing()
    yield
    if before is not None:
        leaked = _shm_listing() - before
        assert leaked == set(), f"leaked /dev/shm segments: {leaked}"


def _subround_run(workers):
    sides = random_balanced_sides(GRAPH, seed=SEED)
    balance = BalanceConstraint.fifty_fifty(GRAPH)
    return run_prop(
        GRAPH, sides, balance,
        PropConfig(kernel="subround", subround_workers=workers),
        seed=SEED,
    )


class TestWorkerCrash:
    def test_crash_engages_inline_fallback_bit_identically(self):
        reference = _subround_run(0)
        plan = FaultPlan(specs=(FaultSpec("crash", rate=1.0),), seed=3)
        with injected_faults(plan):
            faulted = _subround_run(2)
        assert faulted.stats["subround_shm_fallbacks"] >= 1.0
        assert faulted.cut == reference.cut
        assert faulted.sides == reference.sides
        assert faulted.pass_cuts == reference.pass_cuts

    def test_partial_crash_still_bit_identical(self):
        """rate<1 with a nonzero plan seed: whichever worker dies, the
        coordinator cannot trust the round and must fall back whole."""
        reference = _subround_run(0)
        plan = FaultPlan(specs=(FaultSpec("crash", rate=0.5),), seed=11)
        with injected_faults(plan):
            faulted = _subround_run(2)
        assert faulted.cut == reference.cut
        assert faulted.sides == reference.sides


class TestWorkerHang:
    def test_hang_times_out_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(COMMAND_TIMEOUT_ENV, "0.5")
        reference = _subround_run(0)
        plan = FaultPlan(
            specs=(FaultSpec("hang", rate=1.0),), seed=5, hang_seconds=3.0
        )
        t0 = time.monotonic()
        with injected_faults(plan):
            faulted = _subround_run(2)
        # The hung worker is terminated by close(); the run must not
        # have waited out the full hang per command.
        assert time.monotonic() - t0 < 30.0
        assert faulted.stats["subround_shm_fallbacks"] >= 1.0
        assert faulted.cut == reference.cut
        assert faulted.sides == reference.sides


class TestSigterm:
    def test_sigterm_worker_raises_pool_error_and_unlinks(self):
        """Killing a worker externally mid-run: the next barrier fails
        cleanly with PoolError and close() still unlinks the segment."""
        csr = CsrView(GRAPH)
        n, e = csr.num_nodes, csr.num_nets
        pool = SubroundPool(csr, workers=2, timeout=2.0)
        try:
            os.kill(pool._procs[0].pid, signal.SIGTERM)
            pool._procs[0].join(timeout=10.0)
            with pytest.raises(PoolError):
                pool.prop_gains(
                    np.full(n, 0.5), np.zeros(n, dtype=np.int8),
                    np.zeros(n, dtype=bool),
                    np.empty(e), np.empty(e), np.empty(e), np.empty(n),
                )
        finally:
            pool.close()

    def test_close_is_idempotent_after_sigterm(self):
        pool = SubroundPool(CsrView(GRAPH), workers=2, timeout=2.0)
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGTERM)
        pool.close()
        pool.close()  # second close must be a no-op, not an error

    def test_engine_run_survives_sigterm_mid_pass(self):
        """SIGTERM the attached pool's worker from outside while a real
        run is in flight; the run completes inline and stays identical."""
        reference = _subround_run(0)
        sides = random_balanced_sides(GRAPH, seed=SEED)
        balance = BalanceConstraint.fifty_fifty(GRAPH)
        from repro.kernels.subround import SubroundPropEngine

        config = PropConfig(kernel="subround", subround_workers=2)
        engine = SubroundPropEngine(
            Partition(GRAPH, list(sides)), config, SEED
        )
        try:
            pool = engine._ensure_pool()
            assert pool is not None, "pool failed to start"
            os.kill(pool._procs[1].pid, signal.SIGTERM)
            pool._procs[1].join(timeout=10.0)
            result = run_prop(GRAPH, sides, balance, config, seed=SEED)
        finally:
            engine.close()
        assert result.cut == reference.cut
        assert result.sides == reference.sides


class TestResume:
    def _units(self, n=3):
        partitioner = PropPartitioner(
            PropConfig(kernel="subround", subround_workers=2)
        )
        return [
            WorkUnit(GRAPH, partitioner, seed=s)
            for s in seed_stream(SEED, n)
        ]

    def test_resume_after_faulted_run_is_bit_identical(self, tmp_path):
        """A journalled run whose pools all crashed resumes to the same
        cuts as a clean compute — degraded provenance, identical data."""
        clean = Engine(EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "c1"),
        ))
        expected = [r.result.cut for r in clean.run(self._units())]

        plan = FaultPlan(specs=(FaultSpec("crash", rate=1.0),), seed=7)
        faulted = Engine(EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "c2"),
        ))
        with injected_faults(plan):
            first = faulted.run(self._units(), run_id="shm-chaos")
        assert [r.result.cut for r in first] == expected

        resumed = Engine(EngineConfig(
            workers=0, use_cache=False, cache_dir=str(tmp_path / "c2"),
        ))
        replay = resumed.run(
            self._units(), run_id="shm-chaos", resume=True
        )
        assert [r.result.cut for r in replay] == expected
        assert all(r.source == "journal" for r in replay)
