"""FaultPlan grammar, validation, and deterministic firing decisions."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    current_injector,
    deterministic_fraction,
    injected_faults,
    install,
    uninstall,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("corrupt")
        assert spec.rate == 1.0
        assert spec.times is None  # unlimited

    def test_self_healing_kinds_default_to_one_attempt(self):
        for kind in ("crash", "hang", "transient", "pool"):
            assert FaultSpec(kind).times == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor")

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec("crash", rate=-0.1)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", times=-2)


class TestFaultPlanParse:
    def test_parse_kinds_rates_times(self):
        plan = FaultPlan.parse("seed=7,crash:0.3,transient:1:2,corrupt:0.25")
        assert plan.seed == 7
        crash = plan.spec_for("crash")
        assert crash.rate == 0.3 and crash.times == 1
        transient = plan.spec_for("transient")
        assert transient.rate == 1.0 and transient.times == 2
        corrupt = plan.spec_for("corrupt")
        assert corrupt.rate == 0.25 and corrupt.times is None
        assert plan.spec_for("hang") is None

    def test_parse_options(self):
        plan = FaultPlan.parse("hang:1,hang_seconds=2.5,io_delay=0.01")
        assert plan.hang_seconds == 2.5
        assert plan.io_delay == 0.01

    def test_parse_inf_times(self):
        plan = FaultPlan.parse("transient:0.5:inf")
        assert plan.spec_for("transient").times is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:lots")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:1:2:3")
        with pytest.raises(ValueError):
            FaultPlan.parse("volume=11")
        with pytest.raises(ValueError):
            FaultPlan.parse("meteor:1")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.parse("crash:1,crash:0.5")

    def test_describe_round_trips(self):
        plan = FaultPlan.parse(
            "seed=3,crash:0.3,corrupt:0.25:inf,hang_seconds=2"
        )
        assert FaultPlan.parse(plan.describe()) == plan

    def test_empty_entries_ignored(self):
        assert FaultPlan.parse("crash:1,, ,") == FaultPlan(
            specs=(FaultSpec("crash"),)
        )


class TestDeterminism:
    def test_fraction_is_stable_and_seed_sensitive(self):
        a = deterministic_fraction("unit-3", seed=0)
        assert a == deterministic_fraction("unit-3", seed=0)
        assert 0.0 <= a < 1.0
        assert a != deterministic_fraction("unit-3", seed=1)

    def test_fires_identically_across_injector_instances(self):
        plan = FaultPlan.parse("seed=11,transient:0.5:inf")
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        targets = [f"t{i}" for i in range(64)]
        decisions_a = [first._fires("transient", t) for t in targets]
        decisions_b = [second._fires("transient", t) for t in targets]
        assert decisions_a == decisions_b
        # rate 0.5 over 64 targets: some must fire, some must not
        assert any(decisions_a) and not all(decisions_a)

    def test_times_budget_gates_attempts(self):
        injector = FaultInjector(FaultPlan(specs=(FaultSpec("transient"),)))
        assert injector._fires("transient", "t", attempt=0)
        assert not injector._fires("transient", "t", attempt=1)

    def test_fired_log_records_fires(self):
        injector = FaultInjector(FaultPlan(specs=(FaultSpec("permanent"),)))
        injector._fires("permanent", "unit-x")
        assert injector.fired == ["permanent@unit-x#0"]


class TestRegistry:
    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1")
        installed = install(FaultPlan(specs=(FaultSpec("hang"),)))
        try:
            assert current_injector() is installed
        finally:
            uninstall()
        env_injector = current_injector()
        assert env_injector is not None
        assert env_injector.plan.spec_for("crash") is not None

    def test_no_plan_means_no_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        uninstall()
        assert current_injector() is None

    def test_context_manager_scopes_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with injected_faults(FaultPlan(specs=(FaultSpec("corrupt"),))) as inj:
            assert current_injector() is inj
        assert current_injector() is None

    def test_env_parse_cached_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:1")
        uninstall()
        assert current_injector() is current_injector()
        monkeypatch.setenv("REPRO_FAULTS", "truncate:1")
        assert current_injector().plan.spec_for("truncate") is not None
