"""Pool-level fault injection: worker crashes, hangs, pool-creation failure.

Crash and hang are armed via ``REPRO_FAULTS`` (pool workers inherit the
environment; a programmatic plan stays in the parent process) and fire
only inside workers, so the engine's inline fallback is guaranteed
fault-free and every batch must still complete bit-identically.

Each test uses a distinct ``REPRO_FAULTS`` string: the env parse is
cached per raw value, and the cached injector carries state (the
pool-creation attempt counter).
"""

import pytest

from repro.engine import Engine, EngineConfig, WorkUnit
from repro.faults import FaultPlan, FaultSpec, injected_faults
from repro.hypergraph import make_benchmark
from repro.testing import EchoPartitioner

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

GRAPH = make_benchmark("t6", scale=0.05)


def _units(n):
    return [WorkUnit(GRAPH, EchoPartitioner(), seed=s) for s in range(n)]


def _cuts(results):
    return [r.result.cut for r in results]


class TestWorkerCrash:
    def test_broken_pool_mid_batch_degrades_and_matches(self, monkeypatch):
        """Satellite 3: every worker crashes -> BrokenProcessPool on both
        pool rounds -> the full batch completes inline, bit-identical."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:1")
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, backoff_base=0.001,
        ))
        results = engine.run(_units(6))
        assert _cuts(results) == [float(s) for s in range(6)]
        assert all(r.ok for r in results)
        # default retries=1 -> two pool rounds, both broken by the crash
        assert engine.stats.pool_failures == 2
        assert engine.stats.inline_fallbacks == 6
        assert engine.stats.pool_executed == 0
        assert engine.stats.executed == 6

    def test_partial_crash_rate_still_completes(self, monkeypatch):
        """rate<1: some workers crash, survivors' results are kept."""
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,crash:0.5")
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, backoff_base=0.001,
        ))
        results = engine.run(_units(6))
        assert _cuts(results) == [float(s) for s in range(6)]
        assert engine.stats.executed == 6


class TestWorkerHang:
    def test_hung_units_time_out_then_finish_inline(self, monkeypatch):
        """Deadlines are per submission: three units hung for 3 s against
        a 1 s budget all time out in one round, then complete inline."""
        monkeypatch.setenv("REPRO_FAULTS", "hang:1,hang_seconds=3")
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, timeout=1.0, retries=0,
            backoff_base=0.001,
        ))
        results = engine.run(_units(3))
        assert _cuts(results) == [0.0, 1.0, 2.0]
        assert engine.stats.timeouts == 3
        assert engine.stats.inline_fallbacks == 3
        assert engine.stats.executed == 3
        assert engine.stats.pool_executed == 0


class TestPoolCreationFailure:
    def test_first_creation_fails_second_round_succeeds(self):
        # 'pool' fires in the parent process, so a programmatic plan works.
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, backoff_base=0.001,
        ))
        with injected_faults(FaultPlan(specs=(FaultSpec("pool"),))) as inj:
            results = engine.run(_units(4))
        assert _cuts(results) == [0.0, 1.0, 2.0, 3.0]
        assert engine.stats.pool_failures == 1
        assert engine.stats.pool_executed == 4
        assert engine.stats.inline_fallbacks == 0
        assert "pool@pool#0" in inj.fired

    def test_persistent_creation_failure_falls_back_inline(self):
        engine = Engine(EngineConfig(
            workers=2, use_cache=False, backoff_base=0.001,
        ))
        plan = FaultPlan(specs=(FaultSpec("pool", times=None),))
        with injected_faults(plan):
            results = engine.run(_units(4))
        assert _cuts(results) == [0.0, 1.0, 2.0, 3.0]
        assert engine.stats.pool_failures == 2  # both rounds
        assert engine.stats.inline_fallbacks == 4
        assert engine.stats.pool_executed == 0
