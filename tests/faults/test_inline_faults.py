"""Injected worker faults on the in-process path: retry, policy, parity.

The chaos acceptance invariant: under every seeded fault plan the batch
completes with cuts bit-identical to a fault-free run (or, for permanent
failures under ``on_error='collect'``, with exactly the selected units
failed and everything else bit-identical).
"""

import pytest

from repro.baselines import FMPartitioner
from repro.engine import Engine, EngineConfig, WorkUnit, seed_stream
from repro.faults import (
    FaultPlan,
    FaultSpec,
    PermanentFaultError,
    TransientFaultError,
    injected_faults,
    is_transient,
)
from repro.hypergraph import make_benchmark

pytestmark = pytest.mark.chaos

GRAPH = make_benchmark("t6", scale=0.06)


def _units(n=5, base_seed=0):
    return [WorkUnit(GRAPH, FMPartitioner("bucket"), seed=s)
            for s in seed_stream(base_seed, n)]


def _engine(**kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("backoff_base", 0.001)
    return Engine(EngineConfig(**kwargs))


@pytest.fixture(scope="module")
def reference_cuts():
    results = Engine(EngineConfig(workers=0, use_cache=False)).run(_units())
    return [r.result.cut for r in results]


class TestTransientFaults:
    def test_every_unit_retried_results_bit_identical(self, reference_cuts):
        engine = _engine()
        with injected_faults(FaultPlan(specs=(FaultSpec("transient"),))):
            results = engine.run(_units())
        assert [r.result.cut for r in results] == reference_cuts
        assert all(r.ok for r in results)
        assert engine.stats.retried == 5
        assert engine.stats.unit_errors == 0

    def test_transient_beyond_budget_becomes_error(self):
        # times=inf: the fault fires on every attempt, exhausting retries.
        engine = _engine(on_error="collect", unit_retries=1)
        plan = FaultPlan(specs=(FaultSpec("transient", times=None),))
        with injected_faults(plan):
            results = engine.run(_units(2))
        assert all(not r.ok for r in results)
        assert all(r.error.transient for r in results)
        assert all(r.error.attempts == 2 for r in results)  # 1 + 1 retry
        assert engine.stats.unit_errors == 2

    def test_transient_raises_when_policy_is_raise(self):
        engine = _engine(unit_retries=0)
        with injected_faults(FaultPlan(specs=(FaultSpec("transient"),))):
            with pytest.raises(TransientFaultError):
                engine.run(_units(2))

    def test_backoff_respects_configured_base(self, reference_cuts):
        import time

        slow = _engine(backoff_base=0.05)
        with injected_faults(FaultPlan(specs=(FaultSpec("transient"),))):
            start = time.perf_counter()
            slow.run(_units())
            elapsed = time.perf_counter() - start
        # 5 retries, each sleeping >= 0.05 * 0.5
        assert elapsed >= 5 * 0.05 * 0.5


class TestPermanentFaults:
    def test_collect_policy_keeps_batch_alive(self, reference_cuts):
        engine = _engine(on_error="collect")
        plan = FaultPlan(specs=(FaultSpec("permanent", rate=0.5),), seed=9)
        with injected_faults(plan):
            results = engine.run(_units())
        assert len(results) == 5
        failed = [r for r in results if not r.ok]
        assert 0 < len(failed) < 5  # rate 0.5 over 5 units, seeded
        for r in results:
            if r.ok:
                assert r.result.cut == reference_cuts[r.index]
            else:
                assert r.result is None
                assert r.error.exc_type == "PermanentFaultError"
                assert not r.error.transient
                assert "injected permanent fault" in r.error.message
                assert r.error.traceback  # full traceback captured
        assert engine.stats.unit_errors == len(failed)
        assert engine.stats.retried == 0  # permanent: never retried

    def test_same_seed_fails_same_units_every_run(self):
        plan = FaultPlan(specs=(FaultSpec("permanent", rate=0.5),), seed=9)
        outcomes = []
        for _ in range(2):
            engine = _engine(on_error="collect")
            with injected_faults(plan):
                results = engine.run(_units())
            outcomes.append([r.ok for r in results])
        assert outcomes[0] == outcomes[1]

    def test_raise_policy_aborts(self):
        engine = _engine()
        with injected_faults(FaultPlan(specs=(FaultSpec("permanent"),))):
            with pytest.raises(PermanentFaultError):
                engine.run(_units(2))


class TestClassification:
    def test_injected_faults_classify(self):
        assert is_transient(TransientFaultError("x"))
        assert not is_transient(PermanentFaultError("x"))

    def test_real_world_exceptions_classify(self):
        assert is_transient(TimeoutError())
        assert is_transient(ConnectionResetError())
        assert is_transient(OSError("disk hiccup"))
        assert not is_transient(TypeError("bug"))
        assert not is_transient(ValueError("bug"))
