"""Phase timing in result stats, audit_seconds, and harness aggregation."""

import pytest

from repro.baselines import FMPartitioner, LAPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import make_benchmark
from repro.multirun import run_many
from repro.telemetry import PHASE_STAT_KEYS, collect_phase_seconds


@pytest.fixture(scope="module")
def graph():
    return make_benchmark("t5", scale=0.05)


class TestPhaseStats:
    def test_prop_reports_all_phases(self, graph):
        result = PropPartitioner().partition(graph, seed=0)
        for key in ("bootstrap_seconds", "refine_seconds",
                    "gain_init_seconds", "move_loop_seconds",
                    "rollback_seconds"):
            assert key in result.stats
        assert result.stats["move_loop_seconds"] > 0.0

    @pytest.mark.parametrize(
        "make", [lambda: FMPartitioner("bucket"), lambda: LAPartitioner(2)]
    )
    def test_baselines_report_phases(self, make, graph):
        result = make().partition(graph, seed=0)
        for key in ("gain_init_seconds", "move_loop_seconds",
                    "rollback_seconds"):
            assert key in result.stats

    def test_collect_phase_seconds_filters(self):
        stats = {
            "move_loop_seconds": 1.5,
            "tentative_moves": 100.0,
            "audit_seconds": 0.25,
            "rollback_seconds": "garbage",
        }
        collected = collect_phase_seconds(stats)
        assert collected == {"move_loop_seconds": 1.5, "audit_seconds": 0.25}
        assert set(collected) <= set(PHASE_STAT_KEYS)


class TestAuditSeconds:
    @pytest.mark.parametrize(
        "make",
        [PropPartitioner, lambda: FMPartitioner("bucket"),
         lambda: LAPartitioner(2)],
    )
    def test_audit_seconds_reported_and_excluded(self, make, graph):
        from repro.audit import AuditConfig

        audited = make().partition(graph, seed=0, audit=AuditConfig(every=1))
        bare = make().partition(graph, seed=0)
        assert audited.cut == bare.cut
        assert audited.stats["audit_seconds"] > 0.0
        # runtime_seconds excludes audit overhead, so an audited run's
        # reported compute should be of the same magnitude as the bare
        # run's, not inflated by the (much slower) brute-force oracles.
        assert (
            audited.runtime_seconds
            < bare.runtime_seconds + audited.stats["audit_seconds"]
        )

    def test_unaudited_run_has_no_audit_seconds(self, graph):
        result = PropPartitioner().partition(graph, seed=0)
        assert "audit_seconds" not in result.stats


class TestRunManyAggregation:
    def test_phase_seconds_aggregated(self, graph):
        outcome = run_many(PropPartitioner(), graph, runs=2)
        assert outcome.phase_seconds["move_loop_seconds"] > 0.0
        assert set(outcome.phase_seconds) <= set(PHASE_STAT_KEYS)

    def test_recorder_threads_through_sequential_path(self, graph):
        from repro.telemetry import MemoryRecorder

        rec = MemoryRecorder()
        outcome = run_many(PropPartitioner(), graph, runs=2, recorder=rec)
        assert len(rec.runs) == 2
        assert rec.results[1]["cut"] in outcome.cuts

    def test_recorder_dropped_with_warning_on_engine_path(self, graph):
        from repro.engine import Engine, EngineConfig
        from repro.telemetry import MemoryRecorder

        rec = MemoryRecorder()
        engine = Engine(EngineConfig(workers=0, use_cache=False))
        with pytest.warns(UserWarning, match="not picklable"):
            outcome = run_many(
                PropPartitioner(), graph, runs=2, engine=engine, recorder=rec
            )
        assert not rec.runs
        # phase timings still flow through the result stats
        assert outcome.phase_seconds["move_loop_seconds"] > 0.0

    def test_unsupported_partitioner_warns(self, graph):
        from repro.baselines import Eig1Partitioner
        from repro.telemetry import MemoryRecorder

        with pytest.warns(UserWarning, match="telemetry"):
            run_many(
                Eig1Partitioner(), graph, runs=1,
                recorder=MemoryRecorder(),
            )


class TestSweepAggregation:
    def test_sweep_points_carry_phase_seconds(self, graph):
        from repro.experiments.sweeps import sweep_prop_config

        result = sweep_prop_config(
            graph, {"refinement_iterations": [0, 1]}, runs=1, engine=None,
        )
        for point in result.points:
            assert point.phase_dict()["move_loop_seconds"] > 0.0


class TestProgressEventTiming:
    def test_progress_event_defaults(self):
        from repro.engine.engine import ProgressEvent

        event = ProgressEvent(done=1, total=2, latest=None)
        assert event.elapsed_seconds == 0.0
        assert event.throughput == 0.0
        assert event.eta_seconds == 0.0

    def test_engine_fills_timing_fields(self, graph):
        from repro.engine import Engine, EngineConfig, WorkUnit

        events = []
        engine = Engine(EngineConfig(workers=0, use_cache=False))
        units = [
            WorkUnit(graph=graph, partitioner=PropPartitioner(), seed=s)
            for s in (0, 1)
        ]
        engine.run(units, progress=events.append)
        assert [e.done for e in events] == [1, 2]
        assert all(e.elapsed_seconds > 0.0 for e in events)
        assert all(e.throughput > 0.0 for e in events)
        assert events[-1].eta_seconds == 0.0  # nothing left
        assert events[0].eta_seconds > 0.0
