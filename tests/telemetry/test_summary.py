"""Tests for trace/journal summarization and the trace CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.core import PropPartitioner
from repro.hypergraph import make_benchmark
from repro.telemetry import (
    TraceRecorder,
    summarize_path,
    summarize_trace,
)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "prop.jsonl"
    graph = make_benchmark("t5", scale=0.05)
    with TraceRecorder(path) as rec:
        for seed in (0, 1):
            PropPartitioner().partition(graph, seed=seed, recorder=rec)
    return path


class TestTraceSummary:
    def test_counts_runs_and_cuts(self, trace_path):
        summary = summarize_trace(trace_path)
        assert summary.runs == 2
        trace = summary.algorithms["PROP"]
        assert trace.runs == 2
        assert len(trace.cuts) == 2
        assert trace.best_cut == min(trace.cuts)

    def test_phase_seconds_present(self, trace_path):
        trace = summarize_trace(trace_path).algorithms["PROP"]
        assert trace.phase_seconds.get("move_loop_seconds", 0.0) > 0.0

    def test_counters_aggregated(self, trace_path):
        trace = summarize_trace(trace_path).algorithms["PROP"]
        assert trace.counters.get("moves", 0) > 0

    def test_format_text_mentions_algorithm(self, trace_path):
        text = summarize_trace(trace_path).format_text()
        assert "PROP" in text
        assert "move_loop_seconds" in text

    def test_tolerates_garbled_lines(self, trace_path, tmp_path):
        noisy = tmp_path / "noisy.jsonl"
        noisy.write_text(
            trace_path.read_text() + "{torn line\n\n[1, 2]\n"
        )
        assert summarize_trace(noisy).runs == 2


class TestSniffing:
    def test_trace_dialect_detected(self, trace_path):
        summary = summarize_path(trace_path)
        assert "PROP" in summary.format_text()

    def test_unknown_dialect_raises(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text(json.dumps({"neither": "dialect"}) + "\n")
        with pytest.raises(ValueError):
            summarize_path(bogus)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises((OSError, ValueError)):
            summarize_path(tmp_path / "missing.jsonl")

    def test_journal_dialect_detected(self, tmp_path):
        from repro.engine import Engine, EngineConfig, WorkUnit

        graph = make_benchmark("t5", scale=0.04)
        engine = Engine(
            EngineConfig(workers=0, cache_dir=str(tmp_path), use_cache=False)
        )
        units = [
            WorkUnit(graph=graph, partitioner=PropPartitioner(), seed=s)
            for s in (0, 1)
        ]
        engine.run(units, run_id="tele-test")
        from repro.engine import journal_path

        path = journal_path(engine.journal_root(), "tele-test")
        summary = summarize_path(path)
        text = summary.format_text()
        assert "tele-test" in text
        assert summary.units_recorded == 2


class TestCli:
    def test_trace_summarize_exit_zero(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "PROP" in out

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1

    def test_run_with_trace_flag(self, tmp_path, capsys):
        out_path = tmp_path / "cli.jsonl"
        code = main([
            "--generate", "t5", "--scale", "0.04", "-a", "prop",
            "--runs", "2", "--trace", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        assert summarize_path(out_path).runs == 2
