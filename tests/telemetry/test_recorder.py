"""Unit tests for the telemetry recorder implementations."""

import json

import pytest

from repro.telemetry import (
    MemoryRecorder,
    NullRecorder,
    PassCounters,
    Recorder,
    TraceRecorder,
    resolve_recorder,
)


class TestResolve:
    def test_none_resolves_to_none(self):
        assert resolve_recorder(None) is None

    def test_disabled_resolves_to_none(self):
        assert resolve_recorder(NullRecorder()) is None

    def test_enabled_passes_through(self):
        rec = MemoryRecorder()
        assert resolve_recorder(rec) is rec


class TestBaseRecorder:
    def test_every_hook_is_a_noop(self):
        rec = Recorder()
        rec.run_start("PROP", 0, 10, 12)
        rec.pass_start(0)
        rec.span(0, "move_loop", 0.5)
        rec.move(0, 0, 3, 1, 2.0, 1.0)
        rec.counters(0, {"moves": 1})
        rec.pass_end(0, 5.0, 10, 4, 2.0, 0.5)
        rec.run_end("PROP", 5.0, 1, 0.5, {})
        rec.close()
        assert rec.enabled

    def test_null_recorder_is_disabled(self):
        assert not NullRecorder().enabled


class TestPassCounters:
    def test_as_dict_drops_zero_counters(self):
        counters = PassCounters()
        counters.moves = 3
        counters.topk_updates = 7
        assert counters.as_dict() == {"moves": 3, "topk_updates": 7}

    def test_fresh_counters_are_empty(self):
        assert PassCounters().as_dict() == {}


class TestMemoryRecorder:
    def _record_one_run(self, rec):
        rec.run_start("PROP", 1, 4, 5)
        rec.pass_start(0)
        rec.move(0, 0, 2, 1, 1.5, 1.0)
        rec.move(0, 1, 3, 0, 0.5, -1.0)
        rec.span(0, "move_loop", 0.25)
        rec.counters(0, {"moves": 2})
        rec.pass_end(0, 7.0, 2, 1, 1.0, 0.3)
        rec.run_end("PROP", 7.0, 1, 0.3, {"tentative_moves": 2.0})

    def test_accumulates_events(self):
        rec = MemoryRecorder()
        self._record_one_run(rec)
        assert len(rec.runs) == 1
        assert [m.node for m in rec.moves] == [2, 3]
        assert rec.spans[0].name == "move_loop"
        assert rec.counter_totals == {"moves": 2}
        assert rec.pass_cuts() == [7.0]
        assert rec.results[0]["cut"] == 7.0

    def test_counters_sum_across_passes(self):
        rec = MemoryRecorder()
        rec.counters(0, {"moves": 2, "topk_updates": 1})
        rec.counters(1, {"moves": 3})
        assert rec.counter_totals == {"moves": 5, "topk_updates": 1}


class TestTraceRecorder:
    def test_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as rec:
            rec.run_start("FM-bucket", 0, 4, 5)
            rec.move(0, 0, 1, 0, 2.0, 2.0)
            rec.run_end("FM-bucket", 3.0, 1, 0.1, {})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == ["run_start", "move", "run_end"]
        assert all(l["run"] == 0 for l in lines)

    def test_run_ordinal_increments(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as rec:
            rec.run_start("PROP", 0, 4, 5)
            rec.run_end("PROP", 3.0, 1, 0.1, {})
            rec.run_start("PROP", 1, 4, 5)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["run"] for l in lines] == [0, 0, 1]

    def test_tuple_selection_key_serialized_as_list(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as rec:
            rec.run_start("LA-2", 0, 4, 5)
            rec.move(0, 0, 1, 0, (2.0, -1.0), 2.0)
        move = json.loads(path.read_text().splitlines()[1])
        assert move["selection"] == [2.0, -1.0]

    def test_open_file_is_not_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            rec = TraceRecorder(fh)
            rec.run_start("PROP", 0, 4, 5)
            rec.close()
            assert not fh.closed

    def test_lazy_open_never_touches_disk_when_unused(self, tmp_path):
        path = tmp_path / "never.jsonl"
        rec = TraceRecorder(path)
        rec.close()
        assert not path.exists()


class TestCustomRecorder:
    def test_subclass_overriding_one_hook_works(self):
        hits = []

        class OnlyMoves(Recorder):
            """Test double capturing just the per-move stream."""

            def move(self, pass_index, move_index, node, from_side,
                     selection_key, immediate_gain):
                """Capture the node id of each move."""
                hits.append(node)

        from repro.core import PropPartitioner
        from repro.hypergraph import make_benchmark

        graph = make_benchmark("t5", scale=0.04)
        PropPartitioner().partition(graph, seed=0, recorder=OnlyMoves())
        assert hits  # the hook fired at least once per tentative move


@pytest.mark.parametrize("cls", [NullRecorder, MemoryRecorder])
def test_recorders_expose_enabled(cls):
    """Every concrete recorder advertises its enabled state."""
    assert isinstance(cls().enabled, bool)


class TestCallbackRecorder:
    """The push-stream recorder feeding the service's SSE bridge."""

    def _drive(self, recorder):
        recorder.run_start("fm", 7, 20, 30)
        recorder.pass_start(0)
        recorder.move(0, 0, 3, 0, (1.0, 2), -1.0)
        recorder.counters(0, {"gain_updates": 5})
        recorder.pass_end(0, 4.0, 10, 6, 2.0, 0.01)
        recorder.run_end("fm", 4.0, 1, 0.02, {"k": (1, 2)})

    def test_forwards_every_event_in_order(self):
        from repro.telemetry import CallbackRecorder

        seen = []
        self._drive(CallbackRecorder(lambda e, p: seen.append((e, p))))
        assert [e for e, _ in seen] == [
            "run_start", "pass_start", "move", "counters",
            "pass_end", "run_end",
        ]
        assert seen[0][1] == {
            "run": 0, "algorithm": "fm", "seed": 7, "nodes": 20, "nets": 30,
        }
        assert seen[-1][1]["cut"] == 4.0

    def test_event_allowlist_filters(self):
        from repro.telemetry import CallbackRecorder

        seen = []
        recorder = CallbackRecorder(
            lambda e, p: seen.append(e),
            events=("run_start", "run_end"),
        )
        self._drive(recorder)
        assert seen == ["run_start", "run_end"]

    def test_payloads_are_json_ready(self):
        from repro.telemetry import CallbackRecorder

        payloads = []
        self._drive(CallbackRecorder(lambda e, p: payloads.append(p)))
        for payload in payloads:
            json.dumps(payload)  # must not raise

    def test_run_ordinal_advances_per_run_start(self):
        from repro.telemetry import CallbackRecorder

        runs = []
        recorder = CallbackRecorder(
            lambda e, p: runs.append(p["run"]), events=("run_start",)
        )
        recorder.run_start("fm", 1, 2, 3)
        recorder.run_start("fm", 2, 2, 3)
        assert runs == [0, 1]

    def test_is_enabled(self):
        from repro.telemetry import CallbackRecorder, resolve_recorder

        recorder = CallbackRecorder(lambda e, p: None)
        assert resolve_recorder(recorder) is recorder
