"""Behavior-neutrality: recording must never change moves or cuts."""

import pytest

from repro.baselines import FMPartitioner, LAPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import make_benchmark
from repro.telemetry import MemoryRecorder, NullRecorder, TraceRecorder

PARTITIONERS = [
    pytest.param(PropPartitioner, id="prop"),
    pytest.param(lambda: FMPartitioner("bucket"), id="fm-bucket"),
    pytest.param(lambda: FMPartitioner("tree"), id="fm-tree"),
    pytest.param(lambda: LAPartitioner(2), id="la-2"),
]


@pytest.fixture(scope="module")
def graph():
    return make_benchmark("t5", scale=0.05)


@pytest.mark.parametrize("make", PARTITIONERS)
class TestBitIdentical:
    def test_memory_recorder_neutral(self, make, graph):
        bare = make().partition(graph, seed=7)
        rec = MemoryRecorder()
        recorded = make().partition(graph, seed=7, recorder=rec)
        assert recorded.cut == bare.cut
        assert recorded.sides == bare.sides
        assert recorded.pass_cuts == bare.pass_cuts

    def test_trace_recorder_neutral(self, make, graph, tmp_path):
        bare = make().partition(graph, seed=7)
        with TraceRecorder(tmp_path / "t.jsonl") as rec:
            recorded = make().partition(graph, seed=7, recorder=rec)
        assert recorded.cut == bare.cut
        assert recorded.sides == bare.sides

    def test_null_recorder_neutral(self, make, graph):
        bare = make().partition(graph, seed=7)
        nulled = make().partition(graph, seed=7, recorder=NullRecorder())
        assert nulled.cut == bare.cut
        assert nulled.sides == bare.sides

    def test_trace_trajectory_matches_pass_cuts(self, make, graph):
        rec = MemoryRecorder()
        result = make().partition(graph, seed=7, recorder=rec)
        assert rec.pass_cuts() == result.pass_cuts

    def test_move_count_matches_stats(self, make, graph):
        rec = MemoryRecorder()
        result = make().partition(graph, seed=7, recorder=rec)
        assert len(rec.moves) == int(result.stats["tentative_moves"])


class TestEventStream:
    def test_pass_events_cover_every_pass(self, graph):
        rec = MemoryRecorder()
        result = PropPartitioner().partition(graph, seed=3, recorder=rec)
        assert [p.pass_index for p in rec.passes] == list(range(result.passes))

    def test_run_event_carries_final_cut(self, graph):
        rec = MemoryRecorder()
        result = PropPartitioner().partition(graph, seed=3, recorder=rec)
        record = rec.results[0]
        assert record["algorithm"] == "PROP"
        assert record["cut"] == result.cut
        assert record["passes"] == result.passes
        assert (
            record["stats"]["tentative_moves"]
            == result.stats["tentative_moves"]
        )

    def test_selection_key_is_vector_for_la(self, graph):
        rec = MemoryRecorder()
        LAPartitioner(2).partition(graph, seed=3, recorder=rec)
        assert all(
            isinstance(m.selection_key, tuple) and len(m.selection_key) == 2
            for m in rec.moves
        )

    def test_counters_nonempty_for_all_engines(self, graph):
        for make in (PropPartitioner, lambda: FMPartitioner("bucket"),
                     lambda: LAPartitioner(2)):
            rec = MemoryRecorder()
            make().partition(graph, seed=3, recorder=rec)
            assert rec.counter_totals.get("moves", 0) > 0
