"""Golden regression tests: exact cuts for pinned (circuit, algo, seed).

Every algorithm in this repo is deterministic given its seed, so these
values are stable across runs and machines.  If an intentional algorithm
change shifts them, update the constants in the same commit and say why —
an *unintentional* shift is a behavioral regression this file exists to
catch.  (Quality-band tests elsewhere would miss a subtle change that
keeps results "good but different".)
"""

import os

import pytest

from repro.baselines import FMPartitioner, LAPartitioner
from repro.cli import _make_partitioner
from repro.core import PropPartitioner
from repro.hypergraph import hierarchical_circuit, make_benchmark
from repro.partition import cut_cost, random_balanced_sides
from repro.testing import circuit_fingerprint
from repro.testing.golden import build_circuit, load_corpus

GOLDEN_GRAPH = dict(num_nodes=150, num_nets=160, num_pins=580, seed=13)

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "golden_corpus.json")
CORPUS = load_corpus(CORPUS_PATH)

#: Circuits too large for tier-1 replay; exercised only when the nlevel
#: CI lane (or a developer) sets REPRO_NLEVEL_CORPUS=1.
GATED_CIRCUITS = {
    name for name, spec in CORPUS["circuits"].items() if spec.get("gated")
}
RUN_GATED = os.environ.get("REPRO_NLEVEL_CORPUS") == "1"


@pytest.fixture(scope="module")
def graph():
    return hierarchical_circuit(
        GOLDEN_GRAPH["num_nodes"],
        GOLDEN_GRAPH["num_nets"],
        GOLDEN_GRAPH["num_pins"],
        seed=GOLDEN_GRAPH["seed"],
    )


class TestGoldenGraph:
    def test_generator_fingerprint(self, graph):
        """The generator itself must be stable (seeded RNG stream)."""
        assert graph.num_pins == 580
        assert graph.net(0) == (71, 38, 54)
        assert graph.net(100) == (49, 10, 36)

    def test_initial_partition_fingerprint(self, graph):
        sides = random_balanced_sides(graph, seed=42)
        assert sum(sides) == 75
        assert sides[:10] == [1, 0, 1, 1, 1, 0, 0, 0, 0, 1]
        assert cut_cost(graph, sides) == 123.0


def _golden_cut(partitioner, graph, seed=42):
    result = partitioner.partition(graph, seed=seed)
    result.verify(graph)
    return result.cut


class TestGoldenCuts:
    """Exact, seeded end-to-end results.

    The expected values were produced by this implementation and pinned;
    they are regression anchors, not paper numbers.
    """

    def test_fm_bucket(self, graph):
        assert _golden_cut(FMPartitioner("bucket"), graph) == 34.0

    def test_fm_tree(self, graph):
        assert _golden_cut(FMPartitioner("tree"), graph) == 31.0

    def test_la2(self, graph):
        assert _golden_cut(LAPartitioner(2), graph) == 31.0

    def test_prop(self, graph):
        assert _golden_cut(PropPartitioner(), graph) == 31.0

    def test_prop_benchmark_circuit(self):
        circuit = make_benchmark("t6", scale=0.1)
        assert _golden_cut(PropPartitioner(), circuit) == 56.0


# ---------------------------------------------------------------------------
# Corpus-driven goldens: every algorithm x every corpus circuit.
# Regenerate after an intentional algorithm change with
#   PYTHONPATH=src python -m repro.testing.golden tests/golden_corpus.json
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_circuits():
    """Each corpus circuit built once, fingerprint-checked on the way in."""
    built = {}
    for name, spec in CORPUS["circuits"].items():
        if name in GATED_CIRCUITS and not RUN_GATED:
            continue
        graph = build_circuit(spec)
        assert circuit_fingerprint(graph) == spec["fingerprint"], (
            f"circuit generator for {name!r} drifted: the corpus "
            f"fingerprint no longer matches (regenerate deliberately)"
        )
        built[name] = graph
    return built


class TestGoldenCorpus:
    """Replays ``tests/golden_corpus.json`` — one entry per algorithm."""

    def test_corpus_covers_every_cli_algorithm(self):
        from repro.testing.golden import ALGORITHMS

        pinned = {e["algorithm"] for e in CORPUS["entries"]}
        assert pinned == set(ALGORITHMS)

    @pytest.mark.parametrize(
        "entry",
        CORPUS["entries"],
        ids=[f"{e['circuit']}-{e['algorithm']}" for e in CORPUS["entries"]],
    )
    def test_corpus_entry(self, corpus_circuits, entry):
        if entry["circuit"] in GATED_CIRCUITS and not RUN_GATED:
            pytest.skip("gated circuit (set REPRO_NLEVEL_CORPUS=1)")
        graph = corpus_circuits[entry["circuit"]]
        partitioner = _make_partitioner(entry["algorithm"])
        result = partitioner.partition(graph, seed=entry["seed"])
        result.verify(graph)
        assert result.cut == entry["cut"], (
            f"{entry['algorithm']} on {entry['circuit']} (seed "
            f"{entry['seed']}): cut {result.cut:g} != pinned {entry['cut']:g}"
        )
