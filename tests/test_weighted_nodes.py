"""Weighted-cell scenarios across the stack.

Paper Sec. 1: "We assume that all nodes have unit size; the balance
criterion is easily changed to reflect size constraints on the subsets
when this is not the case."  These tests exercise that claim end-to-end:
every engine must respect *weight* balance, not cardinality balance, when
cells have sizes.
"""

import random

import pytest

from repro.baselines import FMPartitioner, LAPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import (
    BalanceConstraint,
    cut_cost,
    random_weight_balanced_sides,
    side_weights,
)


@pytest.fixture(scope="module")
def weighted_circuit():
    """Clustered circuit with cell sizes 1-6 (macro-ish distribution)."""
    base = hierarchical_circuit(160, 172, 620, seed=11)
    rng = random.Random(4)
    weights = [
        6.0 if rng.random() < 0.05 else float(rng.randint(1, 3))
        for _ in range(base.num_nodes)
    ]
    return base.with_node_weights(weights)


ENGINES = [
    ("PROP", PropPartitioner),
    ("FM-tree", lambda: FMPartitioner("tree")),
    ("FM-bucket", lambda: FMPartitioner("bucket")),
    ("LA-2", lambda: LAPartitioner(2)),
]


class TestWeightBalance:
    @pytest.mark.parametrize("name,make", ENGINES, ids=[n for n, _ in ENGINES])
    def test_weight_balance_respected(self, weighted_circuit, name, make):
        balance = BalanceConstraint.from_fractions(
            weighted_circuit, 0.45, 0.55
        )
        initial = random_weight_balanced_sides(weighted_circuit, seed=0)
        result = make().partition(
            weighted_circuit, balance=balance, initial_sides=initial
        )
        weights = side_weights(weighted_circuit, result.sides)
        total = sum(weights)
        assert max(weights) / total <= 0.55 + 1e-9, (name, weights)

    @pytest.mark.parametrize("name,make", ENGINES, ids=[n for n, _ in ENGINES])
    def test_cut_improves(self, weighted_circuit, name, make):
        balance = BalanceConstraint.from_fractions(
            weighted_circuit, 0.45, 0.55
        )
        initial = random_weight_balanced_sides(weighted_circuit, seed=1)
        before = cut_cost(weighted_circuit, initial)
        result = make().partition(
            weighted_circuit, balance=balance, initial_sides=initial
        )
        assert result.cut <= before

    def test_heavy_cell_can_cross_with_slack(self):
        """fifty_fifty's slack equals the max cell weight, so even the
        heaviest cell is movable — no artificial lock-in."""
        hg = Hypergraph(
            [[0, 1], [1, 2], [2, 3], [3, 0]],
            node_weights=[5.0, 1.0, 1.0, 1.0],
        )
        balance = BalanceConstraint.fifty_fifty(hg)
        assert balance.move_allowed((5.0, 3.0), 0, 5.0)

    def test_weighted_kway(self, weighted_circuit):
        from repro.kway import recursive_bisection

        result = recursive_bisection(weighted_circuit, 4, seed=0)
        mean = weighted_circuit.total_node_weight / 4
        for w in result.part_weights:
            assert mean * 0.5 <= w <= mean * 1.5

    def test_weighted_fpga_capacity(self, weighted_circuit):
        from repro.fpga import FpgaDevice, partition_onto_fpgas

        capacity = weighted_circuit.total_node_weight / 2 * 1.25
        devices = [FpgaDevice(capacity=capacity, io_limit=10_000)] * 2
        plan = partition_onto_fpgas(weighted_circuit, devices, seed=0)
        assert sum(plan.utilization) == pytest.approx(
            weighted_circuit.total_node_weight
        )
