"""n-level coarsening engine: round-trips, determinism, journal resume.

Three contracts from docs/multilevel.md are fenced here:

1. **Exact round-trip** — undoing the memento stack restores the
   original hypergraph exactly: pin sets, incidence sets, bit-exact
   float node weights.
2. **Determinism** — coarsening is a pure function of (graph, knobs):
   identical contraction sequences across repeated runs, and a
   journal-resumed run reproduces the uninterrupted sequence even when
   the journal lost its tail (kill-and-resume).
3. **Exact incremental partition state** — :class:`UncoarsenState`'s
   cut/side-weight bookkeeping never drifts from the ground truth
   recomputed from scratch, with or without region refinement.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.multilevel import (
    CoarseningJournal,
    DynamicHypergraph,
    MultilevelPartitioner,
    NLevelPartitioner,
    UncoarsenState,
    coarsening_fingerprint,
    nlevel_coarsen,
)
from repro.multilevel.uncoarsen import _slackened
from repro.partition import (
    BalanceConstraint,
    cut_cost,
    random_balanced_sides,
)
from repro.testing import strategies as st_repro


@pytest.fixture
def circuit():
    return hierarchical_circuit(300, 320, 1150, seed=4)


def _pairs(mementos):
    return [(m.u, m.v) for m in mementos]


# ---------------------------------------------------------------------------
# DynamicHypergraph round-trip
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def _assert_restored(self, graph, dyn):
        assert dyn.alive == [True] * graph.num_nodes
        assert dyn.alive_count == graph.num_nodes
        for w, orig in zip(dyn.node_weight, graph.node_weights):
            assert w == orig  # bit-exact, not approx
        for net in range(graph.num_nets):
            assert set(dyn.pins[net]) == set(graph.net(net))
        for u in range(graph.num_nodes):
            assert set(dyn.nets_of[u]) == set(graph.node_nets(u))

    def test_single_contract_uncontract(self):
        graph = Hypergraph([[0, 1], [1, 2], [0, 2, 3]])
        dyn = DynamicHypergraph(graph)
        m = dyn.contract(0, 1)
        assert not dyn.alive[1]
        dyn.uncontract(m)
        self._assert_restored(graph, dyn)

    def test_full_stack_lifo_undo(self, circuit):
        dyn, mementos, _ = nlevel_coarsen(circuit, target_nodes=16)
        assert dyn.alive_count <= max(16, circuit.num_nodes)
        for m in reversed(mementos):
            dyn.uncontract(m)
        self._assert_restored(circuit, dyn)

    def test_pruned_single_pin_nets_revive(self):
        # Contracting {0,1} prunes the 2-pin net to one pin; the net is
        # detached from node 2's incidence and must reattach on undo.
        graph = Hypergraph([[0, 2], [1, 2], [0, 1, 2]])
        dyn = DynamicHypergraph(graph)
        m = dyn.contract(0, 1)
        assert 1 not in dyn.pins[1]
        dyn.uncontract(m)
        self._assert_restored(graph, dyn)

    def test_weighted_round_trip_is_bit_exact(self):
        graph = Hypergraph(
            [[0, 1], [1, 2], [2, 3]],
            node_weights=[0.1, 0.2, 0.30000000000000004, 7.25],
        )
        dyn = DynamicHypergraph(graph)
        ms = [dyn.contract(0, 1), dyn.contract(2, 3), dyn.contract(0, 2)]
        for m in reversed(ms):
            dyn.uncontract(m)
        self._assert_restored(graph, dyn)


# ---------------------------------------------------------------------------
# Coarsening determinism
# ---------------------------------------------------------------------------
class TestCoarseningDeterminism:
    def test_repeat_runs_identical(self, circuit):
        a = nlevel_coarsen(circuit, target_nodes=24)
        b = nlevel_coarsen(circuit, target_nodes=24)
        assert _pairs(a[1]) == _pairs(b[1])
        ga, _ = a[0].snapshot()
        gb, _ = b[0].snapshot()
        assert ga.nets == gb.nets
        assert ga.node_weights == gb.node_weights

    def test_reaches_target(self, circuit):
        dyn, _, stats = nlevel_coarsen(circuit, target_nodes=24)
        assert dyn.alive_count <= 24
        assert stats["contractions"] == circuit.num_nodes - dyn.alive_count

    def test_weight_cap_respected(self, circuit):
        target = 24
        cap = 4.0 * circuit.total_node_weight / target
        dyn, _, _ = nlevel_coarsen(circuit, target_nodes=target)
        heaviest = max(
            w for u, w in enumerate(dyn.node_weight) if dyn.alive[u]
        )
        assert heaviest <= cap

    def test_oversized_nets_do_not_strand(self):
        # Every net oversized: ratings are empty, so only the rescue
        # scan (sampled-pin fallback) can make progress.
        pins = list(range(30))
        graph = Hypergraph([pins, pins[::-1], list(range(15, 30))])
        dyn, _, stats = nlevel_coarsen(
            graph, target_nodes=4, max_net_size=5
        )
        assert dyn.alive_count <= 4
        assert stats["rescued_nodes"] > 0

    def test_isolated_nodes_contract(self):
        graph = Hypergraph([[0, 1]], num_nodes=6)  # 2..5 have no nets
        dyn, _, _ = nlevel_coarsen(graph, target_nodes=2)
        assert dyn.alive_count == 2


# ---------------------------------------------------------------------------
# Journal: resume, chaos, fingerprint binding
# ---------------------------------------------------------------------------
class TestJournalResume:
    TARGET = 16

    def _reference(self, circuit):
        return _pairs(nlevel_coarsen(circuit, target_nodes=self.TARGET)[1])

    def test_journaled_run_matches_unjournaled(self, circuit, tmp_path):
        path = tmp_path / "coarsen.jsonl"
        dyn, mementos, stats = nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=8,
        )
        assert _pairs(mementos) == self._reference(circuit)
        assert stats["journal_replayed"] == 0
        assert path.exists()

    def test_resume_from_complete_journal_is_pure_replay(
        self, circuit, tmp_path
    ):
        path = tmp_path / "coarsen.jsonl"
        nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=8,
        )
        dyn, mementos, stats = nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=8,
        )
        ref = self._reference(circuit)
        assert _pairs(mementos) == ref
        assert stats["journal_replayed"] == len(ref)
        assert stats["contractions"] == 0.0  # replay did all the work

    def test_complete_replay_of_reached_target_skips_rating(self, tmp_path):
        # A chain reaches its target exactly, so a complete-journal
        # resume must do zero rating recomputation, not just zero fresh
        # contractions.
        graph = Hypergraph([[i, i + 1] for i in range(63)])
        path = tmp_path / "chain.jsonl"
        dyn, _, _ = nlevel_coarsen(graph, target_nodes=16, journal_path=path)
        assert dyn.alive_count == 16
        _, mementos, stats = nlevel_coarsen(
            graph, target_nodes=16, journal_path=path
        )
        assert stats["journal_replayed"] == len(mementos)
        assert stats["ratings_updated"] == 0.0

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.6, 0.95])
    def test_kill_and_resume_bit_identical(
        self, circuit, tmp_path, keep_fraction
    ):
        """Chaos: lose the journal tail (crash mid-write), resume, and
        demand the exact uninterrupted contraction sequence."""
        path = tmp_path / "coarsen.jsonl"
        nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=4,
        )
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * keep_fraction)])

        dyn, mementos, stats = nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=4,
        )
        ref = self._reference(circuit)
        assert _pairs(mementos) == ref
        assert 0 < stats["journal_replayed"] <= len(ref)
        # The resumed file must now replay the full sequence again.
        _, again, stats2 = nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=4,
        )
        assert _pairs(again) == ref
        assert stats2["journal_replayed"] == len(ref)

    def test_corrupt_record_stops_replay_safely(self, circuit, tmp_path):
        path = tmp_path / "coarsen.jsonl"
        nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=4,
        )
        lines = path.read_text().splitlines(keepends=True)
        # Flip a digit inside a mid-file record: its checksum fails, the
        # record is skipped, and replay validity-checks catch the gap.
        mid = len(lines) // 2
        lines[mid] = lines[mid].replace("pairs", "pairz", 1)
        path.write_text("".join(lines))
        _, mementos, _ = nlevel_coarsen(
            circuit, target_nodes=self.TARGET, journal_path=path
        )
        assert _pairs(mementos) == self._reference(circuit)

    def test_foreign_journal_ignored(self, circuit, tmp_path):
        other = hierarchical_circuit(200, 210, 760, seed=5)
        path = tmp_path / "coarsen.jsonl"
        nlevel_coarsen(other, target_nodes=self.TARGET, journal_path=path)
        _, mementos, stats = nlevel_coarsen(
            circuit, target_nodes=self.TARGET, journal_path=path
        )
        assert stats["journal_replayed"] == 0
        assert _pairs(mementos) == self._reference(circuit)

    def test_fingerprint_binds_graph_and_knobs(self, circuit):
        other = hierarchical_circuit(200, 210, 760, seed=5)
        base = coarsening_fingerprint(circuit, 16, "heavy-edge", 40, 8.0, 16)
        assert base == coarsening_fingerprint(
            circuit, 16, "heavy-edge", 40, 8.0, 16
        )
        variants = {
            coarsening_fingerprint(other, 16, "heavy-edge", 40, 8.0, 16),
            coarsening_fingerprint(circuit, 24, "heavy-edge", 40, 8.0, 16),
            coarsening_fingerprint(circuit, 16, "uniform", 40, 8.0, 16),
            coarsening_fingerprint(circuit, 16, "heavy-edge", 39, 8.0, 16),
            coarsening_fingerprint(circuit, 16, "heavy-edge", 40, 9.0, 16),
            coarsening_fingerprint(circuit, 16, "heavy-edge", 40, 8.0, 15),
        }
        assert base not in variants
        assert len(variants) == 6

    def test_journal_records_are_sealed(self, circuit, tmp_path):
        path = tmp_path / "coarsen.jsonl"
        nlevel_coarsen(
            circuit, target_nodes=self.TARGET,
            journal_path=path, journal_batch=8,
        )
        from repro.engine.records import checksum_ok

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert all(checksum_ok(rec) for rec in lines)

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            CoarseningJournal("x.jsonl", "fp", batch_pairs=0)


# ---------------------------------------------------------------------------
# NLevelPartitioner end to end
# ---------------------------------------------------------------------------
class TestNLevelPartitioner:
    def test_deterministic_per_seed(self, circuit):
        a = NLevelPartitioner().partition(circuit, seed=3)
        b = NLevelPartitioner().partition(circuit, seed=3)
        assert a.cut == b.cut
        assert a.sides == b.sides

    def test_result_verifies_and_is_balanced(self, circuit):
        balance = BalanceConstraint.fifty_fifty(circuit)
        res = NLevelPartitioner().partition(circuit, balance=balance, seed=1)
        assert res.cut == cut_cost(circuit, res.sides)
        w0 = sum(
            circuit.node_weight(u)
            for u in range(circuit.num_nodes) if res.sides[u] == 0
        )
        assert balance.is_satisfied([w0, circuit.total_node_weight - w0])

    def test_quality_comparable_to_vcycle(self, circuit):
        nl = NLevelPartitioner().partition(circuit, seed=3)
        ml = MultilevelPartitioner().partition(circuit, seed=3)
        assert nl.cut <= ml.cut * 1.5 + 4.0

    def test_initial_sides_bypass(self, circuit):
        balance = BalanceConstraint.fifty_fifty(circuit)
        init = random_balanced_sides(circuit, seed=0)
        res = NLevelPartitioner().partition(
            circuit, balance=balance, initial_sides=init, seed=0
        )
        assert res.algorithm == "NLEVEL"
        assert res.cut == cut_cost(circuit, res.sides)

    def test_empty_graph(self):
        res = NLevelPartitioner().partition(Hypergraph([], num_nodes=0))
        assert res.sides == [] and res.cut == 0.0

    def test_small_graph_no_hierarchy(self):
        graph = Hypergraph([[0, 1], [1, 2], [2, 3]])
        res = NLevelPartitioner(coarsest_nodes=80).partition(graph, seed=0)
        assert res.cut == cut_cost(graph, res.sides)

    def test_journal_resumed_partition_bit_identical(self, circuit, tmp_path):
        path = tmp_path / "nl.jsonl"
        fresh = NLevelPartitioner().partition(circuit, seed=5)
        first = NLevelPartitioner(coarsen_journal=path).partition(
            circuit, seed=5
        )
        resumed = NLevelPartitioner(coarsen_journal=path).partition(
            circuit, seed=5
        )
        assert first.sides == fresh.sides
        assert resumed.sides == fresh.sides
        assert resumed.stats["journal_replayed"] > 0

    def test_rebalance_repairs_coarse_slack(self):
        # Aggressive coarsening leaves super-nodes so heavy that the
        # coarsest partition is only feasible under slackened bounds;
        # the projected fine partition must still be repaired into the
        # *true* bounds before the final refine (regression: the engine
        # used to return the infeasible projection unchanged).
        graph = hierarchical_circuit(195, 192, 547, seed=0)
        balance = BalanceConstraint.from_fractions(graph, 0.495, 0.505)
        total = graph.total_node_weight
        for seed in (0, 1):
            res = NLevelPartitioner(
                coarsest_nodes=60, coarsest_runs=4
            ).partition(graph, balance=balance, seed=seed)
            w1 = sum(
                graph.node_weight(u)
                for u in range(graph.num_nodes) if res.sides[u] == 1
            )
            assert balance.is_satisfied([total - w1, w1])
            assert "rebalance_moves" in res.stats

    def test_telemetry_counters_surface(self, circuit):
        res = NLevelPartitioner().partition(circuit, seed=2)
        for key in (
            "coarsen_seconds", "local_refine_seconds", "contractions",
            "ratings_updated", "uncontract_batches", "region_moves",
        ):
            assert key in res.stats

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NLevelPartitioner(coarsest_nodes=1)
        with pytest.raises(ValueError):
            NLevelPartitioner(coarsest_runs=0)
        with pytest.raises(ValueError):
            NLevelPartitioner(rating="nope")


# ---------------------------------------------------------------------------
# Hypothesis property suite
# ---------------------------------------------------------------------------
@st.composite
def _graphs(draw):
    return draw(st_repro.hypergraphs(
        min_nodes=2, max_nodes=14, weighted=True, costed=True
    ))


@settings(max_examples=60, deadline=None)
@given(_graphs())
def test_property_round_trip_restores_graph(graph):
    dyn, mementos, _ = nlevel_coarsen(graph, target_nodes=2)
    for m in reversed(mementos):
        dyn.uncontract(m)
    assert dyn.alive_count == graph.num_nodes
    for w, orig in zip(dyn.node_weight, graph.node_weights):
        assert w == orig
    for net in range(graph.num_nets):
        assert set(dyn.pins[net]) == set(graph.net(net))
    for u in range(graph.num_nodes):
        assert set(dyn.nets_of[u]) == set(graph.node_nets(u))


@settings(max_examples=60, deadline=None)
@given(_graphs())
def test_property_alive_weight_conserved(graph):
    dyn, _, _ = nlevel_coarsen(graph, target_nodes=2)
    alive_total = sum(
        dyn.node_weight[u] for u in range(dyn.num_nodes) if dyn.alive[u]
    )
    assert alive_total == pytest.approx(graph.total_node_weight)
    coarse, reps = dyn.snapshot()
    assert coarse.num_nodes == dyn.alive_count
    assert sorted(reps) == [
        u for u in range(dyn.num_nodes) if dyn.alive[u]
    ]


@settings(max_examples=40, deadline=None)
@given(_graphs(), st.integers(0, 2**16))
def test_property_uncoarsen_state_stays_exact(graph, seed):
    """Incremental cut/side-weight bookkeeping == recompute from scratch,
    through full uncontraction with region refinement enabled."""
    dyn, mementos, _ = nlevel_coarsen(graph, target_nodes=2)
    coarse, reps = dyn.snapshot()
    balance = BalanceConstraint.fifty_fifty(graph)
    sides = [0] * graph.num_nodes
    if coarse.num_nodes:
        coarse_sides = random_balanced_sides(coarse, seed)
        for i, u in enumerate(reps):
            sides[u] = coarse_sides[i]
    state = UncoarsenState(dyn, sides, balance)
    state.uncoarsen(mementos, refine=True)
    assert state.cut == pytest.approx(cut_cost(graph, state.sides))
    w0 = sum(
        graph.node_weight(u)
        for u in range(graph.num_nodes) if state.sides[u] == 0
    )
    assert state.side_weights[0] == pytest.approx(w0)
    assert state.side_weights[1] == pytest.approx(
        graph.total_node_weight - w0
    )


@settings(max_examples=40, deadline=None)
@given(_graphs(), st.integers(0, 2**16))
def test_property_projection_without_refinement_preserves_cut(graph, seed):
    """refine=False uncoarsening is pure projection: the fine cut equals
    the coarse cut (uncontraction can never change a net's cut state)."""
    dyn, mementos, _ = nlevel_coarsen(graph, target_nodes=2)
    coarse, reps = dyn.snapshot()
    balance = BalanceConstraint.fifty_fifty(graph)
    sides = [0] * graph.num_nodes
    coarse_cut = 0.0
    if coarse.num_nodes:
        coarse_sides = random_balanced_sides(coarse, seed)
        for i, u in enumerate(reps):
            sides[u] = coarse_sides[i]
        coarse_cut = cut_cost(coarse, coarse_sides)
    state = UncoarsenState(dyn, sides, balance)
    assert state.cut == pytest.approx(coarse_cut)
    state.uncoarsen(mementos, refine=False)
    assert state.cut == pytest.approx(coarse_cut)
    assert state.cut == pytest.approx(cut_cost(graph, state.sides))


@settings(max_examples=60, deadline=None)
@given(_graphs())
def test_property_coarsening_is_deterministic(graph):
    a = nlevel_coarsen(graph, target_nodes=2)
    b = nlevel_coarsen(graph, target_nodes=2)
    assert _pairs(a[1]) == _pairs(b[1])


def test_slackened_clamps_to_physical_bounds():
    b = BalanceConstraint(lo=4.0, hi=6.0, total=10.0)
    s = _slackened(b, 5.0)
    assert s.lo == 0.0 and s.hi == 10.0 and s.total == 10.0
