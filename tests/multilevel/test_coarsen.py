"""Tests for heavy-edge matching and the coarsening hierarchy."""

import pytest

from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.multilevel import (
    coarsen_once,
    coarsen_to,
    connectivity_weights,
    heavy_edge_matching,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(300, 320, 1150, seed=4)


class TestConnectivityWeights:
    def test_two_pin_net(self):
        hg = Hypergraph([[0, 1]])
        w = connectivity_weights(hg)
        assert w[0] == {1: 1.0}
        assert w[1] == {0: 1.0}

    def test_shared_nets_accumulate(self):
        hg = Hypergraph([[0, 1], [0, 1, 2]])
        w = connectivity_weights(hg)
        assert w[0][1] == pytest.approx(1.0 + 0.5)

    def test_symmetry(self, circuit):
        w = connectivity_weights(circuit)
        for u in range(0, circuit.num_nodes, 17):
            for v, weight in w[u].items():
                assert w[v][u] == pytest.approx(weight)

    def test_large_nets_skipped(self):
        hg = Hypergraph([list(range(50))])
        w = connectivity_weights(hg, max_net_size=40)
        assert all(not entry for entry in w)


class TestHeavyEdgeMatching:
    def test_contiguous_cluster_ids(self, circuit):
        cluster_of = heavy_edge_matching(circuit, seed=1)
        k = max(cluster_of) + 1
        assert set(cluster_of) == set(range(k))

    def test_clusters_of_at_most_two(self, circuit):
        cluster_of = heavy_edge_matching(circuit, seed=1)
        sizes = {}
        for c in cluster_of:
            sizes[c] = sizes.get(c, 0) + 1
        assert max(sizes.values()) <= 2

    def test_matched_pairs_are_connected(self, circuit):
        cluster_of = heavy_edge_matching(circuit, seed=2)
        members = {}
        for v, c in enumerate(cluster_of):
            members.setdefault(c, []).append(v)
        affinity = connectivity_weights(circuit)
        for pair in members.values():
            if len(pair) == 2:
                u, v = pair
                assert v in affinity[u], "matched pair shares no net"

    def test_weight_guard(self):
        hg = Hypergraph([[0, 1]], node_weights=[10.0, 10.0])
        cluster_of = heavy_edge_matching(hg, max_cluster_weight=15.0)
        assert cluster_of[0] != cluster_of[1]

    def test_deterministic(self, circuit):
        assert heavy_edge_matching(circuit, seed=5) == heavy_edge_matching(
            circuit, seed=5
        )

    def test_empty_graph(self):
        assert heavy_edge_matching(Hypergraph([], num_nodes=0)) == []

    def test_oversized_nets_do_not_strand(self):
        """Regression: nodes whose every net exceeds ``max_net_size``
        have empty affinity maps, so before the sampled-pin fallback the
        matcher left them all as singletons and coarsening stalled at
        min_reduction on pad-heavy circuits.  They must pair up."""
        pins = list(range(12))
        hg = Hypergraph([pins, pins[::-1]])
        cluster_of = heavy_edge_matching(hg, seed=3, max_net_size=5)
        k = max(cluster_of) + 1
        assert k < hg.num_nodes, "all stranded nodes left singleton"
        sizes = {}
        for c in cluster_of:
            sizes[c] = sizes.get(c, 0) + 1
        assert max(sizes.values()) == 2

    def test_stranded_fallback_respects_weight_cap(self):
        pins = list(range(6))
        hg = Hypergraph([pins], node_weights=[10.0] * 6)
        cluster_of = heavy_edge_matching(
            hg, seed=1, max_net_size=3, max_cluster_weight=15.0
        )
        assert len(set(cluster_of)) == 6  # cap forbids every pairing

    def test_stranded_fallback_stable_with_seed(self):
        pins = list(range(20))
        hg = Hypergraph([pins, pins[::2] + pins[1::2]])
        a = heavy_edge_matching(hg, seed=7, max_net_size=4)
        b = heavy_edge_matching(hg, seed=7, max_net_size=4)
        assert a == b


class TestCoarsenHierarchy:
    def test_single_level_shrinks(self, circuit):
        contraction = coarsen_once(circuit, seed=1)
        assert contraction.coarse.num_nodes < circuit.num_nodes
        assert contraction.coarse.num_nodes >= circuit.num_nodes // 2

    def test_weight_conserved_through_levels(self, circuit):
        levels = coarsen_to(circuit, target_nodes=60, seed=1)
        assert levels, "expected at least one level"
        for contraction in levels:
            assert contraction.coarse.total_node_weight == pytest.approx(
                circuit.total_node_weight
            )

    def test_reaches_target_or_stalls(self, circuit):
        levels = coarsen_to(circuit, target_nodes=60, seed=1)
        coarsest = levels[-1].coarse
        # either at/below target, or the last level stalled near it
        assert coarsest.num_nodes <= max(60, circuit.num_nodes * 0.9)

    def test_small_input_no_levels(self):
        hg = Hypergraph([[0, 1]], num_nodes=10)
        assert coarsen_to(hg, target_nodes=80) == []

    def test_target_validated(self, circuit):
        with pytest.raises(ValueError):
            coarsen_to(circuit, target_nodes=1)

    def test_projection_chain_preserves_cut(self, circuit):
        """A cut computed on any level equals the cut of its projection
        all the way down — the invariant multilevel methods rest on."""
        from repro.partition import cut_cost, random_balanced_sides

        levels = coarsen_to(circuit, target_nodes=60, seed=1)
        coarsest = levels[-1].coarse
        sides = random_balanced_sides(coarsest, 3)
        coarse_cut = cut_cost(coarsest, sides)
        for contraction in reversed(levels):
            sides = contraction.project_sides(sides)
        assert cut_cost(circuit, sides) == pytest.approx(coarse_cut)
