"""Tests for the multilevel V-cycle partitioner."""

import pytest

from repro.baselines import FMPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import hierarchical_circuit
from repro.multilevel import MultilevelPartitioner
from repro.multirun import run_many
from repro.partition import (
    BalanceConstraint,
    balance_ratio,
    cut_cost,
    random_balanced_sides,
)


@pytest.fixture
def circuit():
    return hierarchical_circuit(420, 445, 1610, seed=6)


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(coarsest_nodes=1)
        with pytest.raises(ValueError):
            MultilevelPartitioner(coarsest_runs=0)

    def test_name(self):
        assert MultilevelPartitioner().name == "ML-PROP"


class TestQuality:
    def test_beats_random(self, circuit):
        floor = cut_cost(circuit, random_balanced_sides(circuit, 0))
        result = MultilevelPartitioner().partition(circuit, seed=0)
        assert result.cut < floor * 0.5
        result.verify(circuit)

    def test_finds_planted_optimum(self, planted):
        graph, _, crossing = planted
        result = MultilevelPartitioner().partition(graph, seed=0)
        assert result.cut <= crossing + 2

    def test_competitive_with_flat_prop(self, circuit):
        """The V-cycle must match or beat flat PROP at equal restarts —
        the whole argument for multilevel."""
        flat = run_many(PropPartitioner(), circuit, runs=3).best_cut
        ml = run_many(MultilevelPartitioner(), circuit, runs=3).best_cut
        assert ml <= flat * 1.1

    def test_balance_respected(self, circuit):
        result = MultilevelPartitioner().partition(circuit, seed=1)
        assert balance_ratio(circuit, result.sides) <= 0.5 + (
            2.0 / circuit.num_nodes
        )

    def test_4555_balance(self, circuit):
        balance = BalanceConstraint.forty_five_fifty_five(circuit)
        result = MultilevelPartitioner().partition(
            circuit, balance=balance, seed=1
        )
        assert balance_ratio(circuit, result.sides) <= 0.55 + 1e-9

    def test_stats_recorded(self, circuit):
        result = MultilevelPartitioner().partition(circuit, seed=0)
        assert result.stats["levels"] >= 1
        assert result.stats["coarsest_nodes"] <= 100

    def test_deterministic(self, circuit):
        a = MultilevelPartitioner().partition(circuit, seed=4)
        b = MultilevelPartitioner().partition(circuit, seed=4)
        assert a.sides == b.sides

    def test_fm_refiner(self, circuit):
        # FM-tree: contracted levels merge nets into non-unit costs, which
        # the bucket variant correctly refuses.
        result = MultilevelPartitioner(
            refiner=FMPartitioner("tree")
        ).partition(circuit, seed=0)
        result.verify(circuit)

    def test_fm_bucket_refiner_rejected_by_weighted_levels(self, circuit):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unit net costs"):
            MultilevelPartitioner(
                refiner=FMPartitioner("bucket")
            ).partition(circuit, seed=0)

    def test_initial_sides_bypass(self, circuit):
        initial = random_balanced_sides(circuit, 7)
        result = MultilevelPartitioner().partition(
            circuit, initial_sides=initial
        )
        assert result.cut <= cut_cost(circuit, initial)
        assert result.algorithm == "ML-PROP"

    def test_small_graph_no_hierarchy(self):
        small = hierarchical_circuit(50, 55, 200, seed=1)
        result = MultilevelPartitioner(coarsest_nodes=80).partition(
            small, seed=0
        )
        result.verify(small)
        assert result.stats["levels"] == 0
