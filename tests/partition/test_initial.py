"""Tests for initial partitions and ordering splits."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import (
    BalanceConstraint,
    best_split_of_ordering,
    cut_cost,
    random_balanced_sides,
    random_fraction_sides,
    random_weight_balanced_sides,
    sides_from_order_prefix,
)


class TestRandomBalanced:
    def test_exact_bisection(self, medium_circuit):
        sides = random_balanced_sides(medium_circuit, seed=1)
        n = medium_circuit.num_nodes
        assert sum(sides) == n // 2

    def test_seed_determinism(self, medium_circuit):
        assert random_balanced_sides(medium_circuit, 5) == (
            random_balanced_sides(medium_circuit, 5)
        )
        assert random_balanced_sides(medium_circuit, 5) != (
            random_balanced_sides(medium_circuit, 6)
        )

    def test_accepts_rng_instance(self, medium_circuit):
        rng = random.Random(3)
        sides = random_balanced_sides(medium_circuit, rng)
        assert len(sides) == medium_circuit.num_nodes


class TestRandomWeightBalanced:
    def test_weighted(self):
        hg = Hypergraph(
            [[0, 1]], num_nodes=4, node_weights=[10.0, 1.0, 1.0, 1.0]
        )
        sides = random_weight_balanced_sides(hg, seed=0)
        w = [0.0, 0.0]
        for v, s in enumerate(sides):
            w[s] += hg.node_weight(v)
        # heavy node alone on one side, the three light ones on the other
        assert sorted(w) == [3.0, 10.0]


class TestRandomFraction:
    def test_fraction(self, medium_circuit):
        sides = random_fraction_sides(medium_circuit, 0.25, seed=1)
        count0 = sides.count(0)
        assert count0 == round(medium_circuit.num_nodes * 0.25)

    def test_validation(self, medium_circuit):
        with pytest.raises(ValueError):
            random_fraction_sides(medium_circuit, 0.0)
        with pytest.raises(ValueError):
            random_fraction_sides(medium_circuit, 1.0)

    def test_extremes_clamped(self):
        hg = Hypergraph([[0, 1]], num_nodes=2)
        sides = random_fraction_sides(hg, 0.01, seed=0)
        assert sides.count(0) == 1  # at least one node per side


class TestOrderPrefix:
    def test_basic(self, tiny_graph):
        sides = sides_from_order_prefix(tiny_graph, [5, 4, 3, 2, 1, 0], 2)
        assert sides == [1, 1, 1, 1, 0, 0]

    def test_length_check(self, tiny_graph):
        with pytest.raises(ValueError):
            sides_from_order_prefix(tiny_graph, [0, 1], 1)


class TestBestSplit:
    def brute_force(self, graph, order, balance):
        best = None
        for k in range(1, graph.num_nodes):
            sides = sides_from_order_prefix(graph, order, k)
            w = [0.0, 0.0]
            for v, s in enumerate(sides):
                w[s] += graph.node_weight(v)
            if not balance.is_satisfied(w):
                continue
            cut = cut_cost(graph, sides)
            if best is None or cut < best:
                best = cut
        return best

    def test_finds_obvious_split(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.5, 0.5)
        sides, cut = best_split_of_ordering(
            tiny_graph, [0, 1, 2, 3, 4, 5], balance
        )
        assert cut == 1.0
        assert sides == [0, 0, 0, 1, 1, 1]

    def test_rejects_non_permutation(self, tiny_graph):
        balance = BalanceConstraint.fifty_fifty(tiny_graph)
        with pytest.raises(ValueError, match="permutation"):
            best_split_of_ordering(tiny_graph, [0, 0, 1, 2, 3, 4], balance)

    def test_infeasible_balance_raises(self):
        hg = Hypergraph([[0, 1]], num_nodes=2,
                        node_weights=[10.0, 1.0])
        balance = BalanceConstraint(lo=5.0, hi=6.0, total=11.0)
        with pytest.raises(ValueError, match="balanced split"):
            best_split_of_ordering(hg, [0, 1], balance)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, seed):
        graph = hierarchical_circuit(40, 44, 160, seed=seed % 5)
        rng = random.Random(seed)
        order = list(range(graph.num_nodes))
        rng.shuffle(order)
        balance = BalanceConstraint.from_fractions(graph, 0.4, 0.6)
        sides, cut = best_split_of_ordering(graph, order, balance)
        assert cut == pytest.approx(cut_cost(graph, sides))
        assert cut == pytest.approx(self.brute_force(graph, order, balance))
