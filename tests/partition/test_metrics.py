"""Tests for cut metrics and the shared result record."""

import pytest

from repro.hypergraph import Hypergraph
from repro.partition import (
    BipartitionResult,
    balance_ratio,
    cut_cost,
    cut_nets,
    improvement_percent,
    side_weights,
)


class TestCutCost:
    def test_tiny(self, tiny_graph, tiny_sides):
        assert cut_cost(tiny_graph, tiny_sides) == 1.0

    def test_all_one_side_is_zero(self, tiny_graph):
        assert cut_cost(tiny_graph, [0] * 6) == 0.0

    def test_weighted(self):
        hg = Hypergraph([[0, 1], [0, 1]], net_costs=[2.0, 3.0])
        assert cut_cost(hg, [0, 1]) == 5.0

    def test_length_check(self, tiny_graph):
        with pytest.raises(ValueError):
            cut_cost(tiny_graph, [0, 1])

    def test_cut_nets_ids(self, tiny_graph, tiny_sides):
        assert cut_nets(tiny_graph, tiny_sides) == [4]

    def test_single_pin_net_never_cut(self):
        hg = Hypergraph([[0], [0, 1]])
        assert cut_cost(hg, [0, 1]) == 1.0


class TestSideWeights:
    def test_unit(self, tiny_graph, tiny_sides):
        assert side_weights(tiny_graph, tiny_sides) == [3.0, 3.0]

    def test_balance_ratio(self, tiny_graph):
        assert balance_ratio(tiny_graph, [0, 0, 0, 0, 1, 1]) == pytest.approx(
            4 / 6
        )
        assert balance_ratio(tiny_graph, [0, 0, 0, 1, 1, 1]) == 0.5


class TestImprovementPercent:
    def test_paper_metric(self):
        """Sec. 4: (cutset improvement / larger cutset) x 100."""
        assert improvement_percent(83, 92) == pytest.approx(9.78, abs=0.01)

    def test_negative_when_we_lose(self):
        # paper t6 row: PROP 81 vs LA-2 70 -> -13.6%
        assert improvement_percent(81, 70) == pytest.approx(-13.58, abs=0.01)

    def test_symmetry(self):
        assert improvement_percent(50, 100) == -improvement_percent(100, 50)

    def test_zero_cuts(self):
        assert improvement_percent(0, 0) == 0.0

    def test_bounded_by_100(self):
        assert improvement_percent(0, 10) == 100.0


class TestBipartitionResult:
    def test_verify_ok(self, tiny_graph, tiny_sides):
        r = BipartitionResult(sides=list(tiny_sides), cut=1.0, algorithm="X")
        r.verify(tiny_graph)

    def test_verify_catches_lies(self, tiny_graph, tiny_sides):
        r = BipartitionResult(sides=list(tiny_sides), cut=99.0, algorithm="X")
        with pytest.raises(AssertionError, match="recorded cut"):
            r.verify(tiny_graph)

    def test_stats_default(self):
        r = BipartitionResult(sides=[0, 1], cut=0.0)
        assert r.stats == {}
