"""Tests for the ratio-cut objective and the ratio split mode."""

import pytest

from repro.baselines import Eig1Partitioner
from repro.hypergraph import Hypergraph, planted_bisection
from repro.partition import (
    BalanceConstraint,
    best_split_of_ordering,
    cut_cost,
    ratio_cut,
)


class TestRatioCutMetric:
    def test_basic(self, tiny_graph, tiny_sides):
        # cut 1, sides 3/3 -> 1/9
        assert ratio_cut(tiny_graph, tiny_sides) == pytest.approx(1 / 9)

    def test_prefers_balanced_equal_cut(self, tiny_graph):
        balanced = [0, 0, 0, 1, 1, 1]
        skewed = [0, 0, 0, 0, 1, 1]  # cut 2 (nets {3,4} and {2,3,5})
        assert ratio_cut(tiny_graph, balanced) < ratio_cut(tiny_graph, skewed)

    def test_empty_side_is_infinite(self, tiny_graph):
        assert ratio_cut(tiny_graph, [0] * 6) == float("inf")

    def test_weighted_nodes(self):
        hg = Hypergraph([[0, 1]], node_weights=[2.0, 3.0])
        assert ratio_cut(hg, [0, 1]) == pytest.approx(1.0 / 6.0)


class TestRatioSplitObjective:
    def test_unknown_objective_rejected(self, tiny_graph):
        balance = BalanceConstraint.fifty_fifty(tiny_graph)
        with pytest.raises(ValueError, match="objective"):
            best_split_of_ordering(
                tiny_graph, list(range(6)), balance, objective="area"
            )

    def test_ratio_mode_returns_cut_score(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.3, 0.7)
        sides, score = best_split_of_ordering(
            tiny_graph, list(range(6)), balance, objective="ratio"
        )
        assert score == cut_cost(tiny_graph, sides)

    def test_ratio_mode_picks_balanced_among_equal_cuts(self):
        """A chain has many equal-cut splits; ratio mode must take the
        most balanced one while cut mode takes the first feasible."""
        chain = Hypergraph([[i, i + 1] for i in range(7)], num_nodes=8)
        balance = BalanceConstraint.from_fractions(chain, 0.25, 0.75)
        order = list(range(8))
        ratio_sides, _ = best_split_of_ordering(
            chain, order, balance, objective="ratio"
        )
        assert ratio_sides.count(0) == 4  # perfectly balanced split


class TestEig1Objective:
    def test_objective_validated(self):
        with pytest.raises(ValueError):
            Eig1Partitioner(objective="area")

    def test_ratio_mode_runs(self):
        graph, _, crossing = planted_bisection(30, 80, 3, seed=2)
        result = Eig1Partitioner(objective="ratio").partition(graph)
        result.verify(graph)
        assert result.cut <= crossing + 3

    def test_modes_agree_on_planted(self):
        graph, _, _ = planted_bisection(30, 80, 2, seed=5)
        cut_mode = Eig1Partitioner(objective="cut").partition(graph)
        ratio_mode = Eig1Partitioner(objective="ratio").partition(graph)
        # both must find the planted valley on an easy instance
        assert cut_mode.cut == ratio_mode.cut
