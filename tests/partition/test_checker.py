"""Tests for the stand-alone partition checker."""

import pytest

from repro.partition import BalanceConstraint, check_partition


class TestCheckPartition:
    def test_valid(self, tiny_graph, tiny_sides):
        report = check_partition(tiny_graph, tiny_sides)
        assert report.ok
        assert report.cut == 1.0
        assert report.num_cut_nets == 1
        assert report.side_weights == [3.0, 3.0]
        assert report.balance_ratio == 0.5
        assert "OK" in report.summary()

    def test_length_mismatch(self, tiny_graph):
        report = check_partition(tiny_graph, [0, 1])
        assert not report.ok
        assert "length" in report.errors[0]

    def test_non_binary_values(self, tiny_graph):
        report = check_partition(tiny_graph, [0, 0, 0, 1, 1, 2])
        assert not report.ok
        assert "non-binary" in report.errors[0]

    def test_empty_side(self, tiny_graph):
        report = check_partition(tiny_graph, [0] * 6)
        assert not report.ok
        assert any("empty" in e for e in report.errors)

    def test_balance_violation(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.45, 0.55)
        report = check_partition(
            tiny_graph, [0, 0, 0, 0, 1, 1], balance=balance
        )
        assert not report.ok
        assert any("balance" in e for e in report.errors)
        assert "INVALID" in report.summary()

    def test_expected_cut_match(self, tiny_graph, tiny_sides):
        assert check_partition(
            tiny_graph, tiny_sides, expected_cut=1.0
        ).ok

    def test_expected_cut_mismatch(self, tiny_graph, tiny_sides):
        report = check_partition(tiny_graph, tiny_sides, expected_cut=5.0)
        assert not report.ok
        assert any("recorded cut" in e for e in report.errors)

    def test_multiple_errors_accumulate(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.45, 0.55)
        report = check_partition(
            tiny_graph, [0, 0, 0, 0, 0, 1], balance=balance, expected_cut=9.0
        )
        assert len(report.errors) == 2


class TestCliVerify:
    def test_verify_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        result = tmp_path / "r.json"
        assert main([str(netlist), "-a", "fm", "-o", str(result)]) == 0
        assert main([str(netlist), "--verify", str(result)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_tampering(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        result = tmp_path / "r.json"
        main([str(netlist), "-a", "fm", "-o", str(result)])
        payload = json.loads(result.read_text())
        payload["cut"] = 0  # lie about the cut
        result.write_text(json.dumps(payload))
        assert main([str(netlist), "--verify", str(result)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_verify_missing_sides(self, tmp_path):
        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        bogus = tmp_path / "b.json"
        bogus.write_text('{"mode": "kway"}')
        assert main([str(netlist), "--verify", str(bogus)]) == 2
