"""Tests for the stand-alone partition checker."""

import pytest

from repro.hypergraph import Hypergraph
from repro.partition import BalanceConstraint, check_partition


class TestCheckPartition:
    def test_valid(self, tiny_graph, tiny_sides):
        report = check_partition(tiny_graph, tiny_sides)
        assert report.ok
        assert report.cut == 1.0
        assert report.num_cut_nets == 1
        assert report.side_weights == [3.0, 3.0]
        assert report.balance_ratio == 0.5
        assert "OK" in report.summary()

    def test_length_mismatch(self, tiny_graph):
        report = check_partition(tiny_graph, [0, 1])
        assert not report.ok
        assert "length" in report.errors[0]

    def test_non_binary_values(self, tiny_graph):
        report = check_partition(tiny_graph, [0, 0, 0, 1, 1, 2])
        assert not report.ok
        assert "non-binary" in report.errors[0]

    def test_empty_side(self, tiny_graph):
        report = check_partition(tiny_graph, [0] * 6)
        assert not report.ok
        assert any("empty" in e for e in report.errors)

    def test_balance_violation(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.45, 0.55)
        report = check_partition(
            tiny_graph, [0, 0, 0, 0, 1, 1], balance=balance
        )
        assert not report.ok
        assert any("balance" in e for e in report.errors)
        assert "INVALID" in report.summary()

    def test_expected_cut_match(self, tiny_graph, tiny_sides):
        assert check_partition(
            tiny_graph, tiny_sides, expected_cut=1.0
        ).ok

    def test_expected_cut_mismatch(self, tiny_graph, tiny_sides):
        report = check_partition(tiny_graph, tiny_sides, expected_cut=5.0)
        assert not report.ok
        assert any("recorded cut" in e for e in report.errors)

    def test_multiple_errors_accumulate(self, tiny_graph):
        balance = BalanceConstraint.from_fractions(tiny_graph, 0.45, 0.55)
        report = check_partition(
            tiny_graph, [0, 0, 0, 0, 0, 1], balance=balance, expected_cut=9.0
        )
        assert len(report.errors) == 2


class TestCheckerEdgeCases:
    """Degenerate but legal inputs the checker must not choke on."""

    def test_single_node_sides(self):
        graph = Hypergraph([(0, 1)], num_nodes=2)
        report = check_partition(graph, [0, 1], expected_cut=1.0)
        assert report.ok
        assert report.side_weights == [1.0, 1.0]

    def test_no_nets_at_all(self):
        graph = Hypergraph([], num_nodes=4)
        report = check_partition(graph, [0, 0, 1, 1], expected_cut=0.0)
        assert report.ok
        assert report.cut == 0.0 and report.num_cut_nets == 0

    def test_single_pin_nets_never_cut(self):
        graph = Hypergraph([(0,), (1,), (0, 1)], num_nodes=2)
        report = check_partition(graph, [0, 1])
        assert report.ok
        assert report.cut == 1.0 and report.num_cut_nets == 1

    def test_zero_weight_side_reads_as_empty(self):
        # A side populated only by zero-weight nodes has weight 0: the
        # checker reports it as empty (balance is defined on weight, and
        # every paper experiment uses weight >= 1).
        graph = Hypergraph(
            [(0, 1), (1, 2)], num_nodes=3, node_weights=[0.0, 1.0, 1.0]
        )
        report = check_partition(graph, [0, 1, 1])
        assert not report.ok
        assert any("empty" in e for e in report.errors)
        # ...but a zero-weight node riding along a weighted side is fine.
        assert check_partition(graph, [0, 0, 1]).ok

    def test_balance_exactly_at_bounds_is_satisfied(self):
        # Side weights 2/3 with bounds exactly [2, 3]: at +/- epsilon the
        # constraint holds (is_satisfied allows 1e-9 float slop).
        graph = Hypergraph([(0, 1, 2)], num_nodes=5)
        balance = BalanceConstraint(lo=2.0, hi=3.0, total=5.0)
        report = check_partition(graph, [0, 0, 1, 1, 1], balance=balance)
        assert report.ok, report.errors

    def test_balance_one_unit_outside_bounds_fails(self):
        graph = Hypergraph([(0, 1, 2)], num_nodes=5)
        balance = BalanceConstraint(lo=2.0, hi=3.0, total=5.0)
        report = check_partition(graph, [0, 1, 1, 1, 1], balance=balance)
        assert not report.ok
        assert any("outside [2, 3]" in e for e in report.errors)

    def test_float_sides_equal_to_ints_accepted(self):
        # json round-trips may deliver 0.0/1.0; values equal to 0/1 pass.
        graph = Hypergraph([(0, 1)], num_nodes=2)
        report = check_partition(graph, [0.0, 1.0])
        assert report.ok and report.cut == 1.0


class TestCliVerify:
    def test_verify_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        result = tmp_path / "r.json"
        assert main([str(netlist), "-a", "fm", "-o", str(result)]) == 0
        assert main([str(netlist), "--verify", str(result)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_tampering(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        result = tmp_path / "r.json"
        main([str(netlist), "-a", "fm", "-o", str(result)])
        payload = json.loads(result.read_text())
        payload["cut"] = 0  # lie about the cut
        result.write_text(json.dumps(payload))
        assert main([str(netlist), "--verify", str(result)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_verify_missing_sides(self, tmp_path):
        from repro.cli import main
        from repro.hypergraph import hierarchical_circuit
        from repro.hypergraph import io_ as nio

        graph = hierarchical_circuit(60, 66, 240, seed=1)
        netlist = tmp_path / "c.hgr"
        nio.write_hgr(graph, netlist)
        bogus = tmp_path / "b.json"
        bogus.write_text('{"mode": "kway"}')
        assert main([str(netlist), "--verify", str(bogus)]) == 2
