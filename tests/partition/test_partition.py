"""Unit + property tests for the mutable Partition state."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, hierarchical_circuit
from repro.partition import Partition, cut_cost, random_balanced_sides


class TestConstruction:
    def test_counts_and_cut(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        assert p.cut_cost == 1.0
        assert p.count(4, 0) == 1  # net {2,3,5}: node 2 on side 0
        assert p.count(4, 1) == 2
        assert p.side_sizes() == (3, 3)
        p.check_invariants()

    def test_wrong_length_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="length"):
            Partition(tiny_graph, [0, 1])

    def test_bad_side_value_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="expected 0 or 1"):
            Partition(tiny_graph, [0, 0, 0, 1, 1, 2])

    def test_weighted_side_weights(self):
        hg = Hypergraph([[0, 1]], node_weights=[2.0, 5.0])
        p = Partition(hg, [0, 1])
        assert p.side_weights == (2.0, 5.0)

    def test_sides_returns_copy(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        sides = p.sides
        sides[0] = 1
        assert p.side(0) == 0


class TestMoves:
    def test_move_updates_cut(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        # moving node 2 to side 1: net {1,2} becomes cut, net {2,3,5} uncut
        gain = p.move(2)
        assert gain == 0.0
        assert p.cut_cost == 1.0
        p.check_invariants()

    def test_immediate_gain_matches_realized(self, medium_circuit):
        p = Partition(medium_circuit, random_balanced_sides(medium_circuit, 1))
        rng = random.Random(0)
        for _ in range(50):
            v = rng.randrange(medium_circuit.num_nodes)
            expected = p.immediate_gain(v)
            before = p.cut_cost
            realized = p.move(v)
            assert realized == pytest.approx(expected)
            assert p.cut_cost == pytest.approx(before - realized)
        p.check_invariants()

    def test_move_then_move_back_restores(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        before_cut = p.cut_cost
        p.move(3)
        p.move(3)
        assert p.cut_cost == before_cut
        assert p.sides == tiny_sides

    def test_undo_moves(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.move(0)
        p.move(4)
        p.undo_moves([4, 0])
        assert p.sides == tiny_sides
        p.check_invariants()

    def test_weighted_cut(self):
        hg = Hypergraph([[0, 1], [1, 2]], net_costs=[3.0, 0.5])
        p = Partition(hg, [0, 1, 1])
        assert p.cut_cost == 3.0
        p.move(1)
        assert p.cut_cost == 0.5


class TestLocks:
    def test_lock_prevents_move(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.lock(2)
        with pytest.raises(ValueError, match="locked"):
            p.move(2)

    def test_double_lock_rejected(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.lock(2)
        with pytest.raises(ValueError, match="already locked"):
            p.lock(2)

    def test_locked_counts(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.lock(2)
        assert p.net_locked_in(4, 0)       # net {2,3,5}, node 2 on side 0
        assert not p.net_locked_in(4, 1)
        assert p.free_count(4, 0) == 0
        assert p.free_count(4, 1) == 2
        p.check_invariants()

    def test_move_and_lock(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.move_and_lock(5)
        assert p.is_locked(5)
        assert p.num_locked == 1
        p.check_invariants()

    def test_unlock_all(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        p.lock(1)
        p.lock(4)
        p.unlock_all()
        assert p.num_locked == 0
        assert not p.is_locked(1)
        p.check_invariants()


class TestQueries:
    def test_cut_nets(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        assert p.cut_nets() == [4]

    def test_net_is_cut(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        assert p.net_is_cut(4)
        assert not p.net_is_cut(0)

    def test_nodes_on_side(self, tiny_graph, tiny_sides):
        p = Partition(tiny_graph, tiny_sides)
        assert p.nodes_on_side(0) == [0, 1, 2]
        assert p.nodes_on_side(1) == [3, 4, 5]


class TestProperties:
    @given(
        seed=st.integers(0, 10_000),
        moves=st.lists(st.integers(0, 79), max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_incremental_state_matches_recompute(self, seed, moves):
        """Any move/lock sequence keeps incremental state consistent."""
        graph = hierarchical_circuit(80, 90, 330, seed=seed % 7)
        p = Partition(graph, random_balanced_sides(graph, seed))
        locked = set()
        for i, v in enumerate(moves):
            if v in locked:
                continue
            if i % 3 == 2:
                p.move_and_lock(v)
                locked.add(v)
            else:
                p.move(v)
        p.check_invariants()
        assert p.cut_cost == pytest.approx(cut_cost(graph, p.sides))
