"""Tests for balance constraints (paper Sec. 1 and Sec. 4 regimes)."""

import pytest

from repro.hypergraph import Hypergraph
from repro.partition import (
    AsymmetricBalanceConstraint,
    BalanceConstraint,
    split_sizes,
)


def _graph(n=10):
    return Hypergraph([[i, i + 1] for i in range(n - 1)], num_nodes=n)


class TestBalanceConstraint:
    def test_from_fractions(self):
        b = BalanceConstraint.from_fractions(_graph(10), 0.45, 0.55)
        assert b.lo == pytest.approx(4.5)
        assert b.hi == pytest.approx(5.5)

    def test_fraction_validation(self):
        g = _graph()
        with pytest.raises(ValueError):
            BalanceConstraint.from_fractions(g, 0.6, 0.4)  # r1 > r2
        with pytest.raises(ValueError):
            BalanceConstraint.from_fractions(g, 0.0, 0.5)  # r1 = 0
        with pytest.raises(ValueError):
            BalanceConstraint.from_fractions(g, 0.6, 0.7)  # excludes 0.5

    def test_fifty_fifty_allows_one_node_slack(self):
        b = BalanceConstraint.fifty_fifty(_graph(10))
        assert b.is_satisfied([5, 5])
        assert b.is_satisfied([6, 4])
        assert not b.is_satisfied([7, 3])

    def test_forty_five_fifty_five(self):
        b = BalanceConstraint.forty_five_fifty_five(_graph(100))
        assert b.is_satisfied([55, 45])
        assert not b.is_satisfied([56, 44])

    def test_move_allowed_directional(self):
        b = BalanceConstraint.from_fractions(_graph(10), 0.4, 0.6)
        # 6/4: moving from side 0 (toward balance) OK
        assert b.move_allowed([6, 4], 0, 1.0)
        # 6/4: moving from side 1 would give 7/3 -> blocked
        assert not b.move_allowed([6, 4], 1, 1.0)

    def test_move_allowed_repairs_imbalance(self):
        """Starting outside bounds, moves toward balance are permitted."""
        b = BalanceConstraint.from_fractions(_graph(10), 0.45, 0.55)
        assert b.move_allowed([8, 2], 0, 1.0)
        assert not b.move_allowed([8, 2], 1, 1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BalanceConstraint(lo=5.0, hi=4.0, total=10.0)
        with pytest.raises(ValueError, match="feasible"):
            BalanceConstraint(lo=6.0, hi=7.0, total=10.0)

    def test_weighted_slack(self):
        g = Hypergraph([[0, 1], [1, 2], [2, 3]],
                       node_weights=[5.0, 1.0, 1.0, 5.0])
        b = BalanceConstraint.fifty_fifty(g)
        # slack equals the max node weight so a heavy node can cross,
        # clamped to the [0, total] range
        assert b.lo == pytest.approx(1.0)
        assert b.hi == pytest.approx(11.0)

    def test_describe(self):
        text = BalanceConstraint.forty_five_fifty_five(_graph(100)).describe()
        assert "0.450" in text and "0.550" in text


class TestAsymmetricBalance:
    def test_from_fraction(self):
        b = AsymmetricBalanceConstraint.from_fraction(_graph(90), 2 / 3, 0.05)
        assert b.lo0 < 60 < b.hi0

    def test_is_satisfied_checks_side0_only(self):
        b = AsymmetricBalanceConstraint(lo0=10, hi0=20, total=100)
        assert b.is_satisfied([15, 85])
        assert not b.is_satisfied([25, 75])

    def test_move_allowed(self):
        b = AsymmetricBalanceConstraint(lo0=10, hi0=20, total=100)
        assert b.move_allowed([20, 80], 0, 1.0)      # side0 19 in range
        assert not b.move_allowed([20, 80], 1, 1.0)  # side0 21 too big
        assert not b.move_allowed([10, 90], 0, 1.0)  # side0 9 too small

    def test_validation(self):
        with pytest.raises(ValueError):
            AsymmetricBalanceConstraint(lo0=-1, hi0=5, total=10)
        with pytest.raises(ValueError):
            AsymmetricBalanceConstraint(lo0=6, hi0=5, total=10)
        with pytest.raises(ValueError):
            AsymmetricBalanceConstraint(lo0=2, hi0=50, total=10)
        with pytest.raises(ValueError):
            AsymmetricBalanceConstraint.from_fraction(_graph(), 1.5, 0.1)

    def test_describe(self):
        b = AsymmetricBalanceConstraint(lo0=10, hi0=20, total=100)
        assert "side-0" in b.describe()


class TestSplitSizes:
    def test_even(self):
        assert split_sizes(10) == (5, 5)

    def test_odd(self):
        assert split_sizes(11) == (6, 5)

    def test_zero(self):
        assert split_sizes(0) == (0, 0)
