"""Documentation quality gates.

The deliverable requires doc comments on every public item; these tests
enforce it mechanically: every module, public class and public function
in ``repro`` must carry a docstring, and the repo-level documents must
exist and mention their required content.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).parent.parent.parent


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # overriding an already-documented base method is fine
                inherited = any(
                    getattr(getattr(base, meth_name, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )


class TestRepoDocuments:
    def test_required_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / doc).is_file(), doc

    def test_design_md_covers_contract(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        # the substitution table and the experiment index are mandatory
        assert "Substitutions" in text
        assert "Experiment index" in text
        for artifact in ("Table 1", "Table 2", "Table 3", "Table 4",
                         "Figure 1"):
            assert artifact in text, artifact

    def test_experiments_md_covers_every_artifact(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Figure 1", "Table 1", "Table 2", "Table 3",
                         "Table 4"):
            assert artifact in text, artifact
        assert "paper" in text.lower() and "measured" in text.lower()

    def test_readme_quickstart_present(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "pip install -e ." in text
        assert "PropPartitioner" in text
