"""Memory governance: rlimit env plumbing and the RSS watchdog."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.guard import (
    RLIMIT_ENV,
    RssWatchdog,
    current_rss_bytes,
    worker_rlimit_bytes,
)


class TestWorkerRlimit:
    def test_unset_means_uncapped(self, monkeypatch):
        monkeypatch.delenv(RLIMIT_ENV, raising=False)
        assert worker_rlimit_bytes() is None

    def test_mib_to_bytes(self, monkeypatch):
        monkeypatch.setenv(RLIMIT_ENV, "256")
        assert worker_rlimit_bytes() == 256 * 1024 * 1024
        monkeypatch.setenv(RLIMIT_ENV, "0.5")
        assert worker_rlimit_bytes() == 512 * 1024

    @pytest.mark.parametrize("bad", ["", "abc", "-5", "0"])
    def test_bad_values_mean_uncapped(self, monkeypatch, bad):
        monkeypatch.setenv(RLIMIT_ENV, bad)
        assert worker_rlimit_bytes() is None

    def test_apply_sets_soft_rlimit_in_child_process(self):
        # A real child process, exactly like a pool worker: apply the
        # cap there so this test process's address space is untouched.
        code = (
            "import os, resource\n"
            f"os.environ[{RLIMIT_ENV!r}] = '512'\n"
            "from repro.guard import apply_worker_rlimit\n"
            "assert apply_worker_rlimit() is True\n"
            "soft, _ = resource.getrlimit(resource.RLIMIT_AS)\n"
            "assert soft == 512 * 1024 * 1024, soft\n"
            "print('capped')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "capped"

    def test_apply_without_env_is_a_noop(self, monkeypatch):
        from repro.guard import apply_worker_rlimit

        monkeypatch.delenv(RLIMIT_ENV, raising=False)
        assert apply_worker_rlimit() is False


class TestRssWatchdog:
    def test_rss_is_readable(self):
        rss = current_rss_bytes()
        assert rss is not None and rss > 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RssWatchdog(high_water_bytes=0)
        with pytest.raises(ValueError):
            RssWatchdog(high_water_bytes=1, resume_fraction=0.0)

    def test_sheds_above_high_water(self):
        watchdog = RssWatchdog(high_water_bytes=1)  # any RSS exceeds 1B
        assert watchdog.check_now() is True
        assert watchdog.shedding is True
        assert watchdog.last_rss > 0
        assert watchdog.peak_rss >= watchdog.last_rss

    def test_never_sheds_below_high_water(self):
        watchdog = RssWatchdog(high_water_bytes=1 << 60)
        assert watchdog.check_now() is False
        assert watchdog.shedding is False

    def test_hysteresis_resume_below_fraction(self):
        changes = []
        watchdog = RssWatchdog(
            high_water_bytes=1,
            on_change=lambda shedding, rss: changes.append(shedding),
        )
        assert watchdog.check_now() is True
        # Raise the mark well above RSS: the flag must clear (and only
        # because RSS < mark * resume_fraction).
        watchdog.high_water_bytes = (watchdog.last_rss * 10)
        assert watchdog.check_now() is False
        assert changes == [True, False]

    def test_start_stop_idempotent(self):
        watchdog = RssWatchdog(high_water_bytes=1 << 60, poll_seconds=0.05)
        watchdog.start()
        watchdog.start()
        watchdog.stop()
        watchdog.stop()
        assert watchdog._thread is None
