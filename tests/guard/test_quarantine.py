"""QuarantineRegistry: the poison-job circuit breaker, unit-level."""

from __future__ import annotations

import json

import pytest

from repro.guard import QuarantinedError, QuarantineRegistry

FP = "a" * 64
OTHER = "b" * 64


def registry(tmp_path, quarantine_after=3) -> QuarantineRegistry:
    return QuarantineRegistry(
        tmp_path / "quarantine", quarantine_after=quarantine_after
    )


def test_trips_at_exactly_quarantine_after(tmp_path):
    reg = registry(tmp_path, quarantine_after=3)
    assert reg.record_strike(FP, "failed", job_id="j1") is None
    assert reg.record_strike(FP, "failed", job_id="j2") is None
    assert reg.is_quarantined(FP) is None
    entry = reg.record_strike(FP, "deadline", job_id="j3")
    assert entry is not None
    assert entry["strikes"] == 3
    assert entry["last_reason"] == "deadline"
    assert entry["last_job_id"] == "j3"
    assert reg.is_quarantined(FP) is not None


def test_success_resets_the_consecutive_count(tmp_path):
    reg = registry(tmp_path, quarantine_after=2)
    reg.record_strike(FP, "failed")
    reg.record_success(FP)
    assert reg.strikes(FP) == 0
    # One more strike is strike #1 again, not a trip.
    assert reg.record_strike(FP, "failed") is None
    assert reg.record_strike(FP, "failed") is not None


def test_check_raises_for_tripped_fingerprint_only(tmp_path):
    reg = registry(tmp_path, quarantine_after=1)
    reg.check(FP)  # clean: no-op
    reg.record_strike(FP, "failed", job_id="j1")
    with pytest.raises(QuarantinedError) as excinfo:
        reg.check(FP)
    assert excinfo.value.fingerprint == FP
    assert excinfo.value.entry["strikes"] == 1
    reg.check(OTHER)  # unrelated fingerprints unaffected


def test_strikes_after_trip_are_not_counted(tmp_path):
    reg = registry(tmp_path, quarantine_after=1)
    assert reg.record_strike(FP, "failed") is not None
    assert reg.record_strike(FP, "failed") is None  # already tripped
    assert reg.is_quarantined(FP)["strikes"] == 1


def test_bundle_written_on_trip_and_readable(tmp_path):
    reg = registry(tmp_path, quarantine_after=2)
    reg.record_strike(FP, "failed", job_id="j1", detail="boom")
    reg.record_strike(
        FP, "deadline", job_id="j2", detail="too slow",
        diagnostics={"spec": {"runs": 4}, "error": "deadline"},
    )
    bundle = reg.load_bundle(FP)
    assert bundle is not None
    assert bundle["fingerprint"] == FP
    assert [s["reason"] for s in bundle["strike_history"]] == [
        "failed", "deadline",
    ]
    assert bundle["diagnostics"]["spec"] == {"runs": 4}
    # And it is plain pretty-printed JSON on disk, for humans.
    raw = reg.bundle_path(FP).read_text()
    assert json.loads(raw)["fingerprint"] == FP


def test_state_replays_bit_identically_from_journal(tmp_path):
    reg = registry(tmp_path, quarantine_after=3)
    reg.record_strike(FP, "failed", job_id="j1")
    reg.record_strike(FP, "failed", job_id="j2")
    reg.record_strike(FP, "failed", job_id="j3")
    reg.record_strike(OTHER, "crash_recovery", job_id="j4")

    replayed = registry(tmp_path, quarantine_after=3)
    assert replayed.entries() == reg.entries()
    assert replayed.is_quarantined(FP) == reg.is_quarantined(FP)
    assert replayed.strikes(OTHER) == 1
    assert replayed.snapshot() == reg.snapshot()


def test_release_forgives_but_keeps_the_bundle(tmp_path):
    reg = registry(tmp_path, quarantine_after=1)
    reg.record_strike(FP, "failed", diagnostics={"spec": {}})
    assert reg.release(FP) is True
    assert reg.is_quarantined(FP) is None
    assert reg.bundle_path(FP).exists()  # postmortem material stays
    assert reg.release(FP) is False  # idempotent
    # The release is durable: a replay does not resurrect the trip.
    assert registry(tmp_path).is_quarantined(FP) is None


def test_release_of_watched_fingerprint_clears_strikes(tmp_path):
    reg = registry(tmp_path, quarantine_after=5)
    reg.record_strike(FP, "failed")
    assert reg.release(FP) is False  # was not quarantined...
    assert reg.strikes(FP) == 0  # ...but the watch count is gone


def test_entries_sorted_by_fingerprint(tmp_path):
    reg = registry(tmp_path, quarantine_after=1)
    reg.record_strike(OTHER, "failed")
    reg.record_strike(FP, "failed")
    assert [e["fingerprint"] for e in reg.entries()] == [FP, OTHER]


def test_journal_failures_count_but_never_raise(tmp_path):
    blocker = tmp_path / "quarantine"
    blocker.write_text("a file where the directory should be")
    reg = QuarantineRegistry(blocker, quarantine_after=1)
    entry = reg.record_strike(FP, "failed")
    assert entry is not None  # breaker still works in memory
    assert reg.journal_errors > 0


def test_snapshot_counts(tmp_path):
    reg = registry(tmp_path, quarantine_after=2)
    reg.record_strike(FP, "failed")
    reg.record_strike(OTHER, "failed")
    reg.record_strike(OTHER, "failed")
    assert reg.snapshot() == {
        "quarantined": 1, "watching": 1, "quarantine_after": 2,
    }
