"""AdmissionController: bounds, accounting, Retry-After estimation."""

from __future__ import annotations

import pytest

from repro.guard import AdmissionController, OverloadedError, ServiceTimeTracker


def test_unbounded_controller_admits_everything():
    ctrl = AdmissionController()
    for n in range(100):
        ctrl.admit(f"tenant-{n % 3}")
    assert ctrl.queued == 100


def test_queue_depth_bound_sheds_with_reason():
    ctrl = AdmissionController(max_queue_depth=2)
    ctrl.admit("a")
    ctrl.admit("b")
    with pytest.raises(OverloadedError) as excinfo:
        ctrl.admit("c")
    assert excinfo.value.reason == "queue_depth"
    assert excinfo.value.retry_after >= 1
    assert ctrl.shed_counts["queue_depth"] == 1
    assert ctrl.queued == 2  # the shed submission reserved nothing


def test_note_started_frees_queue_headroom():
    ctrl = AdmissionController(max_queue_depth=1)
    ctrl.admit("a")
    with pytest.raises(OverloadedError):
        ctrl.admit("a")
    ctrl.note_started()  # a worker picked the job up
    ctrl.admit("a")  # headroom is back
    assert ctrl.queued == 1
    assert ctrl.inflight("a") == 2  # both jobs still in flight


def test_tenant_cap_is_per_tenant():
    ctrl = AdmissionController(tenant_caps={"a": 1})
    ctrl.admit("a")
    with pytest.raises(OverloadedError) as excinfo:
        ctrl.admit("a")
    assert excinfo.value.reason == "tenant_inflight"
    ctrl.admit("b")  # other tenants are uncapped
    ctrl.note_finished("a")
    ctrl.admit("a")  # a's slot came back


def test_default_tenant_cap_applies_to_unlisted_tenants():
    ctrl = AdmissionController(tenant_caps={"vip": 10}, default_tenant_cap=1)
    ctrl.admit("anon")
    with pytest.raises(OverloadedError):
        ctrl.admit("anon")
    ctrl.admit("vip")
    ctrl.admit("vip")


def test_note_finished_was_queued_frees_both_counts():
    ctrl = AdmissionController(max_queue_depth=1, default_tenant_cap=1)
    ctrl.admit("a")
    ctrl.note_finished("a", was_queued=True)  # cancelled while queued
    assert ctrl.queued == 0
    assert ctrl.inflight("a") == 0
    ctrl.admit("a")


def test_memory_shedding_hook():
    shedding = {"on": True}
    ctrl = AdmissionController(memory_shedding=lambda: shedding["on"])
    with pytest.raises(OverloadedError) as excinfo:
        ctrl.admit("a")
    assert excinfo.value.reason == "memory"
    assert ctrl.shed_counts["memory"] == 1
    shedding["on"] = False
    ctrl.admit("a")


def test_broken_memory_hook_never_sheds():
    def boom():
        raise RuntimeError("watchdog exploded")

    ctrl = AdmissionController(memory_shedding=boom)
    ctrl.admit("a")  # a broken watchdog must not reject traffic


def test_retry_after_scales_with_backlog_and_workers():
    tracker = ServiceTimeTracker()
    for _ in range(4):
        tracker.observe(2.0)
    ctrl = AdmissionController(job_workers=2, service_times=tracker)
    for _ in range(3):
        ctrl.note_admitted("a")
    # mean 2s * (3 queued + 1) / 2 workers = 4s
    assert ctrl.retry_after_seconds() == 4


def test_retry_after_clamped_to_bounds():
    tracker = ServiceTimeTracker()
    tracker.observe(10_000.0)
    ctrl = AdmissionController(
        service_times=tracker, min_retry_after=1, max_retry_after=60
    )
    assert ctrl.retry_after_seconds() == 60
    assert AdmissionController().retry_after_seconds() == 1


def test_service_time_tracker_window_and_defaults():
    tracker = ServiceTimeTracker(window=2, default_seconds=7.0)
    assert tracker.mean_seconds() == 7.0  # no samples yet
    tracker.observe(-1.0)  # ignored
    assert tracker.mean_seconds() == 7.0
    tracker.observe(1.0)
    tracker.observe(2.0)
    tracker.observe(3.0)  # evicts the 1.0 sample
    assert tracker.mean_seconds() == pytest.approx(2.5)


def test_snapshot_shape():
    ctrl = AdmissionController(max_queue_depth=5)
    ctrl.admit("a")
    snapshot = ctrl.snapshot()
    assert snapshot["queued"] == 1
    assert snapshot["max_queue_depth"] == 5
    assert snapshot["inflight"] == {"a": 1}
    assert set(snapshot["shed"]) == set(AdmissionController.REASONS)
    assert snapshot["mean_service_seconds"] == 1.0
