"""Public API surface checks."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        graph = repro.make_benchmark("struct", scale=0.1)
        result = repro.PropPartitioner().partition(graph, seed=42)
        assert result.cut >= 0
        assert len(result.sides) == graph.num_nodes

    def test_subpackages_importable(self):
        import repro.audit
        import repro.baselines
        import repro.core
        import repro.datastructures
        import repro.engine
        import repro.experiments
        import repro.fpga
        import repro.hypergraph
        import repro.kway
        import repro.multirun
        import repro.partition
        import repro.testing
        import repro.timing  # noqa: F401

    def test_partitioners_share_interface(self):
        """Every partitioner accepts (graph, balance=, initial_sides=, seed=)."""
        graph = repro.make_benchmark("t6", scale=0.05)
        balance = repro.BalanceConstraint.forty_five_fifty_five(graph)
        for cls in (
            repro.PropPartitioner,
            repro.KLPartitioner,
            repro.Eig1Partitioner,
            repro.MeloPartitioner,
            repro.WindowPartitioner,
            repro.ParaboliPartitioner,
            repro.RandomPartitioner,
        ):
            result = cls().partition(graph, balance=balance, seed=0)
            result.verify(graph)
        for container in ("bucket", "tree"):
            repro.FMPartitioner(container).partition(
                graph, balance=balance, seed=0
            ).verify(graph)
        for k in (1, 2, 3):
            repro.LAPartitioner(k).partition(
                graph, balance=balance, seed=0
            ).verify(graph)
