#!/usr/bin/env python3
"""Min-cut placement: partitioning quality becomes wirelength (Sec. 1).

The paper motivates min-cut partitioning as the engine of VLSI cell
placement.  This example closes that loop: the same recursive min-cut
placer runs with three inner partitioners — PROP, FM, and a random
splitter — and reports the resulting half-perimeter wirelength (HPWL).
Better cuts -> shorter wires, which is exactly why a 15-30% cut
improvement matters downstream.

Run:  python examples/placement_flow.py
"""

from repro import FMPartitioner, RandomPartitioner, make_benchmark
from repro.placement import mincut_placement, random_placement

def main() -> None:
    graph = make_benchmark("struct", scale=0.25)
    print(f"circuit struct @ 0.25: {graph.num_nodes} nodes, "
          f"{graph.num_nets} nets")
    print("placing on the unit square by recursive min-cut bisection...\n")

    def flows():
        yield "random placement", random_placement(graph, seed=1)
        yield "min-cut / random splits", mincut_placement(
            graph, partitioner=RandomPartitioner(), seed=1
        )
        yield "min-cut / FM", mincut_placement(
            graph, partitioner=FMPartitioner("bucket"), seed=1
        )
        yield "min-cut / PROP", mincut_placement(graph, seed=1)
        yield "min-cut / PROP + terminal prop.", mincut_placement(
            graph, seed=1, terminal_propagation=True
        )

    baseline = None
    for label, placement in flows():
        wirelength = placement.hpwl()
        if baseline is None:
            baseline = wirelength
        print(f"{label:<32s} HPWL {wirelength:>9.1f}  "
              f"({wirelength / baseline:>5.1%} of random)")

    print("\nthe min-cut flows cut wirelength roughly in half vs random,")
    print("and terminal propagation buys another ~20% — the downstream")
    print("payoff of good min-cut partitions (Sec. 1).")

if __name__ == "__main__":
    main()
