"""Partitioning-as-a-service tour: submit, stream, fetch, recover.

Boots the HTTP service in-process on an ephemeral port (the same
``ServiceServer`` that ``repro serve`` runs), then exercises the full
client lifecycle with :class:`repro.service.ServiceClient`:

1. submit a batch of generated circuits plus one inline ``.hgr`` netlist,
2. watch one job's server-sent events live (state/progress/trace),
3. collect every result and print the best cuts,
4. restart the service on the same cache directory and show that the
   finished jobs — and their results — survive without recomputation.

Everything is stdlib + the repro package: the wire format below is
exactly what ``curl`` sees (see docs/service.md).
"""

import asyncio
import tempfile

from repro.service import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

HGR = """\
4 6
1 2 3
1 4 5
2 4 6
3 5 6
"""


def make_config(cache_dir: str) -> ServiceConfig:
    return ServiceConfig(
        port=0,  # ephemeral: read server.bound_port after start
        cache_dir=cache_dir,
        job_workers=4,
        integrity_check=False,
    )


async def run_batch(cache_dir: str) -> list:
    server = ServiceServer(PartitionService(make_config(cache_dir)))
    await server.start()
    client = ServiceClient(port=server.bound_port)
    try:
        health = await client.health()
        print(f"service up (version {health['version']})")

        # -- submit: three generated jobs + one inline netlist ---------
        job_ids = []
        for index in range(3):
            accepted = await client.submit({
                "generate": {
                    "kind": "many_small",
                    "size_range": [10, 24],
                    "seed": 42,
                    "index": index,
                },
                "algorithm": "fm",
                "runs": 4,
                "seed": 100 + index,
                "tenant": "demo",
            })
            job_ids.append(accepted["job_id"])
        accepted = await client.submit({
            "hgr": HGR, "algorithm": "fm", "runs": 2, "seed": 7,
        })
        job_ids.append(accepted["job_id"])
        print(f"submitted {len(job_ids)} jobs: {', '.join(job_ids)}")

        # -- stream one job's SSE feed ---------------------------------
        print(f"\nevents for {job_ids[0]}:")
        async for event, data in client.events(job_ids[0]):
            if event == "state":
                print(f"  state -> {data['state']}")
                if data["state"] in ("done", "failed", "cancelled", "deadline"):
                    break
            elif event == "progress":
                print(f"  progress {data['done']}/{data['total']}")
            elif event == "trace":
                print(f"  trace {data['event']} (run {data['run']})")

        # -- collect every result --------------------------------------
        print("\nresults:")
        for job_id in job_ids:
            result = await client.wait(job_id)
            print(f"  {job_id}: state={result['state']} "
                  f"best_cut={result['best_cut']} cuts={result['cuts']}")
        return job_ids
    finally:
        await server.stop()


async def show_recovery(cache_dir: str, job_ids: list) -> None:
    """A fresh service on the same cache dir remembers everything."""
    server = ServiceServer(PartitionService(make_config(cache_dir)))
    await server.start()
    client = ServiceClient(port=server.bound_port)
    try:
        stats = await client.stats()
        print(f"\nafter restart: recovered {stats['recovered_jobs']} job(s)")
        result = await client.result(job_ids[0])
        print(f"  {job_ids[0]} still done, best_cut={result['best_cut']} "
              "(served from the run journal, zero recomputation)")
    finally:
        await server.stop()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as tmp:
        job_ids = asyncio.run(run_batch(tmp))
        asyncio.run(show_recovery(tmp, job_ids))


if __name__ == "__main__":
    main()
