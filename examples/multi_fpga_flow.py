#!/usr/bin/env python3
"""Multi-FPGA partitioning flow (paper Sec. 1 motivation, Sec. 5 future work).

Maps a circuit onto a board of four FPGA devices, each with a logic
capacity and an I/O pin budget (one I/O per net crossing the device
boundary).  Recursive PROP bisection does the heavy lifting; a greedy
repair pass relocates boundary nodes when a device overflows.

Run:  python examples/multi_fpga_flow.py
"""

from repro import compute_stats, make_benchmark
from repro.fpga import FpgaDevice, partition_onto_fpgas

def main() -> None:
    graph = make_benchmark("s9234", scale=0.15)
    stats = compute_stats(graph)
    print(f"circuit s9234 @ 0.15: {stats.n} nodes, {stats.e} nets")

    per_device_capacity = stats.n / 4 * 1.15  # 15% headroom
    board = [
        FpgaDevice(capacity=per_device_capacity, io_limit=160)
        for _ in range(4)
    ]
    print(f"board: 4 devices, capacity {per_device_capacity:.0f} "
          f"nodes each, 160 I/O pins each\n")

    plan = partition_onto_fpgas(graph, board, seed=3)

    print(f"{'device':<8s}{'logic used':>12s}{'capacity':>10s}"
          f"{'I/O used':>10s}{'I/O limit':>10s}")
    print("-" * 50)
    for d, device in enumerate(board):
        print(f"FPGA{d:<4d}{plan.utilization[d]:>12.0f}"
              f"{device.capacity:>10.0f}{plan.io_counts[d]:>10d}"
              f"{device.io_limit:>10d}")

    print(f"\ntotal inter-FPGA nets: {plan.cut:.0f}")
    if plan.feasible:
        print("plan is FEASIBLE: all capacity and I/O budgets met")
    else:
        print(f"plan INFEASIBLE: capacity violations on devices "
              f"{plan.capacity_violations()}, I/O violations on "
              f"{plan.io_violations()}")
        print("-> a real flow would retry with more devices or looser "
              "budgets")

if __name__ == "__main__":
    main()
