#!/usr/bin/env python3
"""Timing-driven partitioning with weighted nets (paper Secs. 1, 4, 5).

A critical subset of nets is up-weighted (as a timing-driven flow would,
following Jackson/Srinivasan/Kuh); the partitioners then minimize the
*weighted* cut, keeping critical nets on one side of the boundary.

The demo shows two things the paper emphasizes:

1. weighting works — the timing-aware partition cuts far fewer critical
   nets than a timing-oblivious one of similar quality;
2. with non-unit costs FM loses its O(1) bucket structure and must use a
   tree container (FM-tree), while PROP's machinery is unchanged.

Run:  python examples/timing_driven.py
"""

from repro import FMPartitioner, PropPartitioner, make_benchmark, run_many
from repro.timing import (
    critical_net_weights,
    synthetic_critical_nets,
    timing_report,
)

def main() -> None:
    graph = make_benchmark("t5", scale=0.3)
    critical = synthetic_critical_nets(graph, fraction=0.12, seed=7)
    weighted = critical_net_weights(graph, critical, critical_weight=10.0)
    print(f"circuit t5 @ 0.3: {graph.num_nodes} nodes, "
          f"{graph.num_nets} nets, {len(critical)} marked critical (cost 10)")

    # Timing-oblivious: partition the unweighted netlist.
    oblivious = run_many(PropPartitioner(), graph, runs=5)
    oblivious_report = timing_report(weighted, oblivious.best.sides, critical)

    # Timing-aware: partition the weighted netlist.
    aware = run_many(PropPartitioner(), weighted, runs=5)
    aware_report = timing_report(weighted, aware.best.sides, critical)

    print("\n                     critical nets cut    plain nets cut")
    print(f"timing-oblivious        {oblivious_report.critical_cut:>4d} / "
          f"{oblivious_report.critical_total:<10d} "
          f"{oblivious_report.unweighted_cut - oblivious_report.critical_cut:>6d}")
    print(f"timing-aware            {aware_report.critical_cut:>4d} / "
          f"{aware_report.critical_total:<10d} "
          f"{aware_report.unweighted_cut - aware_report.critical_cut:>6d}")

    # FM must switch containers for weighted nets (PROP does not).
    fm_tree = run_many(FMPartitioner("tree"), weighted, runs=5)
    fm_report = timing_report(weighted, fm_tree.best.sides, critical)
    print(f"\nweighted objective: PROP {aware.best_cut:.0f} "
          f"({aware.seconds_per_run:.2f}s/run)  vs  "
          f"FM-tree {fm_tree.best_cut:.0f} "
          f"({fm_tree.seconds_per_run:.2f}s/run)")
    print(f"FM-tree critical cut: {fm_report.critical_cut}/"
          f"{fm_report.critical_total}")

    try:
        FMPartitioner("bucket").partition(weighted, seed=0)
    except ValueError as exc:
        print(f"\nFM-bucket on weighted nets correctly refuses: {exc}")

if __name__ == "__main__":
    main()
