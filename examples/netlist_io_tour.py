#!/usr/bin/env python3
"""Netlist construction and file-format tour.

Builds a small named netlist with the builder API, writes it in all three
supported formats (hMETIS .hgr, SIGDA-style .net, JSON), reads each back,
and verifies the round trips — then partitions it and saves/validates a
result file, the full disk-facing workflow.

Run:  python examples/netlist_io_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro import HypergraphBuilder, PropPartitioner
from repro.hypergraph import io_ as netlist_io
from repro.partition import BalanceConstraint, check_partition

def build_design():
    """An 8-cell toy design with named cells and nets."""
    b = HypergraphBuilder()
    for cell in ("alu", "mul", "div", "reg0", "reg1", "sram", "io0", "io1"):
        b.add_node(cell)
    b.add_net_by_names(["alu", "mul", "reg0"], name="bus_a")
    b.add_net_by_names(["mul", "div", "reg1"], name="bus_b")
    b.add_net_by_names(["reg0", "reg1", "sram"], name="mem")
    b.add_net_by_names(["alu", "io0"], name="in0")
    b.add_net_by_names(["div", "io1"], name="out0")
    b.add_net_by_names(
        ["alu", "mul", "div", "reg0", "reg1", "sram"],
        name="clk",
        cost=0.0,  # clock is routed on its own network: free to cut
    )
    return b.build()

def main() -> None:
    design = build_design()
    print(f"design: {design.num_nodes} cells, {design.num_nets} nets, "
          f"{design.num_pins} pins")

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        for ext in (".hgr", ".net", ".json"):
            path = tmpdir / f"design{ext}"
            netlist_io.write(design, path)
            back = netlist_io.read(path)
            status = "round-trips" if back == design else "MISMATCH"
            print(f"  {ext:<6s} {path.stat().st_size:>5d} bytes  {status}")

        # Partition and persist the result.
        balance = BalanceConstraint.fifty_fifty(design)
        result = PropPartitioner().partition(design, balance=balance, seed=1)
        names = design.node_names or ()
        side0 = [names[v] for v, s in enumerate(result.sides) if s == 0]
        side1 = [names[v] for v, s in enumerate(result.sides) if s == 1]
        print(f"\nPROP cut {result.cut:g}: {side0} | {side1}")

        result_path = tmpdir / "partition.json"
        result_path.write_text(json.dumps(
            {"cut": result.cut, "sides": result.sides}
        ))
        loaded = json.loads(result_path.read_text())
        report = check_partition(
            design, loaded["sides"], balance=balance,
            expected_cut=loaded["cut"],
        )
        print(report.summary())

if __name__ == "__main__":
    main()
