#!/usr/bin/env python3
"""Compare every partitioner in the library on one circuit.

Reproduces the paper's Sec. 4 protocol in miniature: iterative methods get
multiple random-restart runs (best kept), the deterministic clustering
methods run once.  Prints a Table-2/3-style row set with per-run timing.

Run:  python examples/algorithm_comparison.py [circuit] [scale]
e.g.  python examples/algorithm_comparison.py s9234 0.25
"""

import sys

from repro import (
    BalanceConstraint,
    Eig1Partitioner,
    FMPartitioner,
    KLPartitioner,
    LAPartitioner,
    MeloPartitioner,
    MultilevelPartitioner,
    ParaboliPartitioner,
    PropPartitioner,
    RandomPartitioner,
    TwoPhasePropPartitioner,
    WindowPartitioner,
    compute_stats,
    make_benchmark,
    run_many,
)

def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "p2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    graph = make_benchmark(circuit, scale=scale)
    stats = compute_stats(graph)
    print(f"circuit {circuit!r} @ scale {scale}: {stats.n} nodes, "
          f"{stats.e} nets, {stats.m} pins")

    balance = BalanceConstraint.forty_five_fifty_five(graph)
    print(balance.describe(), "\n")

    # (partitioner, number of runs) — iterative methods restart, the
    # global/deterministic ones do not benefit from restarts.
    lineup = [
        (RandomPartitioner(), 1),
        (FMPartitioner("bucket"), 10),
        (FMPartitioner("tree"), 10),
        (LAPartitioner(2), 5),
        (LAPartitioner(3), 5),
        (KLPartitioner(), 5),
        (Eig1Partitioner(), 1),
        (MeloPartitioner(), 1),
        (ParaboliPartitioner(), 1),
        (WindowPartitioner(), 1),
        (PropPartitioner(), 5),
        (TwoPhasePropPartitioner(), 3),
        (MultilevelPartitioner(), 3),
    ]

    print(f"{'algorithm':<12s}{'runs':>5s}{'best':>8s}{'mean':>8s}"
          f"{'s/run':>8s}")
    print("-" * 41)
    rows = []
    for partitioner, runs in lineup:
        outcome = run_many(partitioner, graph, runs=runs, balance=balance)
        rows.append(outcome)
        print(f"{outcome.algorithm:<12s}{runs:>5d}{outcome.best_cut:>8.0f}"
              f"{outcome.mean_cut:>8.1f}{outcome.seconds_per_run:>8.3f}")

    best = min(rows, key=lambda r: r.best_cut)
    print(f"\nwinner: {best.algorithm} with cut {best.best_cut:.0f}")

if __name__ == "__main__":
    main()
