#!/usr/bin/env python3
"""Recursive k-way partitioning (paper Sec. 1; Sec. 5 future work).

The classic k-way flow: recursively bisect with a min-cut 2-way
partitioner until k parts remain — the first stage of hierarchical
placement/floorplanning.  Shows the cut/k trade-off and part balance for
k = 2, 3, 4, 8, and compares PROP against FM as the inner bisector.

Run:  python examples/kway_floorplan.py
"""

from repro import FMPartitioner, make_benchmark
from repro.kway import recursive_bisection, refine_kway_result

def main() -> None:
    graph = make_benchmark("19ks", scale=0.25)
    print(f"circuit 19ks @ 0.25: {graph.num_nodes} nodes, "
          f"{graph.num_nets} nets\n")

    print(f"{'k':>3s} {'spanning nets':>14s} {'part weights':>30s} "
          f"{'spread':>7s}")
    print("-" * 60)
    for k in (2, 3, 4, 8):
        result = recursive_bisection(graph, k, seed=1, runs_per_split=2)
        weights = "/".join(f"{w:.0f}" for w in result.part_weights)
        print(f"{k:>3d} {result.cut:>14.0f} {weights:>30s} "
              f"{result.balance_spread():>6.1%}")

    # PROP vs FM as the inner 2-way engine at k=4.
    print("\ninner-bisector comparison at k = 4:")
    prop_result = recursive_bisection(graph, 4, seed=1, runs_per_split=2)
    fm_result = recursive_bisection(
        graph, 4, partitioner=FMPartitioner("bucket"), seed=1,
        runs_per_split=2,
    )
    print(f"  PROP inner: {prop_result.cut:.0f} spanning nets")
    print(f"  FM inner  : {fm_result.cut:.0f} spanning nets")

    # Pairwise refinement polishes the recursive result (nodes stranded by
    # an early split get a second chance).
    refined, report = refine_kway_result(graph, prop_result, seed=1)
    print(f"\npairwise refinement at k = 4: {prop_result.cut:.0f} -> "
          f"{refined.cut:.0f} spanning nets "
          f"({report.pair_improvements} improving pair passes)")

if __name__ == "__main__":
    main()
