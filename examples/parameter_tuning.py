#!/usr/bin/env python3
"""Tuning PROP: sweep the paper's knobs and inspect gain prediction.

Two diagnostics in one script:

1. a configuration sweep over the knobs the paper fixes (refinement
   iterations, pinit, update strategy) with best/mean cut per point;
2. a gain-prediction report — how well the probabilistic gain that picks
   each move predicts its realized cut delta, and how often PROP invests
   in negative-immediate moves (Sec. 3's key behaviour).

Run:  python examples/parameter_tuning.py
"""

from repro import make_benchmark
from repro.analysis import gain_prediction_report
from repro.experiments import sweep_prop_config

def main() -> None:
    graph = make_benchmark("t5", scale=0.25)
    print(f"circuit t5 @ 0.25: {graph.num_nodes} nodes, "
          f"{graph.num_nets} nets\n")

    sweep = sweep_prop_config(
        graph,
        {
            "refinement_iterations": [0, 2],
            "pinit": [0.6, 0.95],
            "update_strategy": ["recompute", "cached"],
        },
        runs=3,
        circuit_name="t5@0.25",
    )
    print(sweep.format_text())
    best = sweep.best_point()
    print(f"\nbest point: {best.override_dict()} "
          f"with cut {best.best_cut:.0f}")

    report = gain_prediction_report(graph, seed=0)
    rho = (
        f"{report.spearman_rho:.2f}"
        if report.spearman_rho is not None
        else "n/a"
    )
    print(f"\ngain prediction over {report.num_moves} tentative moves:")
    print(f"  selection-vs-immediate rank correlation (pass 1): {rho}")
    print(f"  moves taken with negative immediate gain: "
          f"{report.negative_immediate_fraction:.1%}")
    print("  (PROP spends moves with negative immediate gain on future")
    print("   payoff — exactly the behaviour Sec. 3 argues for)")

if __name__ == "__main__":
    main()
