#!/usr/bin/env python3
"""Run-to-run distributions: why 'best of N' needs different N per method.

The paper runs FM 20/40/100 times but PROP only 20 — because FM's cut
distribution is wide (restarts keep paying off) while PROP's concentrates
near its best.  This example measures both distributions, prints ASCII
histograms, and reports the restart budget each method needed to match
its own best.  Also shows the two-phase PROP-CL flow (paper Sec. 5) and
the simulated-annealing yardstick.

Run:  python examples/run_distributions.py
"""

from repro import (
    AnnealingPartitioner,
    FMPartitioner,
    PropPartitioner,
    TwoPhasePropPartitioner,
    make_benchmark,
    run_many,
)
from repro.analysis import ascii_histogram, cut_distribution, runs_to_reach

RUNS = 12

def main() -> None:
    graph = make_benchmark("p2", scale=0.2)
    print(f"circuit p2 @ 0.2: {graph.num_nodes} nodes, "
          f"{graph.num_nets} nets — {RUNS} runs per method\n")

    outcomes = {}
    for partitioner in (
        FMPartitioner("bucket"),
        PropPartitioner(),
        TwoPhasePropPartitioner(),
        AnnealingPartitioner(t_initial=2.0, t_final=0.1, alpha=0.85),
    ):
        outcomes[partitioner.name] = run_many(partitioner, graph, runs=RUNS)

    print(f"{'method':<10s}{'best':>7s}{'mean':>8s}{'worst':>8s}"
          f"{'spread':>8s}{'s/run':>8s}")
    print("-" * 49)
    for name, outcome in outcomes.items():
        d = cut_distribution(outcome.cuts)
        print(f"{name:<10s}{d.best:>7.0f}{d.mean:>8.1f}{d.worst:>8.0f}"
              f"{d.spread:>7.1%}{outcome.seconds_per_run:>8.3f}")

    for name in ("FM-bucket", "PROP"):
        print(f"\n{name} cut histogram over {RUNS} runs:")
        print(ascii_histogram(outcomes[name].cuts, bins=6, width=30))

    print("\nrestarts needed to land within 5% of own best:")
    for name, outcome in outcomes.items():
        target = min(outcome.cuts) * 1.05
        needed = runs_to_reach(outcome.cuts, target)
        # None means the target was never reached within the budget.
        label = "never (budget exhausted)" if needed is None else f"{needed} runs"
        print(f"  {name:<10s} {label}")

if __name__ == "__main__":
    main()
