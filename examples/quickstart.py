#!/usr/bin/env python3
"""Quickstart: partition a circuit with PROP in ~20 lines.

Generates a synthetic stand-in for the ACM/SIGDA `struct` benchmark
(Table 1 of the paper), bisects it with PROP under the 50-50% balance
criterion, and compares against plain FM — the paper's headline matchup.

Run:  python examples/quickstart.py
"""

from repro import (
    BalanceConstraint,
    FMPartitioner,
    PropPartitioner,
    compute_stats,
    make_benchmark,
)

def main() -> None:
    # A scaled instance keeps this demo snappy; scale=1.0 gives the paper's
    # exact 1952-node circuit.
    graph = make_benchmark("struct", scale=0.3)
    stats = compute_stats(graph)
    print(f"circuit 'struct' @ 0.3 scale: {stats.n} nodes, "
          f"{stats.e} nets, {stats.m} pins")

    balance = BalanceConstraint.fifty_fifty(graph)

    prop = PropPartitioner().partition(graph, balance=balance, seed=42)
    fm = FMPartitioner("bucket").partition(graph, balance=balance, seed=42)

    print(f"\nPROP : cut {prop.cut:>6.0f} nets in {prop.passes} passes "
          f"({prop.runtime_seconds:.2f}s)")
    print(f"FM   : cut {fm.cut:>6.0f} nets in {fm.passes} passes "
          f"({fm.runtime_seconds:.2f}s)")

    side0 = prop.sides.count(0)
    print(f"\nPROP balance: {side0} vs {len(prop.sides) - side0} nodes")
    print("tip: run with more seeds (see examples/algorithm_comparison.py) —")
    print("the paper's protocol is best-of-20 runs per algorithm.")

if __name__ == "__main__":
    main()
